//! Primary→follower log-shipping replication.
//!
//! The PR 3 durable log is already a total per-session order of writes;
//! this module ships it. A [`ReplSource`] attached to a primary store
//! streams every session's segment chain — sealed segments plus the
//! live tail up to each log's durable watermark — to any number of
//! followers over a small length-prefixed frame protocol. A
//! [`Follower`] mirrors the segments to its own directory, replays
//! complete records into an in-memory tree with the same version-gated
//! idempotent semantics as crash recovery, journals its durable replay
//! watermark, and serves reads while the server layer refuses writes
//! with a typed redirect.
//!
//! **Replication is strictly asynchronous.** The primary's put/ack path
//! never waits for a follower: feeders run on their own threads, read
//! segment bytes from disk (never from the write path), and a wedged
//! follower only ever stalls its own feeder, which is shed on an ack
//! timeout. The price is the classic async-replication contract: a
//! follower is *bounded-stale* (lag observable in bytes and primary
//! clock microseconds through `Stats`), and on a primary failover the
//! un-shipped tail is lost to the replica.
//!
//! Failure envelope:
//! * **Follower crash / restart** — the journaled watermark plus the
//!   mirrored segments let it resume exactly where applied state ended;
//!   any re-sent tail re-replays idempotently (version-gated).
//! * **Torn connection** — the follower reconnects with jittered
//!   exponential backoff and re-handshakes with its in-memory
//!   watermarks.
//! * **Primary restart** — recovery reseals (rewrites) log segments, so
//!   byte offsets shift; the new source draws a fresh epoch and answers
//!   stale-epoch handshakes with `Gone`, which makes the follower wipe
//!   its state and resync from scratch.
//! * **Dead/slow follower** — no ack within the configured timeout (or
//!   a persistently stalled socket write) sheds the feeder.
//!
//! While a source is attached, checkpoint-driven log truncation is
//! pinned off ([`mtkv::Store::pin_log_truncation`]): the chains are the
//! replication feed. Segments truncated *before* the source attached
//! are gone from the feed — a follower attached to such a primary only
//! receives the remaining log suffix (checkpoint shipping is the
//! documented follow-up); attach followers before significant
//! truncation, or start sources on fresh primaries.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mtkv::store::ReplStats;
use mtkv::{LogRecord, Store};

/// Follower→primary handshake magic.
const HANDSHAKE_MAGIC: &[u8; 4] = b"MTRP";
/// Watermark journal magic.
const JOURNAL_MAGIC: &[u8; 4] = b"MTRS";
/// Wire protocol version.
const REPL_VERSION: u32 = 1;
/// Journal file name inside a follower's directory.
const JOURNAL_NAME: &str = "repl.state";
/// Hard cap on a replication frame body.
const MAX_FRAME: usize = 16 << 20;

// Frame tags (primary→follower unless noted).
const TAG_HELLO: u8 = 0;
const TAG_DATA: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_GONE: u8 = 3;
/// Follower→primary.
const TAG_ACK: u8 = 4;

/// Roles published through [`ReplStats::role`].
pub const ROLE_NONE: u64 = 0;
pub const ROLE_PRIMARY: u64 = 1;
pub const ROLE_FOLLOWER: u64 = 2;

/// Pseudo-session carrying value-tier segment bytes (`vseg-<seg>`
/// files) through the same `Data`-frame protocol as WAL chains. Real
/// session ids are small counters and can never collide with it. Vseg
/// bytes are mirrored verbatim (never decoded as log records), and each
/// shipping pass sends them **before** any WAL chain: a shipped pointer
/// record then always finds its payload bytes already mirrored (the
/// primary orders its own durability the same way — tier before WAL).
const VSEG_SESSION: u64 = u64::MAX - 1;

// ---------------------------------------------------------------------
// Frame plumbing shared by both ends.
// ---------------------------------------------------------------------

/// Writes one `tag | len | body` frame, looping over partial writes.
/// The socket's write timeout bounds each attempt; `deadline` bounds
/// the whole frame — a peer that stays unwritable past it is dead to
/// us — and `abort` lets a shutdown cut the wait short.
fn send_frame(
    sock: &mut TcpStream,
    tag: u8,
    body: &[u8],
    deadline: Instant,
    abort: &dyn Fn() -> bool,
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.push(tag);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    let mut off = 0;
    while off < frame.len() {
        match sock.write(&frame[off..]) {
            Ok(0) => return Err(std::io::Error::from(std::io::ErrorKind::WriteZero)),
            Ok(n) => off += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if abort() || Instant::now() >= deadline {
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Incremental frame reader over a socket with a read timeout: each
/// `poll` call does at most one `read`, returning `None` when no
/// complete frame is buffered yet (timeout included).
struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn take_frame(&mut self) -> std::io::Result<Option<(u8, Vec<u8>)>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let tag = avail[0];
        let len = u32::from_le_bytes(avail[1..5].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::other("replication frame too large"));
        }
        if avail.len() < 5 + len {
            return Ok(None);
        }
        let body = avail[5..5 + len].to_vec();
        self.pos += 5 + len;
        if self.pos > (1 << 20) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some((tag, body)))
    }

    /// One buffered frame if available, else one socket read (bounded by
    /// the socket's read timeout) and another attempt.
    fn poll(&mut self, sock: &mut TcpStream) -> std::io::Result<Option<(u8, Vec<u8>)>> {
        if let Some(f) = self.take_frame()? {
            return Ok(Some(f));
        }
        let mut chunk = [0u8; 64 * 1024];
        match sock.read(&mut chunk) {
            Ok(0) => Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof)),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                self.take_frame()
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(buf.get(*off..*off + 8)?.try_into().ok()?);
    *off += 8;
    Some(v)
}

fn get_u32(buf: &[u8], off: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(buf.get(*off..*off + 4)?.try_into().ok()?);
    *off += 4;
    Some(v)
}

// ---------------------------------------------------------------------
// Primary side: ReplSource.
// ---------------------------------------------------------------------

/// Tuning for the primary's shipping side.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// How often each feeder heartbeats its follower.
    pub heartbeat_interval: Duration,
    /// Shed a follower that has not acked for this long (also bounds a
    /// stalled socket write).
    pub ack_timeout: Duration,
    /// Per-`Data`-frame payload cap.
    pub chunk_bytes: usize,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            heartbeat_interval: Duration::from_millis(25),
            ack_timeout: Duration::from_secs(3),
            chunk_bytes: 64 * 1024,
        }
    }
}

struct Peer {
    acked: AtomicU64,
    echo_ts: AtomicU64,
}

struct SrcShared {
    store: Arc<Store>,
    stats: Arc<ReplStats>,
    cfg: ReplConfig,
    epoch: u64,
    dir: PathBuf,
    stop: AtomicBool,
    peers: std::sync::Mutex<Vec<Arc<Peer>>>,
}

impl SrcShared {
    /// Recomputes the primary-side aggregate lag stats from the peer
    /// registry. `total_durable` is the caller's freshest feed size.
    fn publish_stats(&self, total_durable: u64) {
        let peers = self.peers.lock().unwrap();
        self.stats
            .followers
            .store(peers.len() as u64, Ordering::Relaxed);
        let mut worst_lag = 0u64;
        let mut oldest_echo = u64::MAX;
        for p in peers.iter() {
            worst_lag =
                worst_lag.max(total_durable.saturating_sub(p.acked.load(Ordering::Relaxed)));
            oldest_echo = oldest_echo.min(p.echo_ts.load(Ordering::Relaxed));
        }
        self.stats.lag_bytes.store(worst_lag, Ordering::Relaxed);
        let ts_lag = if peers.is_empty() || worst_lag == 0 || oldest_echo == 0 {
            0
        } else {
            mtkv::clock::recent().saturating_sub(oldest_echo)
        };
        self.stats.lag_ts_us.store(ts_lag, Ordering::Relaxed);
    }
}

/// The primary's replication endpoint: a listener plus one feeder
/// thread per connected follower. Dropping (or [`ReplSource::stop`])
/// disconnects all followers and unpins log truncation.
pub struct ReplSource {
    shared: Arc<SrcShared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    feeders: Arc<std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ReplSource {
    /// Attaches a shipping source to `store` (which must be persistent)
    /// and listens on `addr` for followers.
    pub fn start(store: &Arc<Store>, addr: &str) -> std::io::Result<ReplSource> {
        Self::start_with(store, addr, ReplConfig::default())
    }

    pub fn start_with(
        store: &Arc<Store>,
        addr: &str,
        cfg: ReplConfig,
    ) -> std::io::Result<ReplSource> {
        let dir = store
            .log_dir()
            .ok_or_else(|| std::io::Error::other("replication source needs a persistent store"))?
            .to_path_buf();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stats = store.repl_stats();
        stats.role.store(ROLE_PRIMARY, Ordering::Relaxed);
        store.pin_log_truncation(true);
        let shared = Arc::new(SrcShared {
            store: Arc::clone(store),
            stats,
            cfg,
            // The epoch names this primary incarnation: recovery rewrites
            // segment files (offsets shift), so a follower watermark is
            // only meaningful against the incarnation that produced it.
            epoch: mtkv::clock::now(),
            dir,
            stop: AtomicBool::new(false),
            peers: std::sync::Mutex::new(Vec::new()),
        });
        let feeders: Arc<std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let s2 = Arc::clone(&shared);
        let f2 = Arc::clone(&feeders);
        let accept = std::thread::Builder::new()
            .name("mt-repl-accept".into())
            .spawn(move || {
                while !s2.stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((sock, _)) => {
                            let s3 = Arc::clone(&s2);
                            let h = std::thread::Builder::new()
                                .name("mt-repl-feed".into())
                                .spawn(move || feed_follower(&s3, sock))
                                .expect("spawn feeder");
                            let mut fs = f2.lock().unwrap();
                            fs.retain(|h| !h.is_finished());
                            fs.push(h);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn repl accept");
        Ok(ReplSource {
            shared,
            addr: local,
            accept: Some(accept),
            feeders,
        })
    }

    /// The address followers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This incarnation's epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Disconnects all followers, stops the listener, and unpins log
    /// truncation. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for h in self.feeders.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        self.shared.store.pin_log_truncation(false);
        self.shared.stats.role.store(ROLE_NONE, Ordering::Relaxed);
        self.shared.stats.followers.store(0, Ordering::Relaxed);
        self.shared.stats.lag_bytes.store(0, Ordering::Relaxed);
        self.shared.stats.lag_ts_us.store(0, Ordering::Relaxed);
    }
}

impl Drop for ReplSource {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One shippable chain for a feeder pass: `(session id, its sorted
/// segment chain, durable limit of the active segment if any)`.
type Feed<'a> = (u64, &'a Vec<(u64, PathBuf, u64)>, Option<u64>);

/// Shipping limits for one pass over the primary's log directory:
/// per-file durable byte counts plus their total.
struct FeedView {
    /// session → sorted `(seg, path, durable_limit)`.
    chains: BTreeMap<u64, Vec<(u64, PathBuf, u64)>>,
    /// session → active segment, for sessions whose writer is live.
    active: HashMap<u64, u64>,
    /// Value-tier segment chain (shipped first, as [`VSEG_SESSION`]),
    /// plus the tier's active segment. Empty when no tier is mounted.
    vsegs: Vec<(u64, PathBuf, u64)>,
    vseg_active: Option<u64>,
    total_durable: u64,
}

fn feed_view(shared: &SrcShared) -> FeedView {
    // WAL watermarks are snapshotted BEFORE the value tier's, and the
    // tier is forced in between (below): any pointer inside these WAL
    // limits then names a payload the (later-read) vseg limits cover.
    let live: HashMap<u64, (u64, u64)> = shared
        .store
        .shipping_watermarks()
        .into_iter()
        .map(|(id, seg, durable)| (id, (seg, durable)))
        .collect();
    let mut chains = BTreeMap::new();
    let mut total = 0u64;
    for (session, segs) in mtkv::session_segments(&shared.dir) {
        let mut chain = Vec::with_capacity(segs.len());
        for (seg, path) in segs {
            let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let limit = match live.get(&session) {
                // Active segment: ship only synced bytes. (A rotation
                // race can briefly overstate `durable` for a fresh
                // segment; the file-length clamp bounds it.)
                Some(&(active, durable)) if seg == active => durable.min(len),
                // Rotation creates the successor file before publishing
                // the new segment number: not durable yet.
                Some(&(active, _)) if seg > active => 0,
                // Sealed, or the writer is gone (chain is static).
                _ => len,
            };
            total += limit;
            chain.push((seg, path, limit));
        }
        chains.insert(session, chain);
    }
    let mut vsegs = Vec::new();
    let mut vseg_active = None;
    if let Some(tier) = shared.store.value_tier() {
        // Force the tier before snapshotting its watermark. The ack
        // paths already order tier-force before WAL-force, but the WAL's
        // 200 ms *background* force advances the WAL watermark on its
        // own — without this force, a store that never checkpoints or
        // takes an explicit Flush/Sync would ship pointer records whose
        // payload bytes stay below the vseg durable limit forever, and
        // followers would answer misses for every separated key. Payload
        // bytes are appended before their pointer record is logged, so
        // forcing here (after the WAL snapshot above) covers every
        // pointer inside those WAL limits. No-op when nothing is dirty.
        let _ = tier.force();
        let (active, durable) = tier.progress();
        vseg_active = Some(active);
        for seg in mtkv::vtier::vseg_ids(&shared.dir) {
            let path = mtkv::vtier::vseg_path(&shared.dir, seg);
            let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let limit = match seg.cmp(&active) {
                std::cmp::Ordering::Less => len, // sealed: static
                std::cmp::Ordering::Equal => durable.min(len),
                std::cmp::Ordering::Greater => 0,
            };
            total += limit;
            vsegs.push((seg, path, limit));
        }
    }
    FeedView {
        chains,
        active: live.into_iter().map(|(id, (seg, _))| (id, seg)).collect(),
        vsegs,
        vseg_active,
        total_durable: total,
    }
}

/// One follower's feeder loop: handshake, then ship/ack/heartbeat until
/// shed, disconnected, or the source stops.
fn feed_follower(shared: &SrcShared, mut sock: TcpStream) {
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(Duration::from_millis(1)));
    let _ = sock.set_write_timeout(Some(Duration::from_millis(50)));
    let Some((peer_epoch, mut cursors)) = read_handshake(&mut sock) else {
        return;
    };
    let abort = || shared.stop.load(Ordering::Acquire);
    let deadline = || Instant::now() + shared.cfg.ack_timeout;
    if peer_epoch != 0 && peer_epoch != shared.epoch {
        let _ = send_frame(&mut sock, TAG_GONE, &[], deadline(), &abort);
        return;
    }
    let mut hello = Vec::new();
    put_u64(&mut hello, shared.epoch);
    if send_frame(&mut sock, TAG_HELLO, &hello, deadline(), &abort).is_err() {
        return;
    }

    let peer = Arc::new(Peer {
        acked: AtomicU64::new(0),
        echo_ts: AtomicU64::new(0),
    });
    shared.peers.lock().unwrap().push(Arc::clone(&peer));

    let mut reader = FrameReader::new();
    let mut files: HashMap<(u64, u64), File> = HashMap::new();
    let mut last_ack = Instant::now();
    let mut last_hb = Instant::now() - shared.cfg.heartbeat_interval;
    let mut gone = false;

    'feed: while !shared.stop.load(Ordering::Acquire) {
        let view = feed_view(shared);

        // Ship: advance each session's cursor toward its durable limit,
        // strictly in (segment, offset) order. The vseg pseudo-session
        // goes FIRST so payload bytes always precede the WAL pointer
        // records that name them.
        let mut feeds: Vec<Feed> = Vec::new();
        if !view.vsegs.is_empty() {
            feeds.push((VSEG_SESSION, &view.vsegs, view.vseg_active));
        }
        for (&session, chain) in &view.chains {
            feeds.push((session, chain, view.active.get(&session).copied()));
        }
        let mut shipped = 0usize;
        let ship_t0 = Instant::now();
        for (session, chain, live_active) in feeds {
            let cursor = cursors.entry(session).or_insert_with(|| {
                let first = chain.first().map(|&(seg, _, _)| seg).unwrap_or(0);
                (first, 0)
            });
            loop {
                let Some(entry) = chain.iter().find(|&&(seg, _, _)| seg == cursor.0) else {
                    if session == VSEG_SESSION {
                        // GC deletes reclaimed value segments, so a
                        // vseg chain legitimately has holes; skip the
                        // cursor forward (relocated copies arrive
                        // through the GC session's WAL records).
                        match chain.iter().map(|&(s, _, _)| s).find(|&s| s > cursor.0) {
                            Some(next) => {
                                *cursor = (next, 0);
                                continue;
                            }
                            None => break,
                        }
                    }
                    // The follower claims a segment this chain does not
                    // have. Same-epoch chains only grow, so this is a
                    // protocol violation (or pre-source truncation):
                    // resync the follower from scratch.
                    let _ = send_frame(&mut sock, TAG_GONE, &[], deadline(), &abort);
                    gone = true;
                    break 'feed;
                };
                let (seg, path, limit) = entry;
                if cursor.1 > *limit && live_active != Some(*seg) {
                    // A sealed segment can never grow back over the
                    // follower's claim: protocol violation.
                    let _ = send_frame(&mut sock, TAG_GONE, &[], deadline(), &abort);
                    gone = true;
                    break 'feed;
                }
                while cursor.1 < *limit {
                    let want = (*limit - cursor.1).min(shared.cfg.chunk_bytes as u64) as usize;
                    let file = match files.entry((session, *seg)) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => match File::open(path) {
                            Ok(f) => e.insert(f),
                            Err(_) => break,
                        },
                    };
                    let mut body = Vec::with_capacity(24 + want);
                    put_u64(&mut body, session);
                    put_u64(&mut body, *seg);
                    put_u64(&mut body, cursor.1);
                    let data_start = body.len();
                    body.resize(data_start + want, 0);
                    let n = file.read_at(&mut body[data_start..], cursor.1).unwrap_or(0);
                    if n == 0 {
                        break;
                    }
                    body.truncate(data_start + n);
                    if send_frame(&mut sock, TAG_DATA, &body, deadline(), &abort).is_err() {
                        break 'feed;
                    }
                    cursor.1 += n as u64;
                    shipped += n;
                }
                // Advance to the next segment only once the current one
                // can no longer grow: it is below the live writer's
                // active segment, or the writer is gone and a successor
                // file exists.
                let complete = match live_active {
                    Some(active) => *seg < active,
                    None => chain.iter().any(|&(s, _, _)| s > *seg),
                };
                let successor = if session == VSEG_SESSION {
                    // Vseg ids can be sparse (GC deletions).
                    chain.iter().map(|&(s, _, _)| s).find(|&s| s > *seg)
                } else if chain.iter().any(|&(s, _, _)| s == seg + 1) {
                    Some(seg + 1)
                } else {
                    None
                };
                match successor {
                    Some(next) if complete && cursor.1 >= *limit => *cursor = (next, 0),
                    _ => break,
                }
            }
        }

        if shipped > 0 {
            // One histogram sample per feeder pass that moved bytes —
            // idle passes (the 2 ms sleep loop) would only pile counts
            // into the lowest buckets.
            shared.store.obs().global().record(
                mtkv::mtobs::Kind::ReplShip,
                ship_t0.elapsed().as_nanos() as u64,
            );
        }

        // Drain acks.
        loop {
            match reader.poll(&mut sock) {
                Ok(Some((TAG_ACK, body))) => {
                    let mut off = 0;
                    if let (Some(applied), Some(echo)) =
                        (get_u64(&body, &mut off), get_u64(&body, &mut off))
                    {
                        peer.acked.store(applied, Ordering::Relaxed);
                        peer.echo_ts.store(echo, Ordering::Relaxed);
                        last_ack = Instant::now();
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break 'feed,
            }
        }
        if last_ack.elapsed() > shared.cfg.ack_timeout {
            // Dead or wedged follower: shed it. Its feeder exits; the
            // group-commit path never noticed.
            break 'feed;
        }

        if last_hb.elapsed() >= shared.cfg.heartbeat_interval {
            let mut hb = Vec::with_capacity(16);
            put_u64(&mut hb, mtkv::clock::now());
            put_u64(&mut hb, view.total_durable);
            if send_frame(&mut sock, TAG_HEARTBEAT, &hb, deadline(), &abort).is_err() {
                break 'feed;
            }
            last_hb = Instant::now();
        }

        shared.publish_stats(view.total_durable);
        if shipped == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    if gone {
        // Give the follower a beat to read the Gone before the socket
        // drops; it reacts by wiping and resyncing.
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut peers = shared.peers.lock().unwrap();
    peers.retain(|p| !Arc::ptr_eq(p, &peer));
    drop(peers);
    shared.publish_stats(0);
}

/// Per-session resume positions from a follower handshake:
/// `session → (segment, offset)`.
type ResumeMap = HashMap<u64, (u64, u64)>;

/// Reads the raw follower handshake: `magic | version | epoch | n |
/// n × (session, segment, offset)`. Bounded by a 5-second deadline.
fn read_handshake(sock: &mut TcpStream) -> Option<(u64, ResumeMap)> {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = Vec::new();
    let mut need = 20; // magic + version + epoch + count
    loop {
        while buf.len() < need {
            if Instant::now() >= deadline {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match sock.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
        if &buf[..4] != HANDSHAKE_MAGIC {
            return None;
        }
        let mut off = 4;
        let version = get_u32(&buf, &mut off)?;
        if version != REPL_VERSION {
            return None;
        }
        let epoch = get_u64(&buf, &mut off)?;
        let n = get_u32(&buf, &mut off)? as usize;
        if n > 1 << 16 {
            return None;
        }
        if buf.len() < 20 + n * 24 {
            need = 20 + n * 24;
            continue;
        }
        let mut marks = HashMap::with_capacity(n);
        for _ in 0..n {
            let session = get_u64(&buf, &mut off)?;
            let seg = get_u64(&buf, &mut off)?;
            let offset = get_u64(&buf, &mut off)?;
            marks.insert(session, (seg, offset));
        }
        return Some((epoch, marks));
    }
}

// ---------------------------------------------------------------------
// Follower side.
// ---------------------------------------------------------------------

/// Tuning for a follower.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Reconnect delay cap.
    pub backoff_cap: Duration,
    /// How often the follower acks its applied watermark.
    pub ack_interval: Duration,
    /// How often mirrors are fsynced and the watermark journal written.
    pub journal_interval: Duration,
    /// Reconnect if the primary sends nothing for this long.
    pub quiet_timeout: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            ack_interval: Duration::from_millis(25),
            journal_interval: Duration::from_millis(50),
            quiet_timeout: Duration::from_secs(5),
        }
    }
}

/// Where a follower's replication loop currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerStatus {
    /// Bootstrapping from local mirrors, or between reconnect attempts.
    Connecting,
    /// Handshake accepted; applying the primary's stream.
    Streaming,
    /// Stopped (or crashed via the test hook).
    Stopped,
}

struct FolShared {
    store: Arc<Store>,
    stats: Arc<ReplStats>,
    dir: PathBuf,
    primary: String,
    cfg: FollowerConfig,
    stop: AtomicBool,
    /// Test hook: exit the run thread immediately, skipping the final
    /// fsync + journal — a kill -9.
    crash: AtomicBool,
    /// Test hook: drop the current connection mid-stream once.
    tear: AtomicBool,
    status: AtomicU8,
    applied_total: AtomicU64,
}

/// A read replica: mirrors the primary's log segments under its own
/// directory, replays them into an in-memory [`Store`], journals its
/// replay watermark, and reconnects with jittered exponential backoff.
pub struct Follower {
    shared: Arc<FolShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Follower {
    /// Starts (or restarts) a follower over `dir`, replicating from the
    /// primary's replication listener at `primary`. Existing mirrors in
    /// `dir` are trimmed to the journaled watermark and replayed before
    /// the first connection, so a restart resumes instead of resyncing.
    pub fn start(dir: &Path, primary: &str) -> std::io::Result<Follower> {
        Self::start_with(dir, primary, FollowerConfig::default())
    }

    pub fn start_with(dir: &Path, primary: &str, cfg: FollowerConfig) -> std::io::Result<Follower> {
        std::fs::create_dir_all(dir)?;
        // A replica store: in-memory tree plus a reader-only value tier
        // over `dir`, where vseg mirrors land — replayed pointer
        // records resolve against them.
        let store = Store::replica(dir)?;
        let stats = store.repl_stats();
        stats.role.store(ROLE_FOLLOWER, Ordering::Relaxed);
        let shared = Arc::new(FolShared {
            store,
            stats,
            dir: dir.to_path_buf(),
            primary: primary.to_string(),
            cfg,
            stop: AtomicBool::new(false),
            crash: AtomicBool::new(false),
            tear: AtomicBool::new(false),
            status: AtomicU8::new(FollowerStatus::Connecting as u8),
            applied_total: AtomicU64::new(0),
        });
        let s2 = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("mt-repl-follow".into())
            .spawn(move || follower_run(&s2))?;
        Ok(Follower {
            shared,
            thread: Some(thread),
        })
    }

    /// The replica store this follower applies into. Serve reads from
    /// it; the server layer must refuse writes with a redirect.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.shared.store)
    }

    pub fn status(&self) -> FollowerStatus {
        match self.shared.status.load(Ordering::Acquire) {
            0 => FollowerStatus::Connecting,
            1 => FollowerStatus::Streaming,
            _ => FollowerStatus::Stopped,
        }
    }

    /// `(lag_bytes, lag_ts_us)` as of the last primary heartbeat.
    pub fn lag(&self) -> (u64, u64) {
        (
            self.shared.stats.lag_bytes.load(Ordering::Relaxed),
            self.shared.stats.lag_ts_us.load(Ordering::Relaxed),
        )
    }

    /// Total log bytes applied locally.
    pub fn applied_bytes(&self) -> u64 {
        self.shared.applied_total.load(Ordering::Relaxed)
    }

    /// Clean shutdown: final mirror fsync + watermark journal, so a
    /// restart resumes exactly here.
    pub fn stop(mut self) {
        self.shutdown(false);
    }

    /// Test hook — kill -9 equivalent: the run thread exits at its next
    /// check without flushing mirrors or the journal, abandoning
    /// whatever the last journal interval had not yet made durable.
    pub fn simulate_crash(mut self) {
        self.shutdown(true);
    }

    /// Test hook — drops the current replication connection mid-stream;
    /// the follower then reconnects with backoff and resumes.
    pub fn tear_connection(&self) {
        self.shared.tear.store(true, Ordering::Release);
    }

    fn shutdown(&mut self, crash: bool) {
        if crash {
            self.shared.crash.store(true, Ordering::Release);
        }
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared
            .status
            .store(FollowerStatus::Stopped as u8, Ordering::Release);
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.shutdown(false);
    }
}

/// One session's replay state on the follower.
struct SessState {
    /// Segment currently being applied.
    seg: u64,
    /// Bytes of `seg` fully applied (journal watermark).
    applied: u64,
    /// Received bytes of `seg` past `applied` that do not yet form a
    /// complete record.
    buf: Vec<u8>,
    /// Open mirror handle for `seg`.
    file: Option<File>,
    /// Mirror bytes written since the last fsync.
    dirty: bool,
}

/// Everything the apply path mutates, kept together so bootstrap replay
/// and live streaming share one code path.
struct ApplyState {
    sessions: HashMap<u64, SessState>,
    /// Anti-resurrection map: key → version of the newest applied
    /// remove not yet superseded by a newer put. Replaces recovery's
    /// in-tree tombstones — the apply thread is the single writer, so
    /// the map is exact, and scans never see zero-column values.
    swept: HashMap<Vec<u8>, u64>,
    /// Total log bytes applied (across all sessions and segments).
    applied_total: u64,
    /// Timestamp of the newest applied record (primary clock).
    last_applied_ts: u64,
    /// Last primary heartbeat: (primary_ts, total_durable).
    horizon: (u64, u64),
    epoch: u64,
}

impl ApplyState {
    fn new() -> ApplyState {
        ApplyState {
            sessions: HashMap::new(),
            swept: HashMap::new(),
            applied_total: 0,
            last_applied_ts: 0,
            horizon: (0, 0),
            epoch: 0,
        }
    }

    fn apply_record(&mut self, store: &Store, rec: &LogRecord) {
        match rec {
            LogRecord::Put {
                version, key, cols, ..
            } => {
                match self.swept.get(key) {
                    Some(&swept_v) if *version <= swept_v => {
                        // A newer remove already covered this put.
                    }
                    other => {
                        if other.is_some() {
                            self.swept.remove(key);
                        }
                        store.replay_put(key, *version, cols);
                    }
                }
            }
            LogRecord::PutIndirect {
                version, key, ptr, ..
            } => match self.swept.get(key) {
                Some(&swept_v) if *version <= swept_v => {}
                other => {
                    if other.is_some() {
                        self.swept.remove(key);
                    }
                    store.replay_put_indirect(key, *version, *ptr);
                }
            },
            LogRecord::Remove { version, key, .. } => {
                let e = self.swept.entry(key.clone()).or_insert(*version);
                *e = (*e).max(*version);
                store.replay_remove(key, *version);
            }
            LogRecord::Heartbeat { .. }
            | LogRecord::CleanClose { .. }
            | LogRecord::SessionCreate { .. } => {}
        }
        self.last_applied_ts = self.last_applied_ts.max(rec.timestamp());
    }

    /// Decodes and applies every complete record buffered for
    /// `session`, advancing its applied watermark.
    fn drain_session(&mut self, store: &Store, session: u64) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let mut pos = 0;
        let mut recs = Vec::new();
        while let Some((rec, used)) = LogRecord::decode(&s.buf[pos..]) {
            pos += used;
            recs.push(rec);
        }
        if pos == 0 {
            return;
        }
        s.buf.drain(..pos);
        s.applied += pos as u64;
        self.applied_total += pos as u64;
        for rec in &recs {
            self.apply_record(store, rec);
        }
    }

    fn watermarks(&self) -> Vec<(u64, u64, u64)> {
        self.sessions
            .iter()
            .map(|(&id, s)| (id, s.seg, s.applied))
            .collect()
    }
}

fn mirror_path(dir: &Path, session: u64, seg: u64) -> PathBuf {
    if session == VSEG_SESSION {
        mtkv::vtier::vseg_path(dir, seg)
    } else {
        mtkv::segment_path(dir, session, seg)
    }
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_NAME)
}

/// Writes the watermark journal: `magic | version | epoch | n |
/// n × (session, seg, applied) | crc32`, via temp + rename. Mirrors
/// must be fsynced *before* this runs — the journal asserts the bytes
/// it points at are on disk.
fn write_journal(dir: &Path, epoch: u64, marks: &[(u64, u64, u64)]) -> std::io::Result<()> {
    let mut body = Vec::with_capacity(20 + marks.len() * 24);
    body.extend_from_slice(JOURNAL_MAGIC);
    body.extend_from_slice(&REPL_VERSION.to_le_bytes());
    put_u64(&mut body, epoch);
    body.extend_from_slice(&(marks.len() as u32).to_le_bytes());
    for &(session, seg, applied) in marks {
        put_u64(&mut body, session);
        put_u64(&mut body, seg);
        put_u64(&mut body, applied);
    }
    let crc = mtkv::crc32::crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join(".repl.state.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, journal_path(dir))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(())
}

/// Journalled watermark triples: `(session, segment, applied offset)`.
type JournalEntries = Vec<(u64, u64, u64)>;

/// Reads and validates the watermark journal.
fn read_journal(dir: &Path) -> Option<(u64, JournalEntries)> {
    let body = std::fs::read(journal_path(dir)).ok()?;
    if body.len() < 24 || &body[..4] != JOURNAL_MAGIC {
        return None;
    }
    let (payload, crc_bytes) = body.split_at(body.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if mtkv::crc32::crc32(payload) != crc {
        return None;
    }
    let mut off = 4;
    if get_u32(payload, &mut off)? != REPL_VERSION {
        return None;
    }
    let epoch = get_u64(payload, &mut off)?;
    let n = get_u32(payload, &mut off)? as usize;
    let mut marks = Vec::with_capacity(n);
    for _ in 0..n {
        marks.push((
            get_u64(payload, &mut off)?,
            get_u64(payload, &mut off)?,
            get_u64(payload, &mut off)?,
        ));
    }
    Some((epoch, marks))
}

/// Deletes every mirror segment (WAL and value-tier) and the journal
/// (full resync).
fn wipe_mirrors(dir: &Path) {
    for path in mtkv::log_files(dir) {
        let _ = std::fs::remove_file(&path);
    }
    for seg in mtkv::vtier::vseg_ids(dir) {
        let _ = std::fs::remove_file(mtkv::vtier::vseg_path(dir, seg));
    }
    let _ = std::fs::remove_file(journal_path(dir));
}

/// Bootstrap: trim mirrors to the journaled watermark, replay them
/// sequentially through the normal apply path, and return the resulting
/// state. Any inconsistency wipes the directory and starts empty (the
/// primary will be asked for a full resync).
fn bootstrap(shared: &FolShared) -> ApplyState {
    let mut state = ApplyState::new();
    let Some((epoch, marks)) = read_journal(&shared.dir) else {
        wipe_mirrors(&shared.dir);
        return state;
    };
    let journal: HashMap<u64, (u64, u64)> = marks
        .iter()
        .map(|&(session, seg, applied)| (session, (seg, applied)))
        .collect();
    // Trim: anything past the journal never had its durability asserted.
    for path in mtkv::log_files(&shared.dir) {
        let Some((session, seg)) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(mtkv::parse_log_name)
        else {
            continue;
        };
        match journal.get(&session) {
            None => {
                let _ = std::fs::remove_file(&path);
            }
            Some(&(jseg, japplied)) => {
                if seg > jseg {
                    let _ = std::fs::remove_file(&path);
                } else if seg == jseg {
                    if let Ok(f) = OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_len(japplied);
                    }
                }
            }
        }
    }
    // Value-segment mirrors get the same trim against the journaled
    // vseg cursor.
    let vmark = journal.get(&VSEG_SESSION).copied();
    for seg in mtkv::vtier::vseg_ids(&shared.dir) {
        let path = mtkv::vtier::vseg_path(&shared.dir, seg);
        match vmark {
            None => {
                let _ = std::fs::remove_file(&path);
            }
            Some((jseg, japplied)) => {
                if seg > jseg {
                    let _ = std::fs::remove_file(&path);
                } else if seg == jseg {
                    if let Ok(f) = OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_len(japplied);
                    }
                }
            }
        }
    }
    // Replay. Per-session chains must decode end-to-end; a short decode
    // means the mirror is corrupt and the whole state is discarded. A
    // journaled session with no files yet is valid only at a zero
    // watermark (the mirror file is created on first received byte).
    let chains = mtkv::session_segments(&shared.dir);
    for (&session, &(jseg, japplied)) in &journal {
        if session == VSEG_SESSION {
            // Mirrored verbatim, nothing to replay: count the mirrored
            // bytes and restore the cursor. The journaled segment must
            // hold exactly the bytes the journal asserted durable.
            let active_len = std::fs::metadata(mtkv::vtier::vseg_path(&shared.dir, jseg))
                .map(|m| m.len())
                .unwrap_or(0);
            if active_len != japplied {
                wipe_mirrors(&shared.dir);
                shared.store.reset_replica();
                return ApplyState::new();
            }
            for seg in mtkv::vtier::vseg_ids(&shared.dir) {
                let len = std::fs::metadata(mtkv::vtier::vseg_path(&shared.dir, seg))
                    .map(|m| m.len())
                    .unwrap_or(0);
                state.applied_total += len;
            }
            state.sessions.insert(
                VSEG_SESSION,
                SessState {
                    seg: jseg,
                    applied: japplied,
                    buf: Vec::new(),
                    file: None,
                    dirty: false,
                },
            );
            continue;
        }
        let chain = chains.get(&session).cloned().unwrap_or_default();
        let consistent = if chain.is_empty() {
            japplied == 0
        } else {
            chain.last().map(|&(seg, _)| seg) == Some(jseg)
        };
        let mut ok = consistent;
        if ok {
            for (seg, path) in &chain {
                let data = std::fs::read(path).unwrap_or_default();
                let mut pos = 0;
                while let Some((rec, used)) = LogRecord::decode(&data[pos..]) {
                    pos += used;
                    state.apply_record(&shared.store, &rec);
                }
                let expect = if *seg == jseg {
                    japplied
                } else {
                    data.len() as u64
                };
                if pos as u64 != expect {
                    ok = false;
                    break;
                }
                state.applied_total += pos as u64;
            }
        }
        if !ok {
            // Corrupt or inconsistent: full resync.
            wipe_mirrors(&shared.dir);
            shared.store.reset_replica();
            return ApplyState::new();
        }
        state.sessions.insert(
            session,
            SessState {
                seg: jseg,
                applied: japplied,
                buf: Vec::new(),
                file: None,
                dirty: false,
            },
        );
    }
    state.epoch = epoch;
    state
}

/// Flushes dirty mirrors then journals the watermarks (in that order:
/// the journal asserts durability of what it points at).
fn sync_and_journal(shared: &FolShared, state: &mut ApplyState) {
    for s in state.sessions.values_mut() {
        if s.dirty {
            if let Some(f) = &s.file {
                let _ = f.sync_data();
            }
            s.dirty = false;
        }
    }
    let _ = write_journal(&shared.dir, state.epoch, &state.watermarks());
}

/// Deterministic jittered exponential backoff delay for reconnect
/// `attempt` (0-based).
fn backoff_delay(cfg: &FollowerConfig, attempt: u32, salt: u64) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << attempt.min(10))
        .min(cfg.backoff_cap);
    // splitmix64 over (salt, attempt): jitter in [50%, 150%).
    let mut z = salt
        .wrapping_add(u64::from(attempt))
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    let jitter = (z % 1000) as f64 / 1000.0; // [0, 1)
    exp.mul_f64(0.5 + jitter)
}

fn follower_run(shared: &Arc<FolShared>) {
    let mut state = bootstrap(shared);
    shared
        .applied_total
        .store(state.applied_total, Ordering::Relaxed);
    let salt = std::process::id() as u64 ^ shared.primary.len() as u64;
    let mut attempt: u32 = 0;
    'reconnect: loop {
        if shared.stop.load(Ordering::Acquire) || shared.crash.load(Ordering::Acquire) {
            break;
        }
        shared
            .status
            .store(FollowerStatus::Connecting as u8, Ordering::Release);
        let mut sock = match TcpStream::connect(&shared.primary) {
            Ok(s) => s,
            Err(_) => {
                sleep_interruptible(shared, backoff_delay(&shared.cfg, attempt, salt));
                attempt = attempt.saturating_add(1);
                continue;
            }
        };
        let _ = sock.set_nodelay(true);
        let _ = sock.set_read_timeout(Some(Duration::from_millis(5)));
        let _ = sock.set_write_timeout(Some(Duration::from_millis(500)));
        // Handshake with our current watermarks.
        let marks = state.watermarks();
        let mut hs = Vec::with_capacity(20 + marks.len() * 24);
        hs.extend_from_slice(HANDSHAKE_MAGIC);
        hs.extend_from_slice(&REPL_VERSION.to_le_bytes());
        put_u64(&mut hs, state.epoch);
        hs.extend_from_slice(&(marks.len() as u32).to_le_bytes());
        for (session, seg, applied) in &marks {
            put_u64(&mut hs, *session);
            put_u64(&mut hs, *seg);
            put_u64(&mut hs, *applied);
        }
        if sock.write_all(&hs).is_err() {
            sleep_interruptible(shared, backoff_delay(&shared.cfg, attempt, salt));
            attempt = attempt.saturating_add(1);
            continue;
        }
        let mut reader = FrameReader::new();
        let mut last_rx = Instant::now();
        let mut last_ack = Instant::now();
        let mut last_journal = Instant::now();
        let mut greeted = false;
        loop {
            if shared.stop.load(Ordering::Acquire) || shared.crash.load(Ordering::Acquire) {
                break 'reconnect;
            }
            if shared.tear.swap(false, Ordering::AcqRel) {
                let _ = sock.shutdown(std::net::Shutdown::Both);
                sleep_interruptible(shared, backoff_delay(&shared.cfg, attempt, salt));
                attempt = attempt.saturating_add(1);
                continue 'reconnect;
            }
            let frame = match reader.poll(&mut sock) {
                Ok(f) => f,
                Err(_) => {
                    sleep_interruptible(shared, backoff_delay(&shared.cfg, attempt, salt));
                    attempt = attempt.saturating_add(1);
                    continue 'reconnect;
                }
            };
            match frame {
                Some((TAG_HELLO, body)) => {
                    let mut off = 0;
                    let Some(epoch) = get_u64(&body, &mut off) else {
                        continue 'reconnect;
                    };
                    state.epoch = epoch;
                    greeted = true;
                    attempt = 0;
                    shared
                        .status
                        .store(FollowerStatus::Streaming as u8, Ordering::Release);
                    last_rx = Instant::now();
                }
                Some((TAG_DATA, body)) if greeted => {
                    last_rx = Instant::now();
                    if !apply_data(shared, &mut state, &body) {
                        // Sequencing violation: drop the connection and
                        // re-handshake from the applied watermark.
                        let _ = sock.shutdown(std::net::Shutdown::Both);
                        continue 'reconnect;
                    }
                    shared
                        .applied_total
                        .store(state.applied_total, Ordering::Relaxed);
                    publish_follower_lag(shared, &state);
                }
                Some((TAG_HEARTBEAT, body)) if greeted => {
                    last_rx = Instant::now();
                    let mut off = 0;
                    if let (Some(ts), Some(total)) =
                        (get_u64(&body, &mut off), get_u64(&body, &mut off))
                    {
                        state.horizon = (ts, total);
                        publish_follower_lag(shared, &state);
                    }
                }
                Some((TAG_GONE, _)) => {
                    // Epoch change (or the primary cannot serve our
                    // watermark): async-replication rollback. Discard
                    // everything and resync from scratch.
                    wipe_mirrors(&shared.dir);
                    shared.store.reset_replica();
                    state = ApplyState::new();
                    shared.applied_total.store(0, Ordering::Relaxed);
                    let _ = sock.shutdown(std::net::Shutdown::Both);
                    sleep_interruptible(shared, backoff_delay(&shared.cfg, attempt, salt));
                    attempt = attempt.saturating_add(1);
                    continue 'reconnect;
                }
                Some(_) => {}
                None => {
                    if last_rx.elapsed() > shared.cfg.quiet_timeout {
                        let _ = sock.shutdown(std::net::Shutdown::Both);
                        attempt = attempt.saturating_add(1);
                        continue 'reconnect;
                    }
                }
            }
            if greeted && last_ack.elapsed() >= shared.cfg.ack_interval {
                let mut body = Vec::with_capacity(16);
                put_u64(&mut body, state.applied_total);
                put_u64(&mut body, state.horizon.0);
                let deadline = Instant::now() + Duration::from_secs(2);
                let abort =
                    || shared.stop.load(Ordering::Acquire) || shared.crash.load(Ordering::Acquire);
                if send_frame(&mut sock, TAG_ACK, &body, deadline, &abort).is_err() {
                    attempt = attempt.saturating_add(1);
                    continue 'reconnect;
                }
                last_ack = Instant::now();
            }
            if greeted && last_journal.elapsed() >= shared.cfg.journal_interval {
                sync_and_journal(shared, &mut state);
                last_journal = Instant::now();
            }
        }
    }
    if !shared.crash.load(Ordering::Acquire) {
        sync_and_journal(shared, &mut state);
    }
    shared
        .status
        .store(FollowerStatus::Stopped as u8, Ordering::Release);
}

/// Handles one `Data` frame: mirrors the bytes at their segment offset,
/// buffers them, and applies every complete record. Returns `false` on
/// a sequencing violation (the caller reconnects).
fn apply_data(shared: &FolShared, state: &mut ApplyState, body: &[u8]) -> bool {
    let mut off = 0;
    let (Some(session), Some(seg), Some(offset)) = (
        get_u64(body, &mut off),
        get_u64(body, &mut off),
        get_u64(body, &mut off),
    ) else {
        return false;
    };
    let bytes = &body[off..];
    if bytes.is_empty() {
        return true;
    }
    let s = state.sessions.entry(session).or_insert_with(|| SessState {
        seg,
        applied: 0,
        buf: Vec::new(),
        file: None,
        dirty: false,
    });
    if session == VSEG_SESSION {
        // Value-segment bytes: mirrored verbatim at their true offset,
        // never decoded. Segment ids can jump forward (GC deletions on
        // the primary); the integrity of the bytes is re-checked per
        // read (length + CRC in every pointer), so a mirror is never
        // trusted, only stored.
        if seg > s.seg && offset == 0 {
            s.seg = seg;
            s.applied = 0;
            s.file = None;
        }
        if seg != s.seg || offset != s.applied {
            return false;
        }
        if s.file.is_none() {
            s.file = OpenOptions::new()
                .create(true)
                .truncate(false)
                .write(true)
                .read(true)
                .open(mirror_path(&shared.dir, session, seg))
                .ok();
        }
        if let Some(f) = &s.file {
            if f.write_all_at(bytes, offset).is_ok() {
                s.dirty = true;
            }
        }
        s.applied += bytes.len() as u64;
        state.applied_total += bytes.len() as u64;
        return true;
    }
    if seg == s.seg + 1 && offset == 0 && s.buf.is_empty() {
        // Primary rotated; the previous segment was fully applied.
        s.seg = seg;
        s.applied = 0;
        s.file = None;
    }
    if seg != s.seg || offset != s.applied + s.buf.len() as u64 {
        return false;
    }
    // Mirror first (at the true offset — a re-sent tail overwrites the
    // identical bytes), then buffer and apply.
    if s.file.is_none() {
        // Keep existing contents: a resumed stream overwrites the tail
        // in place at its true offset.
        s.file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .read(true)
            .open(mirror_path(&shared.dir, session, seg))
            .ok();
    }
    if let Some(f) = &s.file {
        if f.write_all_at(bytes, offset).is_ok() {
            s.dirty = true;
        }
    }
    s.buf.extend_from_slice(bytes);
    let replay_t0 = Instant::now();
    state.drain_session(&shared.store, session);
    // Replay latency per shipped WAL chunk: decode + apply into the
    // replica store (mirroring I/O above is deliberately excluded — it
    // overlaps the primary's view of ship time).
    shared.store.obs().global().record(
        mtkv::mtobs::Kind::ReplReplay,
        replay_t0.elapsed().as_nanos() as u64,
    );
    true
}

/// Publishes the follower's bounded-staleness view: bytes behind the
/// primary's durable horizon, and primary-clock microseconds between
/// the horizon heartbeat and the newest applied record.
fn publish_follower_lag(shared: &FolShared, state: &ApplyState) {
    let (hb_ts, total_durable) = state.horizon;
    let lag_bytes = total_durable.saturating_sub(state.applied_total);
    shared.stats.lag_bytes.store(lag_bytes, Ordering::Relaxed);
    let lag_ts = if lag_bytes == 0 {
        0
    } else {
        hb_ts.saturating_sub(state.last_applied_ts)
    };
    shared.stats.lag_ts_us.store(lag_ts, Ordering::Relaxed);
}

fn sleep_interruptible(shared: &FolShared, d: Duration) {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        if shared.stop.load(Ordering::Acquire) || shared.crash.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(2).min(deadline - Instant::now()));
    }
}
