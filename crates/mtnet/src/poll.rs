//! A thin readiness poller — the `mio`-style layer under the event-loop
//! server, written in-repo like every other dependency (the container
//! that builds this workspace has no access to crates.io).
//!
//! Linux gets `epoll` (level-triggered, which matches how the server
//! drains: a socket with unread bytes keeps firing until the worker has
//! consumed them); other unixes get a `poll(2)` fallback behind the same
//! API. Each [`Poller`] belongs to exactly one worker thread, so the
//! interest bookkeeping needs no synchronization beyond what the kernel
//! does.

use std::io;
use std::os::fd::RawFd;

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness notification. `hangup` folds `EPOLLHUP`/`EPOLLERR`
/// (and `EPOLLRDHUP`) together: in every case the right move is to let
/// the next read/write surface the exact error.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    // The kernel ABI for `struct epoll_event`; packed on x86-64 only
    // (the one architecture where the kernel declares it so).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the returned fd is owned by `Poller`.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as above (pre-2.6.9 kernels required a non-null event).
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        /// Blocks until at least one registration is ready (`timeout_ms < 0`
        /// waits forever), replacing `events`' contents.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: `buf` is a valid out-array of the stated length.
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let token = ev.data;
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is owned and closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::cell::RefCell;
    use std::io;
    use std::os::fd::RawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[cfg(any(target_os = "macos", target_os = "ios"))]
    type Nfds = u32;
    #[cfg(not(any(target_os = "macos", target_os = "ios")))]
    type Nfds = u64;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    /// `poll(2)` keeps no kernel-side registration set, so the poller
    /// carries it. Single-threaded by design (one poller per worker),
    /// hence `RefCell`, not a lock.
    pub struct Poller {
        registered: RefCell<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: RefCell::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.borrow_mut().push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.borrow_mut();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::other("reregister: fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.borrow_mut().retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let reg = self.registered.borrow();
            let mut fds: Vec<PollFd> = reg
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                // SAFETY: `fds` is a valid array of the stated length.
                let r = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
                if r >= 0 {
                    break r;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n > 0 {
                for (pfd, &(_, token, _)) in fds.iter().zip(reg.iter()) {
                    if pfd.revents != 0 {
                        events.push(Event {
                            token,
                            readable: pfd.revents & POLLIN != 0,
                            writable: pfd.revents & POLLOUT != 0,
                            hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

// Both `sys` backends must expose the same surface; these bindings are
// checked against whichever one is compiled in.
const _: fn(&Poller, RawFd, u64, Interest) -> io::Result<()> = Poller::register;
const _: fn(&Poller, RawFd, u64, Interest) -> io::Result<()> = Poller::reregister;
const _: fn(&Poller, RawFd) -> io::Result<()> = Poller::deregister;
const _: fn(&Poller, &mut Vec<Event>, i32) -> io::Result<()> = Poller::wait;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_roundtrip() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(b"x").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 8];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(n, 1);

        // Level-triggered: drained socket stops firing.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());

        // Write interest on an unsaturated socket fires immediately.
        poller
            .reregister(
                b.as_raw_fd(),
                7,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.writable));

        poller.deregister(b.as_raw_fd()).unwrap();
        a.write_all(b"y").unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deregistered fd must not fire");
    }

    #[test]
    fn hangup_is_reported() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).unwrap();
        assert!(!events.is_empty());
        assert!(events[0].hangup || events[0].readable);
    }
}
