//! The Masstree network server (§5 of the paper).
//!
//! A shard-per-core event-loop server. A small fixed pool of worker
//! threads (default `available_parallelism`) each runs a readiness loop
//! (see [`crate::poll`]) over nonblocking sockets it exclusively
//! **owns**: connections are assigned to a worker at accept time and
//! never migrate, so each worker privately holds its store [`Session`]
//! (and therefore its own log — the paper's per-core logs), its
//! scan-cursor map, and its reusable input/output scratch. No
//! per-request cross-core synchronization exists outside the tree
//! itself.
//!
//! On each readiness wakeup a worker drains and decodes every complete
//! frame from every ready connection, then **aggregates across
//! connections**: point gets (and puts) from different connections are
//! merged into one run through the interleaved batch traversal engine
//! (`multi_get`/`multi_put` on the worker session), and the responses
//! are demultiplexed back into each connection's output buffer with the
//! zero-copy `execute_batch_into` framing. The paper's §7 observation —
//! "batched query support is vital" — then holds even when each client
//! sends one-op frames: the server constructs the batches itself.
//!
//! Aggregation never reorders one connection's stream: each
//! connection's pending requests are first split into maximal
//! same-kind **runs** (`mtkv::split_batch_runs` — a put run also splits
//! at an intra-connection duplicate key), and the wakeup then executes
//! run *phases*: every connection's phase-`p` run executes before any
//! connection's phase-`p+1` run, with same-kind runs of one phase
//! merged across connections into a single `multi_get`/`multi_put`.
//! A connection's own stream therefore executes strictly in order even
//! when its wakeup mixes kinds (`get,get,put,get` contributes its get
//! run to phase 0, its put to phase 1, its trailing get to phase 2),
//! while cross-connection order — which carries no obligation,
//! concurrent clients already race — is exploited for aggregation.
//! Per-session logs make the merged put run safe: every write is still
//! logged by the one worker session that owns the connection.
//!
//! Connections are assigned at accept time to the **lightest** worker
//! (fewest pending output bytes, then fewest connections) rather than
//! round-robin, so a worker stuck behind slow clients does not keep
//! collecting new ones; per-worker connection counts are surfaced in
//! the wire stats.
//!
//! A server can also run as a read-only **replica** (see
//! [`crate::repl`]): configured with a redirect target, every write
//! (`put`/`remove`/`flush`/`sync`) answers [`Response::Redirect`]
//! naming the primary, while gets, scans and stats serve locally.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mtkv::{ScanCursor, Session, Store};

use crate::poll::{Event, Interest, Poller};
use crate::proto::{
    begin_batch, finish_batch, parse_batch_frame, write_value_borrowed, write_value_none, Request,
    Response, RowsWriter, ScanResume, StatsExReply, StatsReply,
};

/// Per-connection request executor. The Masstree store is the primary
/// implementation; the benchmark harness plugs stand-in systems (hash
/// stores, partitioned stores) behind the same network stack so §7's
/// system comparison exercises identical I/O paths.
pub trait Backend: Send + Sync + 'static {
    /// Per-connection state (e.g. a store session owning a log).
    fn connect(&self) -> Box<dyn ConnState>;
}

/// Connection-scoped executor produced by a [`Backend`].
pub trait ConnState: Send {
    fn execute(&mut self, req: Request) -> Response;

    /// Executes one wire batch. The default runs each request in turn;
    /// the Masstree store overrides this to feed runs of gets/puts
    /// through the interleaved batch traversal engine.
    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter().map(|r| self.execute(r)).collect()
    }

    /// Executes one wire batch, encoding the responses directly into the
    /// connection's (reusable) output buffer, and returns the number of
    /// responses written. The default materializes [`Response`]s and
    /// encodes them; the Masstree store overrides this to serialize
    /// straight from value slices borrowed under the epoch guard —
    /// the zero-copy read path.
    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        let resps = self.execute_batch(reqs);
        for resp in &resps {
            resp.encode(out);
        }
        resps.len()
    }
}

/// The most token cursors one connection may pin; beyond it the
/// least-recently-used cursor is evicted (an eviction costs its stream
/// one descent — clients pass their continuation key on follow-ups —
/// and is surfaced as `cache_scan_evictions` in [`StatsReply`]).
const MAX_SCAN_TOKENS: usize = 64;

/// Resumable-scan cursors for one connection, addressed by the wire
/// `Scan` resume token, with LRU eviction at [`MAX_SCAN_TOKENS`].
#[derive(Default)]
struct ScanTokens {
    /// token → (last-use tick, cursor).
    entries: HashMap<u64, (u64, ScanCursor)>,
    tick: u64,
}

impl ScanTokens {
    fn new() -> ScanTokens {
        ScanTokens::default()
    }

    fn take(&mut self, token: u64) -> Option<ScanCursor> {
        self.entries.remove(&token).map(|(_, c)| c)
    }

    /// Inserts (refreshing recency); returns `true` when an LRU victim
    /// was evicted to make room.
    fn insert(&mut self, token: u64, cursor: ScanCursor) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if self.entries.len() >= MAX_SCAN_TOKENS && !self.entries.contains_key(&token) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(&t, _)| t)
            {
                self.entries.remove(&victim);
                evicted = true;
            }
        }
        self.entries.insert(token, (self.tick, cursor));
        evicted
    }
}

/// Accept-time rebalancing state, one per worker: live connections and
/// the worker's pending (unsent) output bytes as of its last sweep. The
/// accept thread assigns each new connection to the worker with the
/// smallest `(pending, conns)` — a worker wedged behind slow clients
/// stops collecting new ones.
#[derive(Default)]
struct WorkerLoad {
    conns: AtomicU64,
    pending: AtomicU64,
}

/// Execution context threaded through the request executors: the
/// connection's scan-token cursors plus server-level state the wire
/// operations consult — the follower-mode redirect target and the
/// per-worker load counters reported by `Stats`.
struct ExecCtx<'a> {
    tokens: &'a mut ScanTokens,
    /// `Some(primary address)` on a read-only replica: writes answer
    /// [`Response::Redirect`] instead of executing.
    redirect: Option<&'a str>,
    /// Per-worker live-connection counters (empty outside the
    /// event-loop server).
    loads: &'a [WorkerLoad],
}

impl<'a> ExecCtx<'a> {
    fn standalone(tokens: &'a mut ScanTokens) -> ExecCtx<'a> {
        ExecCtx {
            tokens,
            redirect: None,
            loads: &[],
        }
    }

    /// Writes are refused on a read-only replica; the redirect payload
    /// names the primary so clients can re-target.
    fn refuse_write(&self) -> Option<Response> {
        self.redirect
            .map(|primary| Response::Redirect(format!("read-only replica; primary at {primary}")))
    }
}

/// A connection's server-side state: the store session plus the
/// resumable-scan cursors addressed by the wire `Scan` resume tokens.
/// This is the embeddable single-connection executor (benchmarks, the
/// generic [`Backend`] path); the event-loop server itself holds one
/// session per **worker** and a per-worker cursor map instead.
pub struct StoreConn {
    session: Session,
    scan_tokens: ScanTokens,
}

impl StoreConn {
    pub fn new(session: Session) -> StoreConn {
        StoreConn {
            session,
            scan_tokens: ScanTokens::new(),
        }
    }

    /// The underlying store session.
    pub fn session(&self) -> &Session {
        &self.session
    }
}

impl ConnState for StoreConn {
    fn execute(&mut self, req: Request) -> Response {
        execute_tokens(
            &self.session,
            &mut ExecCtx::standalone(&mut self.scan_tokens),
            req,
        )
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let mut sink = OwnedSink(Vec::with_capacity(reqs.len()));
        execute_batch_runs(
            &self.session,
            &mut ExecCtx::standalone(&mut self.scan_tokens),
            reqs,
            &mut sink,
        );
        sink.0
    }

    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        let mut sink = WireSink { out, written: 0 };
        execute_batch_runs(
            &self.session,
            &mut ExecCtx::standalone(&mut self.scan_tokens),
            reqs,
            &mut sink,
        );
        sink.written
    }
}

impl ConnState for Session {
    fn execute(&mut self, req: Request) -> Response {
        execute(self, req)
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        execute_batch(self, reqs)
    }

    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        execute_batch_into(self, reqs, out)
    }
}

/// Event-loop server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker (event-loop) threads; `0` means `available_parallelism`.
    pub workers: usize,
    /// Cross-connection batch aggregation on store workers. On by
    /// default; benchmarks switch it off to measure the per-frame path.
    pub aggregate: bool,
    /// Read-only replica mode: `Some(primary address)` makes every
    /// write request answer [`Response::Redirect`] naming the primary
    /// instead of executing. Reads, scans and stats serve locally.
    pub redirect: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            aggregate: true,
            redirect: None,
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A running server; dropping it (or calling [`Server::stop`]) shuts the
/// listener and every worker down, closing all worker sessions (their
/// logs flush cleanly on drop).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<WorkerHandle>,
    ops: Arc<AtomicU64>,
}

struct WorkerHandle {
    thread: Option<std::thread::JoinHandle<()>>,
    wake_tx: UnixStream,
}

impl Server {
    /// Starts serving `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Server::addr`]).
    pub fn start(store: Arc<Store>, addr: &str) -> std::io::Result<Server> {
        Self::start_with(store, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit worker-pool tunables.
    pub fn start_with(
        store: Arc<Store>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let n = config.resolved_workers();
        let mut kinds = Vec::with_capacity(n);
        for _ in 0..n {
            // One session — one log — per worker, opened before serving
            // so a failure surfaces here, not on some later connection.
            let session = store.session()?;
            kinds.push(WorkerKind::Store {
                session,
                aggregate: config.aggregate,
                redirect: config.redirect.clone(),
                cursors: HashMap::new(),
            });
        }
        Self::launch(kinds, addr)
    }

    /// Starts serving an arbitrary [`Backend`].
    pub fn start_backend(backend: Arc<dyn Backend>, addr: &str) -> std::io::Result<Server> {
        Self::start_backend_with(backend, addr, ServerConfig::default())
    }

    /// [`Server::start_backend`] with explicit worker-pool tunables.
    /// Generic backends keep per-connection state ([`Backend::connect`]
    /// at adoption time) and execute per-frame — aggregation is a store
    /// capability.
    pub fn start_backend_with(
        backend: Arc<dyn Backend>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let n = config.resolved_workers();
        let kinds = (0..n)
            .map(|_| WorkerKind::Backend(Arc::clone(&backend)))
            .collect();
        Self::launch(kinds, addr)
    }

    fn launch(kinds: Vec<WorkerKind>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let loads: Arc<Vec<WorkerLoad>> =
            Arc::new((0..kinds.len()).map(|_| WorkerLoad::default()).collect());
        let mut handles: Vec<WorkerHandle> = Vec::new();
        let mut mailboxes: Vec<(Arc<Mutex<Vec<TcpStream>>>, UnixStream)> = Vec::new();
        // Stops and joins the workers launched so far (partial-launch
        // failure cleanup).
        let abort = |handles: &mut Vec<WorkerHandle>, e: std::io::Error| -> std::io::Error {
            stop.store(true, Ordering::Release);
            for h in handles.iter_mut() {
                wake(&h.wake_tx);
                if let Some(t) = h.thread.take() {
                    let _ = t.join();
                }
            }
            e
        };
        for (id, kind) in kinds.into_iter().enumerate() {
            let launched = (|| -> std::io::Result<(WorkerHandle, _)> {
                let (wake_tx, wake_rx) = UnixStream::pair()?;
                wake_tx.set_nonblocking(true)?;
                wake_rx.set_nonblocking(true)?;
                let inbox = Arc::new(Mutex::new(Vec::new()));
                let worker = Worker {
                    id,
                    poller: Poller::new()?,
                    wake_rx,
                    inbox: Arc::clone(&inbox),
                    stop: Arc::clone(&stop),
                    ops: Arc::clone(&ops),
                    loads: Arc::clone(&loads),
                    kind,
                    conns: Vec::new(),
                    free: Vec::new(),
                    next_conn_seq: 0,
                };
                let thread = std::thread::Builder::new()
                    .name(format!("mtnet-worker-{id}"))
                    .spawn(move || worker.run())?;
                let mailbox = (inbox, wake_tx.try_clone()?);
                Ok((
                    WorkerHandle {
                        thread: Some(thread),
                        wake_tx,
                    },
                    mailbox,
                ))
            })();
            match launched {
                Ok((handle, mailbox)) => {
                    handles.push(handle);
                    mailboxes.push(mailbox);
                }
                Err(e) => return Err(abort(&mut handles, e)),
            }
        }
        let stop2 = Arc::clone(&stop);
        let loads2 = Arc::clone(&loads);
        let accept_thread = std::thread::Builder::new()
            .name("mtnet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    // Assign to the lightest worker — fewest pending
                    // output bytes, connection count as the tiebreak —
                    // then the connection belongs to that worker for its
                    // whole life (session affinity). The count is bumped
                    // here, before adoption, so a burst of accepts
                    // spreads instead of piling onto one worker.
                    let mut best = 0usize;
                    let mut best_key = (u64::MAX, u64::MAX);
                    for (i, l) in loads2.iter().enumerate() {
                        let key = (
                            l.pending.load(Ordering::Relaxed),
                            l.conns.load(Ordering::Relaxed),
                        );
                        if key < best_key {
                            best_key = key;
                            best = i;
                        }
                    }
                    loads2[best].conns.fetch_add(1, Ordering::Relaxed);
                    let (inbox, wake_tx) = &mailboxes[best];
                    inbox.lock().unwrap().push(conn);
                    wake(wake_tx);
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            workers: handles,
            ops,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total operations served (for benchmark harnesses).
    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops accepting, shuts every worker down (closing its
    /// connections), and joins them — worker sessions are dropped (and
    /// their logs flushed) before this returns.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in &mut self.workers {
            wake(&w.wake_tx);
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Nudges a worker out of its poll wait. A full pipe means a wake is
/// already pending, which is all the byte signals anyway.
fn wake(tx: &UnixStream) {
    let _ = (&*tx).write(&[1u8]);
}

/// Poll token of the worker's wake pipe (connection slots count up from
/// zero and can never reach it).
const WAKE_TOKEN: u64 = u64::MAX;

/// Pending-output high-water mark: above this a connection stops being
/// read (its readable interest is dropped, so the level-triggered poller
/// stays quiet) until the client drains responses — the event-loop
/// equivalent of the old blocking-write backpressure.
const HIGH_WATER: usize = 1 << 20;

/// Per-connection read budget per wakeup, so one firehose connection
/// cannot starve its worker's other connections.
const READ_BUDGET: usize = 1 << 20;

struct Conn {
    stream: TcpStream,
    /// Globally unique, shard-routable id: `worker << 32 | seq`. Scan
    /// cursors live in the **worker's** cursor map keyed by this id, so
    /// the worker that owns a resume token is recoverable from the id
    /// alone (`id >> 32`) — the routing invariant the torture test
    /// checks across workers.
    id: u64,
    /// Input accumulation: bytes `[rd_pos..]` are not yet parsed.
    rd: Vec<u8>,
    rd_pos: usize,
    /// Output accumulation: bytes `[wr_pos..]` are not yet written.
    wr: Vec<u8>,
    wr_pos: usize,
    interest: Interest,
    /// Clean end-of-stream seen; drain what's left, then close.
    eof: bool,
    /// I/O failure; close without draining.
    dead: bool,
    /// Protocol failure (oversized or undecodable frame): responses for
    /// frames parsed before the poison are still delivered, then one
    /// typed [`Response::Err`] naming the failure, then a clean close —
    /// never a silent drop that leaves the client hung.
    poisoned: Option<String>,
    /// Generic-backend path only: the per-connection executor.
    state: Option<Box<dyn ConnState>>,
}

impl Conn {
    fn pending_wr(&self) -> usize {
        self.wr.len() - self.wr_pos
    }

    /// Marks a protocol failure: further input is discarded and never
    /// parsed; the sweep appends the typed error reply and schedules a
    /// drain-then-close.
    fn poison(&mut self, msg: &str) {
        self.poisoned = Some(msg.to_string());
        self.rd.clear();
        self.rd_pos = 0;
    }
}

enum WorkerKind {
    Store {
        session: Session,
        aggregate: bool,
        /// Follower mode: the primary address writes are redirected to.
        redirect: Option<String>,
        /// The per-worker cursor map (replacing the per-connection one):
        /// connection id → that connection's resume-token cursors.
        cursors: HashMap<u64, ScanTokens>,
    },
    Backend(Arc<dyn Backend>),
}

/// One decoded frame: `len` requests at `start` in the wakeup's flat
/// request arena, owed to connection slot `slot` in arrival order.
struct Frame {
    slot: usize,
    start: usize,
    len: usize,
}

/// The wakeup's decoded input, flat so capacity is reused across
/// wakeups: all frames' requests in one arena, frames grouped per
/// connection in arrival order.
#[derive(Default)]
struct FrameBuf {
    reqs: Vec<Request>,
    frames: Vec<Frame>,
}

impl FrameBuf {
    fn clear(&mut self) {
        self.reqs.clear();
        self.frames.clear();
    }
}

struct Worker {
    id: usize,
    poller: Poller,
    wake_rx: UnixStream,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    ops: Arc<AtomicU64>,
    loads: Arc<Vec<WorkerLoad>>,
    kind: WorkerKind,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_conn_seq: u64,
}

impl Worker {
    fn run(mut self) {
        if self
            .poller
            .register(self.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut scratch = vec![0u8; 64 * 1024];
        let mut buf = FrameBuf::default();
        loop {
            if self.poller.wait(&mut events, -1).is_err() {
                return;
            }
            let mut woke = false;
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    woke = true;
                    continue;
                }
                let slot = ev.token as usize;
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                if ev.writable {
                    flush_conn(conn);
                }
                if ev.readable || ev.hangup {
                    read_conn(conn, &mut scratch);
                }
            }
            if woke {
                self.drain_wake();
                self.adopt_new_conns();
            }
            if self.stop.load(Ordering::Acquire) {
                // Dropping `self` closes every connection and the worker
                // session (flushing its log).
                return;
            }
            // Parse → execute → flush until quiescent. Backpressured
            // connections stop parsing at the high-water mark; the
            // writable readiness that drains them re-enters this loop.
            loop {
                self.collect_frames(&mut buf);
                if buf.frames.is_empty() {
                    break;
                }
                self.execute_frames(&mut buf);
                for f in &buf.frames {
                    if let Some(conn) = self.conns[f.slot].as_mut() {
                        flush_conn(conn);
                    }
                }
                buf.clear();
            }
            self.sweep();
        }
    }

    fn drain_wake(&mut self) {
        let mut b = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut b) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn adopt_new_conns(&mut self) {
        let incoming = std::mem::take(&mut *self.inbox.lock().unwrap());
        for stream in incoming {
            // The accept thread counted this connection when it picked
            // us; un-count it on any adoption failure.
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                self.loads[self.id].conns.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let state = match &self.kind {
                WorkerKind::Backend(b) => Some(b.connect()),
                WorkerKind::Store { .. } => None,
            };
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            if self
                .poller
                .register(stream.as_raw_fd(), slot as u64, Interest::READ)
                .is_err()
            {
                self.free.push(slot);
                self.loads[self.id].conns.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let id = ((self.id as u64) << 32) | self.next_conn_seq;
            self.next_conn_seq += 1;
            self.conns[slot] = Some(Conn {
                stream,
                id,
                rd: Vec::new(),
                rd_pos: 0,
                wr: Vec::new(),
                wr_pos: 0,
                interest: Interest::READ,
                eof: false,
                dead: false,
                poisoned: None,
                state,
            });
        }
    }

    /// Decodes every complete frame buffered on every connection into
    /// `buf` (frames stay grouped per connection, in arrival order).
    fn collect_frames(&mut self, buf: &mut FrameBuf) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.dead || conn.poisoned.is_some() {
                continue;
            }
            while conn.pending_wr() < HIGH_WATER {
                match parse_batch_frame(&conn.rd[conn.rd_pos..]) {
                    Ok(Some((consumed, count))) => {
                        let start = buf.reqs.len();
                        let mut p = &conn.rd[conn.rd_pos + 8..conn.rd_pos + consumed];
                        let mut ok = true;
                        for _ in 0..count {
                            match Request::decode(&mut p) {
                                Some(req) => buf.reqs.push(req),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if !ok {
                            buf.reqs.truncate(start);
                            conn.poison("bad batch frame: undecodable request");
                            break;
                        }
                        conn.rd_pos += consumed;
                        buf.frames.push(Frame {
                            slot,
                            start,
                            len: count as usize,
                        });
                    }
                    Ok(None) => break,
                    Err(e) => {
                        conn.poison(&format!("bad batch frame: {e}"));
                        break;
                    }
                }
            }
            if conn.rd_pos == conn.rd.len() {
                conn.rd.clear();
                conn.rd_pos = 0;
            } else if conn.rd_pos > 64 * 1024 {
                conn.rd.drain(..conn.rd_pos);
                conn.rd_pos = 0;
            }
        }
    }

    fn execute_frames(&mut self, buf: &mut FrameBuf) {
        match &mut self.kind {
            WorkerKind::Store {
                session,
                aggregate,
                redirect,
                cursors,
            } => execute_frames_store(
                self.id,
                session,
                cursors,
                *aggregate,
                redirect.as_deref(),
                &self.loads,
                &mut self.conns,
                buf,
                &self.ops,
            ),
            WorkerKind::Backend(_) => {
                for f in &buf.frames {
                    let Some(conn) = self.conns[f.slot].as_mut() else {
                        continue;
                    };
                    if conn.dead {
                        continue;
                    }
                    let reqs = take_frame_reqs(&mut buf.reqs, f);
                    let Conn { state, wr, .. } = conn;
                    let mark = begin_batch(wr);
                    let written = state
                        .as_mut()
                        .expect("backend connections carry state")
                        .execute_batch_into(reqs, wr);
                    if written != f.len {
                        // A misbehaving backend must not desync the framed
                        // protocol: fail the connection, not the count.
                        conn.wr.truncate(mark);
                        conn.dead = true;
                        continue;
                    }
                    finish_batch(wr, mark, written);
                    self.ops.fetch_add(f.len as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Post-wakeup housekeeping: opportunistic write flush, interest
    /// reconciliation (read gated by backpressure, write by pending
    /// output), and closing finished connections.
    fn sweep(&mut self) {
        for slot in 0..self.conns.len() {
            let close = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if !conn.dead {
                    if let Some(msg) = conn.poisoned.take() {
                        // Protocol failure: responses for the frames
                        // parsed before the poison are already encoded;
                        // append the typed error as its own one-response
                        // batch, then drain and close.
                        let mark = begin_batch(&mut conn.wr);
                        Response::Err(msg).encode(&mut conn.wr);
                        finish_batch(&mut conn.wr, mark, 1);
                        conn.eof = true;
                    }
                }
                if !conn.dead && conn.pending_wr() > 0 {
                    flush_conn(conn);
                }
                conn.dead || (conn.eof && conn.pending_wr() == 0)
            };
            if close {
                self.close_conn(slot);
                continue;
            }
            let conn = self.conns[slot].as_mut().expect("checked above");
            let desired = Interest {
                readable: !conn.eof && conn.pending_wr() < HIGH_WATER,
                writable: conn.pending_wr() > 0,
            };
            if desired != conn.interest {
                if self
                    .poller
                    .reregister(conn.stream.as_raw_fd(), slot as u64, desired)
                    .is_ok()
                {
                    conn.interest = desired;
                } else {
                    self.close_conn(slot);
                }
            }
        }
        // Publish this worker's backlog for the accept-time rebalancer.
        let pending: u64 = self
            .conns
            .iter()
            .flatten()
            .map(|c| c.pending_wr() as u64)
            .sum();
        self.loads[self.id]
            .pending
            .store(pending, Ordering::Relaxed);
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            if let WorkerKind::Store { cursors, .. } = &mut self.kind {
                // The connection's scan cursors die with it.
                cursors.remove(&conn.id);
            }
            self.free.push(slot);
            self.loads[self.id].conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn read_conn(conn: &mut Conn, scratch: &mut [u8]) {
    if conn.eof || conn.dead || conn.poisoned.is_some() {
        return;
    }
    let mut budget = READ_BUDGET;
    while budget > 0 {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rd.extend_from_slice(&scratch[..n]);
                budget = budget.saturating_sub(n);
                if n < scratch.len() {
                    // Socket buffer drained (level-triggered readiness
                    // covers the rare refill race).
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

fn flush_conn(conn: &mut Conn) {
    if conn.dead {
        return;
    }
    while conn.wr_pos < conn.wr.len() {
        match conn.stream.write(&conn.wr[conn.wr_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.wr_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wr_pos == conn.wr.len() {
        // Fully drained: reset in place, keeping the connection's
        // high-water capacity for the next batch.
        conn.wr.clear();
        conn.wr_pos = 0;
    } else if conn.wr_pos > HIGH_WATER {
        conn.wr.drain(..conn.wr_pos);
        conn.wr_pos = 0;
    }
}

/// Moves one frame's requests out of the arena (placeholder swap — no
/// payload clone).
fn take_frame_reqs(reqs: &mut [Request], f: &Frame) -> Vec<Request> {
    reqs[f.start..f.start + f.len]
        .iter_mut()
        .map(|r| std::mem::replace(r, Request::Remove { key: Vec::new() }))
        .collect()
}

/// One connection's wakeup contribution: its requests split into
/// maximal same-kind runs (run `p` executes in cross-connection phase
/// `p`), plus the emitter state that demultiplexes responses back into
/// the connection's frames as they are produced.
///
/// The emitter exploits two invariants: a connection's frames are
/// contiguous in the wakeup buffer (and their requests contiguous in
/// the arena), and every execution path below produces exactly one
/// response per request, **in request order** for any one connection.
/// It therefore just counts responses, opening a batch header at each
/// frame boundary and length-patching it when the frame's count is
/// reached.
struct ConnPlan {
    slot: usize,
    /// `(kind, range in the request arena)` per run, in stream order.
    runs: Vec<(mtkv::RunKind, std::ops::Range<usize>)>,
    /// This connection's frames (indices into `buf.frames`).
    frames: std::ops::Range<usize>,
    /// Emitter: current frame, responses emitted into it, its
    /// `begin_batch` mark, and whether the header is open.
    fidx: usize,
    emitted: usize,
    mark: usize,
    open: bool,
}

impl ConnPlan {
    /// Opens the current frame's batch header if needed (flushing any
    /// leading zero-request frames as empty batches).
    fn begin_response(&mut self, wr: &mut Vec<u8>, frames: &[Frame]) {
        if !self.open {
            while self.fidx < self.frames.end && frames[self.fidx].len == 0 {
                let mark = begin_batch(wr);
                finish_batch(wr, mark, 0);
                self.fidx += 1;
            }
            self.mark = begin_batch(wr);
            self.open = true;
        }
    }

    /// Counts one emitted response, closing the frame when full.
    fn end_response(&mut self, wr: &mut Vec<u8>, frames: &[Frame], ops: &AtomicU64) {
        self.emitted += 1;
        if self.emitted == frames[self.fidx].len {
            finish_batch(wr, self.mark, self.emitted);
            ops.fetch_add(self.emitted as u64, Ordering::Relaxed);
            self.fidx += 1;
            self.emitted = 0;
            self.open = false;
        }
    }

    /// Flushes trailing zero-request frames after all runs executed.
    fn finish(&mut self, wr: &mut Vec<u8>, frames: &[Frame]) {
        debug_assert!(!self.open, "every started frame must have completed");
        while self.fidx < self.frames.end && frames[self.fidx].len == 0 {
            let mark = begin_batch(wr);
            finish_batch(wr, mark, 0);
            self.fidx += 1;
        }
        debug_assert_eq!(self.fidx, self.frames.end, "all frames answered");
    }
}

/// The store worker's wakeup executor: splits each connection's pending
/// requests into runs, executes the runs in cross-connection **phases**
/// (every connection's run `p` before any run `p+1`, same-kind runs of
/// one phase merged into a single `multi_get`/`multi_put` through the
/// interleaved batch engine), and demultiplexes responses back into
/// each connection's output buffer (zero-copy for gets). See the module
/// docs for the ordering argument.
#[allow(clippy::too_many_arguments)]
fn execute_frames_store(
    worker_id: usize,
    session: &Session,
    cursors: &mut HashMap<u64, ScanTokens>,
    aggregate: bool,
    redirect: Option<&str>,
    loads: &[WorkerLoad],
    conns: &mut [Option<Conn>],
    buf: &mut FrameBuf,
    ops: &AtomicU64,
) {
    // Group frames per connection (contiguous by construction) and
    // split each connection's concatenated requests into runs. On a
    // read-only replica puts classify as Other so they route through
    // the single-request path, which answers the typed redirect.
    let kind_of = |r: &Request| match r {
        Request::Get { .. } => mtkv::RunKind::Get,
        Request::Put { .. } if redirect.is_none() => mtkv::RunKind::Put,
        _ => mtkv::RunKind::Other,
    };
    let mut plans: Vec<ConnPlan> = Vec::new();
    let mut i = 0;
    while i < buf.frames.len() {
        let slot = buf.frames[i].slot;
        let mut j = i + 1;
        while j < buf.frames.len() && buf.frames[j].slot == slot {
            j += 1;
        }
        let alive = conns[slot].as_ref().is_some_and(|c| !c.dead);
        if alive {
            debug_assert_eq!(
                (conns[slot].as_ref().expect("alive").id >> 32) as usize,
                worker_id,
                "session affinity: a connection's frames execute on its owning worker"
            );
            let base = buf.frames[i].start;
            let last = &buf.frames[j - 1];
            let reqs = &buf.reqs[base..last.start + last.len];
            let runs = if aggregate {
                mtkv::split_batch_runs(reqs, kind_of, |r| match r {
                    Request::Get { key, .. } | Request::Put { key, .. } => key.as_slice(),
                    _ => &[],
                })
                .into_iter()
                .map(|(k, r)| (k, r.start + base..r.end + base))
                .collect()
            } else {
                Vec::new() // per-frame path below
            };
            plans.push(ConnPlan {
                slot,
                runs,
                frames: i..j,
                fidx: i,
                emitted: 0,
                mark: 0,
                open: false,
            });
        }
        i = j;
    }

    // ---- aggregation off: the per-frame path ----
    if !aggregate {
        for plan in &plans {
            for fi in plan.frames.clone() {
                let f = &buf.frames[fi];
                let conn = conns[f.slot].as_mut().expect("live conn");
                if conn.dead {
                    continue;
                }
                let reqs = take_frame_reqs(&mut buf.reqs, f);
                let tokens = cursors.entry(conn.id).or_default();
                let mut ctx = ExecCtx {
                    tokens,
                    redirect,
                    loads,
                };
                let mark = begin_batch(&mut conn.wr);
                let mut sink = WireSink {
                    out: &mut conn.wr,
                    written: 0,
                };
                execute_batch_runs(session, &mut ctx, reqs, &mut sink);
                let written = sink.written;
                if written != f.len {
                    conn.wr.truncate(mark);
                    conn.dead = true;
                    continue;
                }
                finish_batch(&mut conn.wr, mark, written);
                ops.fetch_add(f.len as u64, Ordering::Relaxed);
            }
        }
        return;
    }

    // ---- phase loop ----
    let phases = plans.iter().map(|p| p.runs.len()).max().unwrap_or(0);
    for phase in 0..phases {
        // Merged put run: flatten every connection's phase-`phase` put
        // run (intra-connection duplicate keys were already split into
        // later phases; cross-connection duplicates carry no ordering
        // obligation), one multi_put, then demux the versions.
        {
            let mut flat: Vec<&Request> = Vec::new();
            // (plan index, put count) per contributing connection.
            let mut segs: Vec<(usize, usize)> = Vec::new();
            for (pi, p) in plans.iter().enumerate() {
                let Some((mtkv::RunKind::Put, r)) = p.runs.get(phase) else {
                    continue;
                };
                flat.extend(buf.reqs[r.clone()].iter());
                segs.push((pi, r.len()));
            }
            if !flat.is_empty() {
                let updates: Vec<Vec<(usize, &[u8])>> = flat
                    .iter()
                    .map(|r| match r {
                        Request::Put { cols, .. } => cols
                            .iter()
                            .map(|(i, d)| (*i as usize, d.as_slice()))
                            .collect(),
                        _ => unreachable!("put runs hold only puts"),
                    })
                    .collect();
                let put_ops: Vec<mtkv::PutOp<'_>> = flat
                    .iter()
                    .zip(&updates)
                    .map(|(r, u)| match r {
                        Request::Put { key, .. } => (key.as_slice(), u.as_slice()),
                        _ => unreachable!("put runs hold only puts"),
                    })
                    .collect();
                let _span = maybe_span(session);
                let t0 = std::time::Instant::now();
                let versions = session.multi_put(&put_ops);
                session
                    .recorder()
                    .record_op(mtkv::mtobs::Kind::MultiPut, t0.elapsed().as_nanos() as u64);
                let mut v = versions.iter();
                for &(pi, count) in &segs {
                    let plan = &mut plans[pi];
                    let conn = conns[plan.slot].as_mut().expect("live conn");
                    for _ in 0..count {
                        plan.begin_response(&mut conn.wr, &buf.frames);
                        Response::PutOk(*v.next().expect("one version per put"))
                            .encode(&mut conn.wr);
                        plan.end_response(&mut conn.wr, &buf.frames, ops);
                    }
                }
            }
        }

        // Merged get run: one multi_get over every connection's
        // phase-`phase` get run; the visitor runs in input order, so
        // each response serializes zero-copy straight into its owning
        // connection's output buffer via the emitter.
        {
            let mut get_keys: Vec<&[u8]> = Vec::new();
            let mut get_cols: Vec<Option<&[u16]>> = Vec::new();
            // (plan index, end index in get_keys) per contribution.
            let mut segs: Vec<(usize, usize)> = Vec::new();
            for (pi, p) in plans.iter().enumerate() {
                let Some((mtkv::RunKind::Get, r)) = p.runs.get(phase) else {
                    continue;
                };
                for req in &buf.reqs[r.clone()] {
                    match req {
                        Request::Get { key, cols } => {
                            get_keys.push(key.as_slice());
                            get_cols.push(cols.as_deref());
                        }
                        _ => unreachable!("get runs hold only gets"),
                    }
                }
                segs.push((pi, get_keys.len()));
            }
            if !get_keys.is_empty() {
                // One timing per merged wakeup-wide run (covers the
                // interleaved traversal and the zero-copy serialization
                // of every connection's responses).
                let _span = maybe_span(session);
                let t0 = std::time::Instant::now();
                let mut si = 0usize;
                session.multi_get_with(&get_keys, |i, hit| {
                    while i >= segs[si].1 {
                        si += 1;
                    }
                    let plan = &mut plans[segs[si].0];
                    let conn = conns[plan.slot].as_mut().expect("live conn");
                    plan.begin_response(&mut conn.wr, &buf.frames);
                    write_get_response(&mut conn.wr, hit, get_cols[i]);
                    plan.end_response(&mut conn.wr, &buf.frames, ops);
                });
                session
                    .recorder()
                    .record_op(mtkv::mtobs::Kind::MultiGet, t0.elapsed().as_nanos() as u64);
            }
        }

        // Non-groupable runs: single-request execution, in place.
        for plan in &mut plans {
            let Some((mtkv::RunKind::Other, r)) = plan.runs.get(phase).cloned() else {
                continue;
            };
            let conn = conns[plan.slot].as_mut().expect("live conn");
            let tokens = cursors.entry(conn.id).or_default();
            let mut ctx = ExecCtx {
                tokens,
                redirect,
                loads,
            };
            for idx in r {
                let req =
                    std::mem::replace(&mut buf.reqs[idx], Request::Remove { key: Vec::new() });
                plan.begin_response(&mut conn.wr, &buf.frames);
                execute_into_tokens(session, &mut ctx, req, &mut conn.wr);
                plan.end_response(&mut conn.wr, &buf.frames, ops);
            }
        }
    }

    // Trailing zero-request frames still owe their empty batch replies.
    for plan in &mut plans {
        let conn = conns[plan.slot].as_mut().expect("live conn");
        plan.finish(&mut conn.wr, &buf.frames);
    }
}

/// Where a batch executor's responses go: owned [`Response`]s (the
/// compatibility path) or wire bytes written straight from borrowed
/// value slices (the zero-copy path). One implementation of the run
/// loop ([`execute_batch_runs`]) serves both, so the grouping semantics
/// cannot drift apart.
trait ResponseSink {
    /// Emits one get result from the borrowed value and the request's
    /// column selection.
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>);
    /// Emits one put result.
    fn put_ok(&mut self, version: u64);
    /// Executes and emits one non-groupable request.
    fn single(&mut self, session: &Session, ctx: &mut ExecCtx<'_>, req: Request);
}

/// Materializes owned [`Response`]s (copying the selected columns).
struct OwnedSink(Vec<Response>);

impl ResponseSink for OwnedSink {
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
        self.0.push(Response::Value(hit.map(|v| {
            match cols {
                None => v.cols(),
                Some(ids) => ids
                    .iter()
                    .map(|&c| v.col(c as usize).unwrap_or(&[]).to_vec())
                    .collect(),
            }
        })));
    }

    fn put_ok(&mut self, version: u64) {
        self.0.push(Response::PutOk(version));
    }

    fn single(&mut self, session: &Session, ctx: &mut ExecCtx<'_>, req: Request) {
        self.0.push(execute_tokens(session, ctx, req));
    }
}

/// Serializes responses directly into the connection's output buffer.
struct WireSink<'a> {
    out: &'a mut Vec<u8>,
    written: usize,
}

impl ResponseSink for WireSink<'_> {
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
        write_get_response(self.out, hit, cols);
        self.written += 1;
    }

    fn put_ok(&mut self, version: u64) {
        Response::PutOk(version).encode(self.out);
        self.written += 1;
    }

    fn single(&mut self, session: &Session, ctx: &mut ExecCtx<'_>, req: Request) {
        execute_into_tokens(session, ctx, req, self.out);
        self.written += 1;
    }
}

/// The shared batch run loop: splits the batch into maximal groupable
/// runs, feeds get/put runs through the interleaved batch traversal
/// engine (`masstree::batch`) instead of N sequential descents, and
/// hands every result to `sink`.
///
/// Batch semantics are preserved exactly: responses are positionally
/// matched, requests of different kinds never reorder across each other,
/// and a run of puts is split at a duplicate key so writes to the same
/// key apply in batch order (within an interleaved group, duplicate-key
/// order would otherwise be unspecified).
fn execute_batch_runs<S: ResponseSink>(
    session: &Session,
    ctx: &mut ExecCtx<'_>,
    mut reqs: Vec<Request>,
    sink: &mut S,
) {
    // On a read-only replica puts classify as Other so the single path
    // answers the typed redirect instead of writing.
    let redirecting = ctx.redirect.is_some();
    let runs = mtkv::split_batch_runs(
        &reqs,
        |r| match r {
            Request::Get { .. } => mtkv::RunKind::Get,
            Request::Put { .. } if !redirecting => mtkv::RunKind::Put,
            _ => mtkv::RunKind::Other,
        },
        |r| match r {
            Request::Get { key, .. } | Request::Put { key, .. } => key.as_slice(),
            _ => &[],
        },
    );
    for (kind, range) in runs {
        let run = &reqs[range.clone()];
        match kind {
            mtkv::RunKind::Get if run.len() >= 2 => {
                let keys: Vec<&[u8]> = run
                    .iter()
                    .map(|r| match r {
                        Request::Get { key, .. } => key.as_slice(),
                        _ => unreachable!("run holds only gets"),
                    })
                    .collect();
                // Timed at run granularity — two clock reads amortized
                // over the whole interleaved group, so the ≤2% overhead
                // budget on the batched read path holds.
                let _span = maybe_span(session);
                let t0 = std::time::Instant::now();
                // Each request's own column selection is applied against
                // the live value inside the visitor — the sink decides
                // whether that means copying (owned) or encoding (wire).
                session.multi_get_with(&keys, |i, hit| {
                    let Request::Get { cols, .. } = &run[i] else {
                        unreachable!("run holds only gets")
                    };
                    sink.get_result(hit, cols.as_deref());
                });
                session
                    .recorder()
                    .record_op(mtkv::mtobs::Kind::MultiGet, t0.elapsed().as_nanos() as u64);
            }
            mtkv::RunKind::Put if run.len() >= 2 => {
                let updates: Vec<Vec<(usize, &[u8])>> = run
                    .iter()
                    .map(|r| match r {
                        Request::Put { cols, .. } => cols
                            .iter()
                            .map(|(i, d)| (*i as usize, d.as_slice()))
                            .collect(),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                let ops: Vec<mtkv::PutOp<'_>> = run
                    .iter()
                    .zip(&updates)
                    .map(|(r, u)| match r {
                        Request::Put { key, .. } => (key.as_slice(), u.as_slice()),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                let _span = maybe_span(session);
                let t0 = std::time::Instant::now();
                for version in session.multi_put(&ops) {
                    sink.put_ok(version);
                }
                session
                    .recorder()
                    .record_op(mtkv::mtobs::Kind::MultiPut, t0.elapsed().as_nanos() as u64);
            }
            _ => {
                // Singleton or non-groupable run: execute in place. The
                // placeholder swap lets us move the request out without
                // cloning its payload.
                for idx in range {
                    let req =
                        std::mem::replace(&mut reqs[idx], Request::Remove { key: Vec::new() });
                    sink.single(session, ctx, req);
                }
            }
        }
    }
}

/// Executes a whole wire batch against a store session, returning owned
/// responses. See [`execute_batch_runs`] for the grouping semantics.
pub fn execute_batch(session: &Session, reqs: Vec<Request>) -> Vec<Response> {
    let mut sink = OwnedSink(Vec::with_capacity(reqs.len()));
    execute_batch_runs(
        session,
        &mut ExecCtx::standalone(&mut ScanTokens::new()),
        reqs,
        &mut sink,
    );
    sink.0
}

/// Executes a whole wire batch against a store session, serializing
/// responses directly into `out` — the zero-copy read path. Runs of
/// consecutive gets go through the interleaved batch traversal engine
/// and their responses are encoded **inside the `multi_get_with`
/// visitor**, with column slices borrowed straight out of each live
/// `ColValue` under the epoch guard; nothing is copied into intermediate
/// `Vec<Response>` payloads. Returns the number of responses written.
pub fn execute_batch_into(session: &Session, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
    let mut sink = WireSink { out, written: 0 };
    execute_batch_runs(
        session,
        &mut ExecCtx::standalone(&mut ScanTokens::new()),
        reqs,
        &mut sink,
    );
    sink.written
}

/// Executes one request against a store session, serializing the
/// response directly into `out`. Gets and scans write column slices
/// borrowed under the epoch guard (via `get_with` / `get_range_with`);
/// puts and removes encode their small fixed-size replies.
pub fn execute_into(session: &Session, req: Request, out: &mut Vec<u8>) {
    execute_into_tokens(
        session,
        &mut ExecCtx::standalone(&mut ScanTokens::new()),
        req,
        out,
    )
}

/// [`execute_into`] with the connection's execution context, so
/// resumable `Scan` requests re-enter the tree at their remembered
/// border nodes and replica mode refuses writes.
fn execute_into_tokens(session: &Session, ctx: &mut ExecCtx<'_>, req: Request, out: &mut Vec<u8>) {
    let _span = maybe_span(session);
    match req {
        Request::Get { key, cols } => {
            session.get_with(&key, |hit| write_get_response(out, hit, cols.as_deref()));
        }
        Request::Put { key, cols } => {
            if let Some(resp) = ctx.refuse_write() {
                return resp.encode(out);
            }
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates)).encode(out);
        }
        Request::Remove { key } => {
            if let Some(resp) = ctx.refuse_write() {
                return resp.encode(out);
            }
            Response::RemoveOk(session.remove(&key)).encode(out)
        }
        Request::Scan {
            key,
            count,
            cols,
            resume,
        } => {
            let start = out.len();
            let ok =
                {
                    let mut rows = RowsWriter::begin(out);
                    let ok = scan_with_tokens(session, ctx.tokens, &key, count, resume, |k, v| {
                        match &cols {
                            None => rows.push_row(
                                k,
                                v.ncols(),
                                (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
                            ),
                            Some(ids) => rows.push_row(
                                k,
                                ids.len(),
                                ids.iter().map(|&c| v.col(c as usize).unwrap_or(&[])),
                            ),
                        }
                    });
                    if ok {
                        rows.finish();
                    }
                    ok
                };
            if !ok {
                out.truncate(start);
                Response::Err(UNKNOWN_SCAN_TOKEN.into()).encode(out);
            }
        }
        // Admin requests: small fixed-size replies, no zero-copy need.
        req @ (Request::Stats | Request::Flush | Request::Sync | Request::StatsEx) => {
            execute_tokens(session, ctx, req).encode(out)
        }
    }
}

/// The typed error a `Resume` with no live cursor receives.
const UNKNOWN_SCAN_TOKEN: &str = "unknown scan token";

/// Arms a trace span for 1-in-N requests (see `mtobs::Obs::
/// set_sample_every`). The request's frame was already decoded, so the
/// `Decode` mark lands immediately; the downstream session op marks
/// cache-lookup/descent/value-resolve/WAL stages and its `record_op`
/// completes the span into the trace ring. Unsampled requests pay one
/// relaxed load here and one thread-local flag check per mark site.
#[inline]
fn maybe_span(session: &Session) -> Option<mtkv::mtobs::span::SpanGuard> {
    if session.recorder().obs().should_sample() {
        let g = mtkv::mtobs::span::begin();
        mtkv::mtobs::span::mark(mtkv::mtobs::Stage::Decode);
        Some(g)
    } else {
        None
    }
}

/// Runs one scan chunk. `Start(token)` descends from `key` and
/// registers (or overwrites) the cursor under the token; `Resume(token)`
/// requires a live cursor and returns `false` — the caller answers
/// [`Response::Err`] — when there is none (never started on this
/// connection, or evicted at the [`MAX_SCAN_TOKENS`] LRU cap). The
/// strictness matters across reconnects: tokens are connection-scoped,
/// so a reconnected client resuming blindly gets a clean typed error
/// instead of silently re-streaming — or worse, silently adopting
/// state it never registered. Evictions are least-recently-used and
/// counted (`cache_scan_evictions` in the wire stats). Token-less
/// scans take the session's transparent start-key-matched cursor cache
/// instead.
fn scan_with_tokens<F>(
    session: &Session,
    tokens: &mut ScanTokens,
    key: &[u8],
    count: u32,
    resume: Option<ScanResume>,
    f: F,
) -> bool
where
    F: FnMut(&[u8], &mtkv::ColValue),
{
    let (mut cursor, token) = match resume {
        None => {
            session.get_range_with(key, count as usize, f);
            return true;
        }
        Some(ScanResume::Start(token)) => (session.scan_cursor(key), token),
        Some(ScanResume::Resume(token)) => match tokens.take(token) {
            Some(cursor) => (cursor, token),
            None => return false,
        },
    };
    session.get_range_resumed(&mut cursor, count as usize, f);
    // Exhausted cursors stay registered (as done) so a trailing Resume
    // reads a clean empty chunk rather than an unknown-token error.
    if tokens.insert(token, cursor) {
        session.store().note_scan_evictions(1);
    }
    true
}

/// Writes a get's `Response::Value` wire bytes from a borrowed value,
/// applying the request's column selection slice-by-slice.
fn write_get_response(out: &mut Vec<u8>, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
    match hit {
        None => write_value_none(out),
        Some(v) => match cols {
            None => write_value_borrowed(
                out,
                v.ncols(),
                (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
            ),
            Some(ids) => write_value_borrowed(
                out,
                ids.len(),
                ids.iter().map(|&c| v.col(c as usize).unwrap_or(&[])),
            ),
        },
    }
    // Zero-copy encoding runs *inside* the get's epoch guard (the
    // `get_with` visitor), so a sampled span is still live here and the
    // respond stage lands before `record_op` completes the trace.
    mtkv::mtobs::span::mark(mtkv::mtobs::Stage::Respond);
}

/// Executes one request against a store session (token-less: resumable
/// `Scan` requests fall back to fresh scans; the server's per-connection
/// state routes them through [`StoreConn`] instead).
pub fn execute(session: &Session, req: Request) -> Response {
    execute_tokens(
        session,
        &mut ExecCtx::standalone(&mut ScanTokens::new()),
        req,
    )
}

/// [`execute`] with the connection's execution context.
fn execute_tokens(session: &Session, ctx: &mut ExecCtx<'_>, req: Request) -> Response {
    if let Some(resp) = ctx.refuse_write() {
        if matches!(
            req,
            Request::Put { .. } | Request::Remove { .. } | Request::Flush | Request::Sync
        ) {
            return resp;
        }
    }
    match req {
        Request::Get { key, cols } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Value(session.get(&key, ids.as_deref()))
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates))
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)),
        Request::Scan {
            key,
            count,
            cols,
            resume,
        } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            let mut rows = Vec::with_capacity((count as usize).min(1024));
            let ok = scan_with_tokens(session, ctx.tokens, &key, count, resume, |k, v| {
                let row = match &ids {
                    None => v.cols(),
                    Some(ids) => ids
                        .iter()
                        .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                        .collect(),
                };
                rows.push((k.to_vec(), row));
            });
            if !ok {
                return Response::Err(UNKNOWN_SCAN_TOKEN.into());
            }
            Response::Rows(rows)
        }
        Request::Stats => Response::Stats(gather_stats(session, ctx.loads)),
        Request::StatsEx => Response::StatsEx(StatsExReply {
            // `Obs::snapshot` merges every live recorder (all sessions
            // across all workers), retired recorders from closed
            // connections, and the store's background/global set — the
            // same flush-on-read discipline as the cache counters.
            snap: session.store().obs().snapshot(),
        }),
        Request::Flush => {
            // Make this connection's log durable, then run one full
            // durability cycle: checkpoint, truncate covered segments,
            // prune old checkpoints. A flush reply acks durability, so
            // any failure must surface as an error response — never as
            // stats pretending the data is safe. In-memory stores have
            // nothing to flush and answer with (all-zero) stats.
            if !session.force_log() {
                return Response::Err("flush failed: log writer is dead (I/O error)".into());
            }
            if session.store().log_dir().is_some() {
                if let Err(e) = session.store().checkpoint_now() {
                    return Response::Err(format!("flush failed: durability cycle: {e}"));
                }
            }
            Response::Stats(gather_stats(session, ctx.loads))
        }
        Request::Sync => {
            // Group-commit barrier only (§5's per-core log force): make
            // this connection's log durable and report the stats — no
            // checkpoint, no truncation. Like Flush, a success reply
            // acks durability, so a dead log must surface as an error.
            if !session.force_log() {
                return Response::Err("sync failed: log writer is dead (I/O error)".into());
            }
            Response::Stats(gather_stats(session, ctx.loads))
        }
    }
}

/// Snapshots the store's durability and cache-tier state into the wire
/// reply.
///
/// The cache counters aggregate **every** session's traffic as of this
/// call: `Store::cache_stats` walks the store's registry of live
/// session caches and flushes each one's batched local counters into
/// the shared sink before snapshotting it. (Sessions otherwise flush
/// only every 256 events and on drop, so a `Stats` request used to see
/// other connections' traffic late — and only its own connection's
/// counters freshly.)
fn gather_stats(session: &Session, loads: &[WorkerLoad]) -> StatsReply {
    let s = session.store().durability_stats();
    let c = session.store().cache_stats();
    let (repl_role, repl_followers, repl_lag_bytes, repl_lag_ts_us) =
        session.store().repl_stats().snapshot();
    let v = session.store().value_tier_stats();
    StatsReply {
        checkpoints: s.checkpoints,
        last_checkpoint_start_ts: s.last_checkpoint_start_ts,
        log_bytes: s.log_bytes,
        log_segments: s.log_segments,
        segments_truncated: s.segments_truncated,
        cache_lookups: c.lookups,
        cache_hits: c.hits,
        cache_stale: c.stale,
        cache_write_hits: c.write_hits,
        cache_write_stale: c.write_stale,
        cache_scan_resumes: c.scan_resumes,
        cache_scan_evictions: c.scan_evictions,
        repl_role,
        repl_followers,
        repl_lag_bytes,
        repl_lag_ts_us,
        indirect_reads: v.indirect_reads,
        value_cache_hits: v.value_cache_hits,
        gc_rewritten_bytes: v.gc_rewritten_bytes,
        live_segment_bytes: v.live_segment_bytes,
        readahead_batches: v.readahead_batches,
        coalesced_bytes: v.coalesced_bytes,
        shared_misses: v.shared_misses,
        worker_conns: loads
            .iter()
            .map(|l| l.conns.load(Ordering::Relaxed))
            .collect(),
    }
}
