//! The Masstree network server (§5 of the paper).
//!
//! The paper uses per-core NIC receive queues; in a container we serve
//! long-lived TCP connections from few client aggregators — the paper's
//! own benchmark configuration ("long-lived TCP query connections from
//! few clients (or client aggregators), a common operating mode that is
//! equally effective at avoiding network overhead"). One worker thread
//! per connection, each with its own store [`Session`] (and therefore its
//! own log, preserving the per-core-log design).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mtkv::{ScanCursor, Session, Store};

use crate::proto::{
    begin_batch, finish_batch, read_batch, write_value_borrowed, write_value_none, Request,
    Response, RowsWriter, StatsReply,
};

/// Per-connection request executor. The Masstree store is the primary
/// implementation; the benchmark harness plugs stand-in systems (hash
/// stores, partitioned stores) behind the same network stack so §7's
/// system comparison exercises identical I/O paths.
pub trait Backend: Send + Sync + 'static {
    /// Per-connection state (e.g. a store session owning a log).
    fn connect(&self) -> Box<dyn ConnState>;
}

/// Connection-scoped executor produced by a [`Backend`].
pub trait ConnState: Send {
    fn execute(&mut self, req: Request) -> Response;

    /// Executes one wire batch. The default runs each request in turn;
    /// the Masstree store overrides this to feed runs of gets/puts
    /// through the interleaved batch traversal engine.
    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter().map(|r| self.execute(r)).collect()
    }

    /// Executes one wire batch, encoding the responses directly into the
    /// connection's (reusable) output buffer, and returns the number of
    /// responses written. The default materializes [`Response`]s and
    /// encodes them; the Masstree store overrides this to serialize
    /// straight from value slices borrowed under the epoch guard —
    /// the zero-copy read path.
    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        let resps = self.execute_batch(reqs);
        for resp in &resps {
            resp.encode(out);
        }
        resps.len()
    }
}

/// The default backend: an `mtkv` store; each connection gets a session
/// (and therefore its own log, preserving the per-core-log design).
struct StoreBackend(Arc<Store>);

impl Backend for StoreBackend {
    fn connect(&self) -> Box<dyn ConnState> {
        let session = self.0.session().expect("open session log");
        Box::new(StoreConn::new(session))
    }
}

/// Scan cursors held per connection for the wire `Scan` resume tokens,
/// capped so a client cannot grow server memory unboundedly.
type ScanTokens = HashMap<u64, ScanCursor>;

/// The most token cursors one connection may pin (an arbitrary victim
/// is dropped beyond this; a dropped cursor just costs one descent).
const MAX_SCAN_TOKENS: usize = 64;

/// A connection's server-side state: the store session plus the
/// resumable-scan cursors addressed by the wire `Scan` resume tokens.
pub struct StoreConn {
    session: Session,
    scan_tokens: ScanTokens,
}

impl StoreConn {
    pub fn new(session: Session) -> StoreConn {
        StoreConn {
            session,
            scan_tokens: ScanTokens::new(),
        }
    }

    /// The underlying store session.
    pub fn session(&self) -> &Session {
        &self.session
    }
}

impl ConnState for StoreConn {
    fn execute(&mut self, req: Request) -> Response {
        execute_tokens(&self.session, &mut self.scan_tokens, req)
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let mut sink = OwnedSink(Vec::with_capacity(reqs.len()));
        execute_batch_runs(&self.session, &mut self.scan_tokens, reqs, &mut sink);
        sink.0
    }

    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        let mut sink = WireSink { out, written: 0 };
        execute_batch_runs(&self.session, &mut self.scan_tokens, reqs, &mut sink);
        sink.written
    }
}

impl ConnState for Session {
    fn execute(&mut self, req: Request) -> Response {
        execute(self, req)
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        execute_batch(self, reqs)
    }

    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        execute_batch_into(self, reqs, out)
    }
}

/// A running server; dropping it (or calling [`Server::stop`]) shuts the
/// listener down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    ops: Arc<AtomicU64>,
}

impl Server {
    /// Starts serving `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Server::addr`]).
    pub fn start(store: Arc<Store>, addr: &str) -> std::io::Result<Server> {
        Self::start_backend(Arc::new(StoreBackend(store)), addr)
    }

    /// Starts serving an arbitrary [`Backend`].
    pub fn start_backend(backend: Arc<dyn Backend>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let ops2 = Arc::clone(&ops);
        let accept_thread = std::thread::Builder::new()
            .name("mtnet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let state = backend.connect();
                    let ops3 = Arc::clone(&ops2);
                    let _ =
                        std::thread::Builder::new()
                            .name("mtnet-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(conn, state, &ops3);
                            });
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            ops,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total operations served (for benchmark harnesses).
    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops accepting. Existing connections drain when clients close.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Handles one connection: read a batch, decode it whole, execute it as
/// one unit (letting the backend interleave traversals across the
/// batch), write the response batch (one write per batch — the batching
/// §7 shows matters).
///
/// Responses are encoded into one output buffer that is **reused across
/// batches** (capacity sticks at the connection's high-water mark): the
/// frame header is reserved, the backend serializes every response after
/// it — for the store backend, straight from borrowed value slices —
/// and the header is length-patched before the single `write_all`. No
/// intermediate `Vec<Response>` or per-payload copies on the hot path.
fn serve_connection(
    conn: TcpStream,
    mut state: Box<dyn ConnState>,
    ops: &AtomicU64,
) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let mut reader = BufReader::with_capacity(1 << 20, conn.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 20, conn);
    let mut out: Vec<u8> = Vec::with_capacity(1 << 16);
    while let Some((count, body)) = read_batch(&mut reader)? {
        let mut p = &body[..];
        let mut reqs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let Some(req) = Request::decode(&mut p) else {
                return Err(std::io::Error::other("malformed request"));
            };
            reqs.push(req);
        }
        out.clear();
        let mark = begin_batch(&mut out);
        let written = state.execute_batch_into(reqs, &mut out);
        if written != count as usize {
            // A misbehaving backend must not desync the framed protocol:
            // fail the connection instead of sending a lying count.
            return Err(std::io::Error::other("backend response count mismatch"));
        }
        finish_batch(&mut out, mark, written);
        ops.fetch_add(count as u64, Ordering::Relaxed);
        writer.write_all(&out)?;
        writer.flush()?;
    }
    Ok(())
}

/// Where a batch executor's responses go: owned [`Response`]s (the
/// compatibility path) or wire bytes written straight from borrowed
/// value slices (the zero-copy path). One implementation of the run
/// loop ([`execute_batch_runs`]) serves both, so the grouping semantics
/// cannot drift apart.
trait ResponseSink {
    /// Emits one get result from the borrowed value and the request's
    /// column selection.
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>);
    /// Emits one put result.
    fn put_ok(&mut self, version: u64);
    /// Executes and emits one non-groupable request.
    fn single(&mut self, session: &Session, tokens: &mut ScanTokens, req: Request);
}

/// Materializes owned [`Response`]s (copying the selected columns).
struct OwnedSink(Vec<Response>);

impl ResponseSink for OwnedSink {
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
        self.0.push(Response::Value(hit.map(|v| {
            match cols {
                None => v.cols(),
                Some(ids) => ids
                    .iter()
                    .map(|&c| v.col(c as usize).unwrap_or(&[]).to_vec())
                    .collect(),
            }
        })));
    }

    fn put_ok(&mut self, version: u64) {
        self.0.push(Response::PutOk(version));
    }

    fn single(&mut self, session: &Session, tokens: &mut ScanTokens, req: Request) {
        self.0.push(execute_tokens(session, tokens, req));
    }
}

/// Serializes responses directly into the connection's output buffer.
struct WireSink<'a> {
    out: &'a mut Vec<u8>,
    written: usize,
}

impl ResponseSink for WireSink<'_> {
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
        write_get_response(self.out, hit, cols);
        self.written += 1;
    }

    fn put_ok(&mut self, version: u64) {
        Response::PutOk(version).encode(self.out);
        self.written += 1;
    }

    fn single(&mut self, session: &Session, tokens: &mut ScanTokens, req: Request) {
        execute_into_tokens(session, tokens, req, self.out);
        self.written += 1;
    }
}

/// The shared batch run loop: splits the batch into maximal groupable
/// runs, feeds get/put runs through the interleaved batch traversal
/// engine (`masstree::batch`) instead of N sequential descents, and
/// hands every result to `sink`.
///
/// Batch semantics are preserved exactly: responses are positionally
/// matched, requests of different kinds never reorder across each other,
/// and a run of puts is split at a duplicate key so writes to the same
/// key apply in batch order (within an interleaved group, duplicate-key
/// order would otherwise be unspecified).
fn execute_batch_runs<S: ResponseSink>(
    session: &Session,
    tokens: &mut ScanTokens,
    mut reqs: Vec<Request>,
    sink: &mut S,
) {
    let runs = mtkv::split_batch_runs(
        &reqs,
        |r| match r {
            Request::Get { .. } => mtkv::RunKind::Get,
            Request::Put { .. } => mtkv::RunKind::Put,
            _ => mtkv::RunKind::Other,
        },
        |r| match r {
            Request::Get { key, .. } | Request::Put { key, .. } => key.as_slice(),
            _ => &[],
        },
    );
    for (kind, range) in runs {
        let run = &reqs[range.clone()];
        match kind {
            mtkv::RunKind::Get if run.len() >= 2 => {
                let keys: Vec<&[u8]> = run
                    .iter()
                    .map(|r| match r {
                        Request::Get { key, .. } => key.as_slice(),
                        _ => unreachable!("run holds only gets"),
                    })
                    .collect();
                // Each request's own column selection is applied against
                // the live value inside the visitor — the sink decides
                // whether that means copying (owned) or encoding (wire).
                session.multi_get_with(&keys, |i, hit| {
                    let Request::Get { cols, .. } = &run[i] else {
                        unreachable!("run holds only gets")
                    };
                    sink.get_result(hit, cols.as_deref());
                });
            }
            mtkv::RunKind::Put if run.len() >= 2 => {
                let updates: Vec<Vec<(usize, &[u8])>> = run
                    .iter()
                    .map(|r| match r {
                        Request::Put { cols, .. } => cols
                            .iter()
                            .map(|(i, d)| (*i as usize, d.as_slice()))
                            .collect(),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                let ops: Vec<mtkv::PutOp<'_>> = run
                    .iter()
                    .zip(&updates)
                    .map(|(r, u)| match r {
                        Request::Put { key, .. } => (key.as_slice(), u.as_slice()),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                for version in session.multi_put(&ops) {
                    sink.put_ok(version);
                }
            }
            _ => {
                // Singleton or non-groupable run: execute in place. The
                // placeholder swap lets us move the request out without
                // cloning its payload.
                for idx in range {
                    let req =
                        std::mem::replace(&mut reqs[idx], Request::Remove { key: Vec::new() });
                    sink.single(session, tokens, req);
                }
            }
        }
    }
}

/// Executes a whole wire batch against a store session, returning owned
/// responses. See [`execute_batch_runs`] for the grouping semantics.
pub fn execute_batch(session: &Session, reqs: Vec<Request>) -> Vec<Response> {
    let mut sink = OwnedSink(Vec::with_capacity(reqs.len()));
    execute_batch_runs(session, &mut ScanTokens::new(), reqs, &mut sink);
    sink.0
}

/// Executes a whole wire batch against a store session, serializing
/// responses directly into `out` — the zero-copy read path. Runs of
/// consecutive gets go through the interleaved batch traversal engine
/// and their responses are encoded **inside the `multi_get_with`
/// visitor**, with column slices borrowed straight out of each live
/// `ColValue` under the epoch guard; nothing is copied into intermediate
/// `Vec<Response>` payloads. Returns the number of responses written.
pub fn execute_batch_into(session: &Session, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
    let mut sink = WireSink { out, written: 0 };
    execute_batch_runs(session, &mut ScanTokens::new(), reqs, &mut sink);
    sink.written
}

/// Executes one request against a store session, serializing the
/// response directly into `out`. Gets and scans write column slices
/// borrowed under the epoch guard (via `get_with` / `get_range_with`);
/// puts and removes encode their small fixed-size replies.
pub fn execute_into(session: &Session, req: Request, out: &mut Vec<u8>) {
    execute_into_tokens(session, &mut ScanTokens::new(), req, out)
}

/// [`execute_into`] with the connection's scan-token cursors, so
/// resumable `Scan` requests re-enter the tree at their remembered
/// border nodes.
fn execute_into_tokens(
    session: &Session,
    tokens: &mut ScanTokens,
    req: Request,
    out: &mut Vec<u8>,
) {
    match req {
        Request::Get { key, cols } => {
            session.get_with(&key, |hit| write_get_response(out, hit, cols.as_deref()));
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates)).encode(out);
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)).encode(out),
        Request::Scan {
            key,
            count,
            cols,
            resume,
        } => {
            let mut rows = RowsWriter::begin(out);
            scan_with_tokens(session, tokens, &key, count, resume, |k, v| match &cols {
                None => rows.push_row(
                    k,
                    v.ncols(),
                    (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
                ),
                Some(ids) => rows.push_row(
                    k,
                    ids.len(),
                    ids.iter().map(|&c| v.col(c as usize).unwrap_or(&[])),
                ),
            });
            rows.finish();
        }
        // Admin requests: small fixed-size replies, no zero-copy need.
        req @ (Request::Stats | Request::Flush | Request::Sync) => {
            execute(session, req).encode(out)
        }
    }
}

/// Runs one scan chunk, resuming from the connection's token cursor
/// when `resume` names one. `key` is the fallback start, used only
/// when the token has no cursor — the stream's first chunk, or a
/// cursor evicted at the [`MAX_SCAN_TOKENS`] cap (which is why clients
/// are told to pass their continuation key on follow-ups: an eviction
/// then degrades to one descent, not a silent re-stream). Token-less
/// scans take the session's transparent start-key-matched cursor cache
/// instead.
fn scan_with_tokens<F>(
    session: &Session,
    tokens: &mut ScanTokens,
    key: &[u8],
    count: u32,
    resume: Option<u64>,
    f: F,
) where
    F: FnMut(&[u8], &mtkv::ColValue),
{
    let Some(token) = resume else {
        session.get_range_with(key, count as usize, f);
        return;
    };
    let mut cursor = tokens
        .remove(&token)
        .unwrap_or_else(|| session.scan_cursor(key));
    session.get_range_resumed(&mut cursor, count as usize, f);
    if !cursor.is_done() {
        if tokens.len() >= MAX_SCAN_TOKENS {
            // Drop an arbitrary victim; its stream just re-descends.
            if let Some(&victim) = tokens.keys().next() {
                tokens.remove(&victim);
            }
        }
        tokens.insert(token, cursor);
    }
}

/// Writes a get's `Response::Value` wire bytes from a borrowed value,
/// applying the request's column selection slice-by-slice.
fn write_get_response(out: &mut Vec<u8>, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
    match hit {
        None => write_value_none(out),
        Some(v) => match cols {
            None => write_value_borrowed(
                out,
                v.ncols(),
                (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
            ),
            Some(ids) => write_value_borrowed(
                out,
                ids.len(),
                ids.iter().map(|&c| v.col(c as usize).unwrap_or(&[])),
            ),
        },
    }
}

/// Executes one request against a store session (token-less: resumable
/// `Scan` requests fall back to fresh scans; the server's per-connection
/// state routes them through [`StoreConn`] instead).
pub fn execute(session: &Session, req: Request) -> Response {
    execute_tokens(session, &mut ScanTokens::new(), req)
}

/// [`execute`] with the connection's scan-token cursors.
fn execute_tokens(session: &Session, tokens: &mut ScanTokens, req: Request) -> Response {
    match req {
        Request::Get { key, cols } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Value(session.get(&key, ids.as_deref()))
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates))
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)),
        Request::Scan {
            key,
            count,
            cols,
            resume,
        } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            let mut rows = Vec::with_capacity((count as usize).min(1024));
            scan_with_tokens(session, tokens, &key, count, resume, |k, v| {
                let row = match &ids {
                    None => v.cols(),
                    Some(ids) => ids
                        .iter()
                        .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                        .collect(),
                };
                rows.push((k.to_vec(), row));
            });
            Response::Rows(rows)
        }
        Request::Stats => Response::Stats(gather_stats(session)),
        Request::Flush => {
            // Make this connection's log durable, then run one full
            // durability cycle: checkpoint, truncate covered segments,
            // prune old checkpoints. A flush reply acks durability, so
            // any failure must surface as an error response — never as
            // stats pretending the data is safe. In-memory stores have
            // nothing to flush and answer with (all-zero) stats.
            if !session.force_log() {
                return Response::Err("flush failed: log writer is dead (I/O error)".into());
            }
            if session.store().log_dir().is_some() {
                if let Err(e) = session.store().checkpoint_now() {
                    return Response::Err(format!("flush failed: durability cycle: {e}"));
                }
            }
            Response::Stats(gather_stats(session))
        }
        Request::Sync => {
            // Group-commit barrier only (§5's per-core log force): make
            // this connection's log durable and report the stats — no
            // checkpoint, no truncation. Like Flush, a success reply
            // acks durability, so a dead log must surface as an error.
            if !session.force_log() {
                return Response::Err("sync failed: log writer is dead (I/O error)".into());
            }
            Response::Stats(gather_stats(session))
        }
    }
}

/// Snapshots the store's durability and cache-tier state into the wire
/// reply.
///
/// The cache counters aggregate **every** session's traffic as of this
/// call: `Store::cache_stats` walks the store's registry of live
/// session caches and flushes each one's batched local counters into
/// the shared sink before snapshotting it. (Sessions otherwise flush
/// only every 256 events and on drop, so a `Stats` request used to see
/// other connections' traffic late — and only its own connection's
/// counters freshly.)
fn gather_stats(session: &Session) -> StatsReply {
    let s = session.store().durability_stats();
    let c = session.store().cache_stats();
    StatsReply {
        checkpoints: s.checkpoints,
        last_checkpoint_start_ts: s.last_checkpoint_start_ts,
        log_bytes: s.log_bytes,
        log_segments: s.log_segments,
        segments_truncated: s.segments_truncated,
        cache_lookups: c.lookups,
        cache_hits: c.hits,
        cache_stale: c.stale,
        cache_write_hits: c.write_hits,
        cache_write_stale: c.write_stale,
        cache_scan_resumes: c.scan_resumes,
    }
}
