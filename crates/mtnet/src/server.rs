//! The Masstree network server (§5 of the paper).
//!
//! A shard-per-core event-loop server. A small fixed pool of worker
//! threads (default `available_parallelism`) each runs a readiness loop
//! (see [`crate::poll`]) over nonblocking sockets it exclusively
//! **owns**: connections are assigned to a worker at accept time and
//! never migrate, so each worker privately holds its store [`Session`]
//! (and therefore its own log — the paper's per-core logs), its
//! scan-cursor map, and its reusable input/output scratch. No
//! per-request cross-core synchronization exists outside the tree
//! itself.
//!
//! On each readiness wakeup a worker drains and decodes every complete
//! frame from every ready connection, then **aggregates across
//! connections**: point gets (and puts) from different connections are
//! merged into one run through the interleaved batch traversal engine
//! (`multi_get`/`multi_put` on the worker session), and the responses
//! are demultiplexed back into each connection's output buffer with the
//! zero-copy `execute_batch_into` framing. The paper's §7 observation —
//! "batched query support is vital" — then holds even when each client
//! sends one-op frames: the server constructs the batches itself.
//!
//! Aggregation never reorders one connection's stream: a connection
//! joins the merged get (put) run only when every frame it has pending
//! is pure gets (puts, with no intra-connection duplicate key); anything
//! mixed executes per-frame, in order, through the same engine as
//! before. Cross-connection order carries no obligation — concurrent
//! clients already race — and per-session logs make the merged put run
//! safe: every write is still logged by the one worker session that
//! owns the connection.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mtkv::{ScanCursor, Session, Store};

use crate::poll::{Event, Interest, Poller};
use crate::proto::{
    begin_batch, finish_batch, parse_batch_frame, write_value_borrowed, write_value_none, Request,
    Response, RowsWriter, StatsReply,
};

/// Per-connection request executor. The Masstree store is the primary
/// implementation; the benchmark harness plugs stand-in systems (hash
/// stores, partitioned stores) behind the same network stack so §7's
/// system comparison exercises identical I/O paths.
pub trait Backend: Send + Sync + 'static {
    /// Per-connection state (e.g. a store session owning a log).
    fn connect(&self) -> Box<dyn ConnState>;
}

/// Connection-scoped executor produced by a [`Backend`].
pub trait ConnState: Send {
    fn execute(&mut self, req: Request) -> Response;

    /// Executes one wire batch. The default runs each request in turn;
    /// the Masstree store overrides this to feed runs of gets/puts
    /// through the interleaved batch traversal engine.
    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter().map(|r| self.execute(r)).collect()
    }

    /// Executes one wire batch, encoding the responses directly into the
    /// connection's (reusable) output buffer, and returns the number of
    /// responses written. The default materializes [`Response`]s and
    /// encodes them; the Masstree store overrides this to serialize
    /// straight from value slices borrowed under the epoch guard —
    /// the zero-copy read path.
    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        let resps = self.execute_batch(reqs);
        for resp in &resps {
            resp.encode(out);
        }
        resps.len()
    }
}

/// The most token cursors one connection may pin; beyond it the
/// least-recently-used cursor is evicted (an eviction costs its stream
/// one descent — clients pass their continuation key on follow-ups —
/// and is surfaced as `cache_scan_evictions` in [`StatsReply`]).
const MAX_SCAN_TOKENS: usize = 64;

/// Resumable-scan cursors for one connection, addressed by the wire
/// `Scan` resume token, with LRU eviction at [`MAX_SCAN_TOKENS`].
#[derive(Default)]
struct ScanTokens {
    /// token → (last-use tick, cursor).
    entries: HashMap<u64, (u64, ScanCursor)>,
    tick: u64,
}

impl ScanTokens {
    fn new() -> ScanTokens {
        ScanTokens::default()
    }

    fn take(&mut self, token: u64) -> Option<ScanCursor> {
        self.entries.remove(&token).map(|(_, c)| c)
    }

    /// Inserts (refreshing recency); returns `true` when an LRU victim
    /// was evicted to make room.
    fn insert(&mut self, token: u64, cursor: ScanCursor) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if self.entries.len() >= MAX_SCAN_TOKENS && !self.entries.contains_key(&token) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(&t, _)| t)
            {
                self.entries.remove(&victim);
                evicted = true;
            }
        }
        self.entries.insert(token, (self.tick, cursor));
        evicted
    }
}

/// A connection's server-side state: the store session plus the
/// resumable-scan cursors addressed by the wire `Scan` resume tokens.
/// This is the embeddable single-connection executor (benchmarks, the
/// generic [`Backend`] path); the event-loop server itself holds one
/// session per **worker** and a per-worker cursor map instead.
pub struct StoreConn {
    session: Session,
    scan_tokens: ScanTokens,
}

impl StoreConn {
    pub fn new(session: Session) -> StoreConn {
        StoreConn {
            session,
            scan_tokens: ScanTokens::new(),
        }
    }

    /// The underlying store session.
    pub fn session(&self) -> &Session {
        &self.session
    }
}

impl ConnState for StoreConn {
    fn execute(&mut self, req: Request) -> Response {
        execute_tokens(&self.session, &mut self.scan_tokens, req)
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        let mut sink = OwnedSink(Vec::with_capacity(reqs.len()));
        execute_batch_runs(&self.session, &mut self.scan_tokens, reqs, &mut sink);
        sink.0
    }

    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        let mut sink = WireSink { out, written: 0 };
        execute_batch_runs(&self.session, &mut self.scan_tokens, reqs, &mut sink);
        sink.written
    }
}

impl ConnState for Session {
    fn execute(&mut self, req: Request) -> Response {
        execute(self, req)
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        execute_batch(self, reqs)
    }

    fn execute_batch_into(&mut self, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
        execute_batch_into(self, reqs, out)
    }
}

/// Event-loop server tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker (event-loop) threads; `0` means `available_parallelism`.
    pub workers: usize,
    /// Cross-connection batch aggregation on store workers. On by
    /// default; benchmarks switch it off to measure the per-frame path.
    pub aggregate: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            aggregate: true,
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A running server; dropping it (or calling [`Server::stop`]) shuts the
/// listener and every worker down, closing all worker sessions (their
/// logs flush cleanly on drop).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<WorkerHandle>,
    ops: Arc<AtomicU64>,
}

struct WorkerHandle {
    thread: Option<std::thread::JoinHandle<()>>,
    wake_tx: UnixStream,
}

impl Server {
    /// Starts serving `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Server::addr`]).
    pub fn start(store: Arc<Store>, addr: &str) -> std::io::Result<Server> {
        Self::start_with(store, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit worker-pool tunables.
    pub fn start_with(
        store: Arc<Store>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let n = config.resolved_workers();
        let mut kinds = Vec::with_capacity(n);
        for _ in 0..n {
            // One session — one log — per worker, opened before serving
            // so a failure surfaces here, not on some later connection.
            let session = store.session()?;
            kinds.push(WorkerKind::Store {
                session,
                aggregate: config.aggregate,
                cursors: HashMap::new(),
            });
        }
        Self::launch(kinds, addr)
    }

    /// Starts serving an arbitrary [`Backend`].
    pub fn start_backend(backend: Arc<dyn Backend>, addr: &str) -> std::io::Result<Server> {
        Self::start_backend_with(backend, addr, ServerConfig::default())
    }

    /// [`Server::start_backend`] with explicit worker-pool tunables.
    /// Generic backends keep per-connection state ([`Backend::connect`]
    /// at adoption time) and execute per-frame — aggregation is a store
    /// capability.
    pub fn start_backend_with(
        backend: Arc<dyn Backend>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let n = config.resolved_workers();
        let kinds = (0..n)
            .map(|_| WorkerKind::Backend(Arc::clone(&backend)))
            .collect();
        Self::launch(kinds, addr)
    }

    fn launch(kinds: Vec<WorkerKind>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let mut handles: Vec<WorkerHandle> = Vec::new();
        let mut mailboxes: Vec<(Arc<Mutex<Vec<TcpStream>>>, UnixStream)> = Vec::new();
        // Stops and joins the workers launched so far (partial-launch
        // failure cleanup).
        let abort = |handles: &mut Vec<WorkerHandle>, e: std::io::Error| -> std::io::Error {
            stop.store(true, Ordering::Release);
            for h in handles.iter_mut() {
                wake(&h.wake_tx);
                if let Some(t) = h.thread.take() {
                    let _ = t.join();
                }
            }
            e
        };
        for (id, kind) in kinds.into_iter().enumerate() {
            let launched = (|| -> std::io::Result<(WorkerHandle, _)> {
                let (wake_tx, wake_rx) = UnixStream::pair()?;
                wake_tx.set_nonblocking(true)?;
                wake_rx.set_nonblocking(true)?;
                let inbox = Arc::new(Mutex::new(Vec::new()));
                let worker = Worker {
                    id,
                    poller: Poller::new()?,
                    wake_rx,
                    inbox: Arc::clone(&inbox),
                    stop: Arc::clone(&stop),
                    ops: Arc::clone(&ops),
                    kind,
                    conns: Vec::new(),
                    free: Vec::new(),
                    next_conn_seq: 0,
                };
                let thread = std::thread::Builder::new()
                    .name(format!("mtnet-worker-{id}"))
                    .spawn(move || worker.run())?;
                let mailbox = (inbox, wake_tx.try_clone()?);
                Ok((
                    WorkerHandle {
                        thread: Some(thread),
                        wake_tx,
                    },
                    mailbox,
                ))
            })();
            match launched {
                Ok((handle, mailbox)) => {
                    handles.push(handle);
                    mailboxes.push(mailbox);
                }
                Err(e) => return Err(abort(&mut handles, e)),
            }
        }
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("mtnet-accept".into())
            .spawn(move || {
                let n = mailboxes.len();
                let mut next = 0usize;
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    // Round-robin assignment; the connection then belongs
                    // to that worker for its whole life (session affinity).
                    let (inbox, wake_tx) = &mailboxes[next];
                    next = (next + 1) % n;
                    inbox.lock().unwrap().push(conn);
                    wake(wake_tx);
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            workers: handles,
            ops,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total operations served (for benchmark harnesses).
    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops accepting, shuts every worker down (closing its
    /// connections), and joins them — worker sessions are dropped (and
    /// their logs flushed) before this returns.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in &mut self.workers {
            wake(&w.wake_tx);
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Nudges a worker out of its poll wait. A full pipe means a wake is
/// already pending, which is all the byte signals anyway.
fn wake(tx: &UnixStream) {
    let _ = (&*tx).write(&[1u8]);
}

/// Poll token of the worker's wake pipe (connection slots count up from
/// zero and can never reach it).
const WAKE_TOKEN: u64 = u64::MAX;

/// Pending-output high-water mark: above this a connection stops being
/// read (its readable interest is dropped, so the level-triggered poller
/// stays quiet) until the client drains responses — the event-loop
/// equivalent of the old blocking-write backpressure.
const HIGH_WATER: usize = 1 << 20;

/// Per-connection read budget per wakeup, so one firehose connection
/// cannot starve its worker's other connections.
const READ_BUDGET: usize = 1 << 20;

struct Conn {
    stream: TcpStream,
    /// Globally unique, shard-routable id: `worker << 32 | seq`. Scan
    /// cursors live in the **worker's** cursor map keyed by this id, so
    /// the worker that owns a resume token is recoverable from the id
    /// alone (`id >> 32`) — the routing invariant the torture test
    /// checks across workers.
    id: u64,
    /// Input accumulation: bytes `[rd_pos..]` are not yet parsed.
    rd: Vec<u8>,
    rd_pos: usize,
    /// Output accumulation: bytes `[wr_pos..]` are not yet written.
    wr: Vec<u8>,
    wr_pos: usize,
    interest: Interest,
    /// Clean end-of-stream seen; drain what's left, then close.
    eof: bool,
    /// Protocol or I/O failure; close without draining.
    dead: bool,
    /// Generic-backend path only: the per-connection executor.
    state: Option<Box<dyn ConnState>>,
}

impl Conn {
    fn pending_wr(&self) -> usize {
        self.wr.len() - self.wr_pos
    }
}

enum WorkerKind {
    Store {
        session: Session,
        aggregate: bool,
        /// The per-worker cursor map (replacing the per-connection one):
        /// connection id → that connection's resume-token cursors.
        cursors: HashMap<u64, ScanTokens>,
    },
    Backend(Arc<dyn Backend>),
}

/// One decoded frame: `len` requests at `start` in the wakeup's flat
/// request arena, owed to connection slot `slot` in arrival order.
struct Frame {
    slot: usize,
    start: usize,
    len: usize,
}

/// The wakeup's decoded input, flat so capacity is reused across
/// wakeups: all frames' requests in one arena, frames grouped per
/// connection in arrival order.
#[derive(Default)]
struct FrameBuf {
    reqs: Vec<Request>,
    frames: Vec<Frame>,
}

impl FrameBuf {
    fn clear(&mut self) {
        self.reqs.clear();
        self.frames.clear();
    }
}

struct Worker {
    id: usize,
    poller: Poller,
    wake_rx: UnixStream,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    ops: Arc<AtomicU64>,
    kind: WorkerKind,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_conn_seq: u64,
}

impl Worker {
    fn run(mut self) {
        if self
            .poller
            .register(self.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut scratch = vec![0u8; 64 * 1024];
        let mut buf = FrameBuf::default();
        loop {
            if self.poller.wait(&mut events, -1).is_err() {
                return;
            }
            let mut woke = false;
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    woke = true;
                    continue;
                }
                let slot = ev.token as usize;
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                if ev.writable {
                    flush_conn(conn);
                }
                if ev.readable || ev.hangup {
                    read_conn(conn, &mut scratch);
                }
            }
            if woke {
                self.drain_wake();
                self.adopt_new_conns();
            }
            if self.stop.load(Ordering::Acquire) {
                // Dropping `self` closes every connection and the worker
                // session (flushing its log).
                return;
            }
            // Parse → execute → flush until quiescent. Backpressured
            // connections stop parsing at the high-water mark; the
            // writable readiness that drains them re-enters this loop.
            loop {
                self.collect_frames(&mut buf);
                if buf.frames.is_empty() {
                    break;
                }
                self.execute_frames(&mut buf);
                for f in &buf.frames {
                    if let Some(conn) = self.conns[f.slot].as_mut() {
                        flush_conn(conn);
                    }
                }
                buf.clear();
            }
            self.sweep();
        }
    }

    fn drain_wake(&mut self) {
        let mut b = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut b) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn adopt_new_conns(&mut self) {
        let incoming = std::mem::take(&mut *self.inbox.lock().unwrap());
        for stream in incoming {
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let state = match &self.kind {
                WorkerKind::Backend(b) => Some(b.connect()),
                WorkerKind::Store { .. } => None,
            };
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            if self
                .poller
                .register(stream.as_raw_fd(), slot as u64, Interest::READ)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            let id = ((self.id as u64) << 32) | self.next_conn_seq;
            self.next_conn_seq += 1;
            self.conns[slot] = Some(Conn {
                stream,
                id,
                rd: Vec::new(),
                rd_pos: 0,
                wr: Vec::new(),
                wr_pos: 0,
                interest: Interest::READ,
                eof: false,
                dead: false,
                state,
            });
        }
    }

    /// Decodes every complete frame buffered on every connection into
    /// `buf` (frames stay grouped per connection, in arrival order).
    fn collect_frames(&mut self, buf: &mut FrameBuf) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.dead {
                continue;
            }
            while conn.pending_wr() < HIGH_WATER {
                match parse_batch_frame(&conn.rd[conn.rd_pos..]) {
                    Ok(Some((consumed, count))) => {
                        let start = buf.reqs.len();
                        let mut p = &conn.rd[conn.rd_pos + 8..conn.rd_pos + consumed];
                        let mut ok = true;
                        for _ in 0..count {
                            match Request::decode(&mut p) {
                                Some(req) => buf.reqs.push(req),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if !ok {
                            buf.reqs.truncate(start);
                            conn.dead = true;
                            break;
                        }
                        conn.rd_pos += consumed;
                        buf.frames.push(Frame {
                            slot,
                            start,
                            len: count as usize,
                        });
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.rd_pos == conn.rd.len() {
                conn.rd.clear();
                conn.rd_pos = 0;
            } else if conn.rd_pos > 64 * 1024 {
                conn.rd.drain(..conn.rd_pos);
                conn.rd_pos = 0;
            }
        }
    }

    fn execute_frames(&mut self, buf: &mut FrameBuf) {
        match &mut self.kind {
            WorkerKind::Store {
                session,
                aggregate,
                cursors,
            } => execute_frames_store(
                self.id,
                session,
                cursors,
                *aggregate,
                &mut self.conns,
                buf,
                &self.ops,
            ),
            WorkerKind::Backend(_) => {
                for f in &buf.frames {
                    let Some(conn) = self.conns[f.slot].as_mut() else {
                        continue;
                    };
                    if conn.dead {
                        continue;
                    }
                    let reqs = take_frame_reqs(&mut buf.reqs, f);
                    let Conn { state, wr, .. } = conn;
                    let mark = begin_batch(wr);
                    let written = state
                        .as_mut()
                        .expect("backend connections carry state")
                        .execute_batch_into(reqs, wr);
                    if written != f.len {
                        // A misbehaving backend must not desync the framed
                        // protocol: fail the connection, not the count.
                        conn.wr.truncate(mark);
                        conn.dead = true;
                        continue;
                    }
                    finish_batch(wr, mark, written);
                    self.ops.fetch_add(f.len as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Post-wakeup housekeeping: opportunistic write flush, interest
    /// reconciliation (read gated by backpressure, write by pending
    /// output), and closing finished connections.
    fn sweep(&mut self) {
        for slot in 0..self.conns.len() {
            let close = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if !conn.dead && conn.pending_wr() > 0 {
                    flush_conn(conn);
                }
                conn.dead || (conn.eof && conn.pending_wr() == 0)
            };
            if close {
                self.close_conn(slot);
                continue;
            }
            let conn = self.conns[slot].as_mut().expect("checked above");
            let desired = Interest {
                readable: !conn.eof && conn.pending_wr() < HIGH_WATER,
                writable: conn.pending_wr() > 0,
            };
            if desired != conn.interest {
                if self
                    .poller
                    .reregister(conn.stream.as_raw_fd(), slot as u64, desired)
                    .is_ok()
                {
                    conn.interest = desired;
                } else {
                    self.close_conn(slot);
                }
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            if let WorkerKind::Store { cursors, .. } = &mut self.kind {
                // The connection's scan cursors die with it.
                cursors.remove(&conn.id);
            }
            self.free.push(slot);
        }
    }
}

fn read_conn(conn: &mut Conn, scratch: &mut [u8]) {
    if conn.eof || conn.dead {
        return;
    }
    let mut budget = READ_BUDGET;
    while budget > 0 {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rd.extend_from_slice(&scratch[..n]);
                budget = budget.saturating_sub(n);
                if n < scratch.len() {
                    // Socket buffer drained (level-triggered readiness
                    // covers the rare refill race).
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

fn flush_conn(conn: &mut Conn) {
    if conn.dead {
        return;
    }
    while conn.wr_pos < conn.wr.len() {
        match conn.stream.write(&conn.wr[conn.wr_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.wr_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wr_pos == conn.wr.len() {
        // Fully drained: reset in place, keeping the connection's
        // high-water capacity for the next batch.
        conn.wr.clear();
        conn.wr_pos = 0;
    } else if conn.wr_pos > HIGH_WATER {
        conn.wr.drain(..conn.wr_pos);
        conn.wr_pos = 0;
    }
}

/// Moves one frame's requests out of the arena (placeholder swap — no
/// payload clone).
fn take_frame_reqs(reqs: &mut [Request], f: &Frame) -> Vec<Request> {
    reqs[f.start..f.start + f.len]
        .iter_mut()
        .map(|r| std::mem::replace(r, Request::Remove { key: Vec::new() }))
        .collect()
}

/// How one connection's wakeup contribution executes.
#[derive(Clone, Copy, PartialEq)]
enum Plan {
    /// Every pending frame is pure gets: join the cross-connection get
    /// aggregate.
    GetAgg,
    /// Every pending frame is pure puts with no intra-connection
    /// duplicate key: join the cross-connection put aggregate.
    PutAgg,
    /// Anything else: execute per-frame, in order (the per-frame path
    /// still feeds runs through the batch engine).
    Seq,
}

/// One connection's contiguous frame range in the wakeup buffer (each
/// frame carries its own slot).
struct ConnGroup {
    frames: std::ops::Range<usize>,
    plan: Plan,
}

/// The store worker's wakeup executor: classifies each connection's
/// pending frames, feeds the cross-connection get and put aggregates
/// through the worker session's interleaved batch engine, and
/// demultiplexes responses back into each connection's output buffer
/// (zero-copy for gets). See the module docs for the ordering argument.
fn execute_frames_store(
    worker_id: usize,
    session: &Session,
    cursors: &mut HashMap<u64, ScanTokens>,
    aggregate: bool,
    conns: &mut [Option<Conn>],
    buf: &mut FrameBuf,
    ops: &AtomicU64,
) {
    // Group frames per connection (they are contiguous by construction).
    let mut groups: Vec<ConnGroup> = Vec::new();
    {
        let mut i = 0;
        while i < buf.frames.len() {
            let slot = buf.frames[i].slot;
            let mut j = i + 1;
            while j < buf.frames.len() && buf.frames[j].slot == slot {
                j += 1;
            }
            let plan = if !aggregate || conns[slot].as_ref().is_none_or(|c| c.dead) {
                Plan::Seq
            } else {
                classify(buf, i..j)
            };
            groups.push(ConnGroup { frames: i..j, plan });
            i = j;
        }
    }

    // ---- cross-connection put aggregate ----
    // Flatten every PutAgg connection's puts (connection frames stay in
    // order; cross-connection order carries no obligation), one
    // multi_put through the interleaved engine, then demux the assigned
    // versions back per frame.
    let put_frames: Vec<&Frame> = groups
        .iter()
        .filter(|g| g.plan == Plan::PutAgg)
        .flat_map(|g| &buf.frames[g.frames.clone()])
        .collect();
    if !put_frames.is_empty() {
        let flat: Vec<&Request> = put_frames
            .iter()
            .flat_map(|f| &buf.reqs[f.start..f.start + f.len])
            .collect();
        let updates: Vec<Vec<(usize, &[u8])>> = flat
            .iter()
            .map(|r| match r {
                Request::Put { cols, .. } => cols
                    .iter()
                    .map(|(i, d)| (*i as usize, d.as_slice()))
                    .collect(),
                _ => unreachable!("PutAgg groups hold only puts"),
            })
            .collect();
        let put_ops: Vec<mtkv::PutOp<'_>> = flat
            .iter()
            .zip(&updates)
            .map(|(r, u)| match r {
                Request::Put { key, .. } => (key.as_slice(), u.as_slice()),
                _ => unreachable!("PutAgg groups hold only puts"),
            })
            .collect();
        let versions = session.multi_put(&put_ops);
        let mut v = versions.iter();
        for f in &put_frames {
            let conn = conns[f.slot].as_mut().expect("live aggregated conn");
            let mark = begin_batch(&mut conn.wr);
            for _ in 0..f.len {
                Response::PutOk(*v.next().expect("one version per put")).encode(&mut conn.wr);
            }
            finish_batch(&mut conn.wr, mark, f.len);
            ops.fetch_add(f.len as u64, Ordering::Relaxed);
        }
    }

    // ---- cross-connection get aggregate ----
    // One multi_get over every GetAgg connection's keys; the visitor
    // runs in input order, so frame boundaries advance monotonically and
    // each response is serialized zero-copy straight into its owning
    // connection's output buffer.
    let mut get_keys: Vec<&[u8]> = Vec::new();
    let mut get_cols: Vec<Option<&[u16]>> = Vec::new();
    // Per aggregated frame: (slot, end index in get_keys).
    let mut get_frames: Vec<(usize, usize)> = Vec::new();
    for g in groups.iter().filter(|g| g.plan == Plan::GetAgg) {
        for f in &buf.frames[g.frames.clone()] {
            for r in &buf.reqs[f.start..f.start + f.len] {
                match r {
                    Request::Get { key, cols } => {
                        get_keys.push(key.as_slice());
                        get_cols.push(cols.as_deref());
                    }
                    _ => unreachable!("GetAgg groups hold only gets"),
                }
            }
            get_frames.push((f.slot, get_keys.len()));
            ops.fetch_add(f.len as u64, Ordering::Relaxed);
        }
    }
    if !get_keys.is_empty() {
        let mut fidx = 0usize;
        let mut count = 0usize;
        let mut mark = {
            let conn = conns[get_frames[0].0]
                .as_mut()
                .expect("live aggregated conn");
            begin_batch(&mut conn.wr)
        };
        session.multi_get_with(&get_keys, |i, hit| {
            while i >= get_frames[fidx].1 {
                let conn = conns[get_frames[fidx].0].as_mut().expect("live conn");
                finish_batch(&mut conn.wr, mark, count);
                fidx += 1;
                count = 0;
                let conn = conns[get_frames[fidx].0].as_mut().expect("live conn");
                mark = begin_batch(&mut conn.wr);
            }
            let conn = conns[get_frames[fidx].0].as_mut().expect("live conn");
            write_get_response(&mut conn.wr, hit, get_cols[i]);
            count += 1;
        });
        let conn = conns[get_frames[fidx].0].as_mut().expect("live conn");
        finish_batch(&mut conn.wr, mark, count);
    }

    // ---- per-frame path ----
    for g in groups.iter().filter(|g| g.plan == Plan::Seq) {
        for fi in g.frames.clone() {
            let f = &buf.frames[fi];
            let Some(conn) = conns[f.slot].as_mut() else {
                continue;
            };
            if conn.dead {
                continue;
            }
            debug_assert_eq!(
                (conn.id >> 32) as usize,
                worker_id,
                "session affinity: a connection's frames execute on its owning worker"
            );
            let reqs = take_frame_reqs(&mut buf.reqs, f);
            let tokens = cursors.entry(conn.id).or_default();
            let mark = begin_batch(&mut conn.wr);
            let mut sink = WireSink {
                out: &mut conn.wr,
                written: 0,
            };
            execute_batch_runs(session, tokens, reqs, &mut sink);
            let written = sink.written;
            if written != f.len {
                conn.wr.truncate(mark);
                conn.dead = true;
                continue;
            }
            finish_batch(&mut conn.wr, mark, written);
            ops.fetch_add(f.len as u64, Ordering::Relaxed);
        }
    }
}

/// Classifies one connection's pending frames for aggregation. The rule
/// that keeps aggregation invisible to clients: a connection only joins
/// a merged run when doing so cannot reorder its own stream — all-get
/// contributions commute with each other, and all-put contributions
/// commute unless the same key appears twice (then frame order fixes
/// the winner, so such a connection executes sequentially).
fn classify(buf: &FrameBuf, frames: std::ops::Range<usize>) -> Plan {
    let mut all_get = true;
    let mut all_put = true;
    for f in &buf.frames[frames.clone()] {
        if f.len == 0 {
            // Degenerate empty frame: the per-frame path answers it.
            return Plan::Seq;
        }
        for r in &buf.reqs[f.start..f.start + f.len] {
            match r {
                Request::Get { .. } => all_put = false,
                Request::Put { .. } => all_get = false,
                _ => return Plan::Seq,
            }
        }
        if !all_get && !all_put {
            return Plan::Seq;
        }
    }
    if all_get {
        return Plan::GetAgg;
    }
    // All puts: reject intra-connection duplicate keys (batch order must
    // decide the surviving write; the merged run leaves it unspecified).
    let mut keys: Vec<&[u8]> = buf.frames[frames]
        .iter()
        .flat_map(|f| &buf.reqs[f.start..f.start + f.len])
        .map(|r| match r {
            Request::Put { key, .. } => key.as_slice(),
            _ => unreachable!("checked all-put above"),
        })
        .collect();
    keys.sort_unstable();
    if keys.windows(2).any(|w| w[0] == w[1]) {
        return Plan::Seq;
    }
    Plan::PutAgg
}

/// Where a batch executor's responses go: owned [`Response`]s (the
/// compatibility path) or wire bytes written straight from borrowed
/// value slices (the zero-copy path). One implementation of the run
/// loop ([`execute_batch_runs`]) serves both, so the grouping semantics
/// cannot drift apart.
trait ResponseSink {
    /// Emits one get result from the borrowed value and the request's
    /// column selection.
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>);
    /// Emits one put result.
    fn put_ok(&mut self, version: u64);
    /// Executes and emits one non-groupable request.
    fn single(&mut self, session: &Session, tokens: &mut ScanTokens, req: Request);
}

/// Materializes owned [`Response`]s (copying the selected columns).
struct OwnedSink(Vec<Response>);

impl ResponseSink for OwnedSink {
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
        self.0.push(Response::Value(hit.map(|v| {
            match cols {
                None => v.cols(),
                Some(ids) => ids
                    .iter()
                    .map(|&c| v.col(c as usize).unwrap_or(&[]).to_vec())
                    .collect(),
            }
        })));
    }

    fn put_ok(&mut self, version: u64) {
        self.0.push(Response::PutOk(version));
    }

    fn single(&mut self, session: &Session, tokens: &mut ScanTokens, req: Request) {
        self.0.push(execute_tokens(session, tokens, req));
    }
}

/// Serializes responses directly into the connection's output buffer.
struct WireSink<'a> {
    out: &'a mut Vec<u8>,
    written: usize,
}

impl ResponseSink for WireSink<'_> {
    fn get_result(&mut self, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
        write_get_response(self.out, hit, cols);
        self.written += 1;
    }

    fn put_ok(&mut self, version: u64) {
        Response::PutOk(version).encode(self.out);
        self.written += 1;
    }

    fn single(&mut self, session: &Session, tokens: &mut ScanTokens, req: Request) {
        execute_into_tokens(session, tokens, req, self.out);
        self.written += 1;
    }
}

/// The shared batch run loop: splits the batch into maximal groupable
/// runs, feeds get/put runs through the interleaved batch traversal
/// engine (`masstree::batch`) instead of N sequential descents, and
/// hands every result to `sink`.
///
/// Batch semantics are preserved exactly: responses are positionally
/// matched, requests of different kinds never reorder across each other,
/// and a run of puts is split at a duplicate key so writes to the same
/// key apply in batch order (within an interleaved group, duplicate-key
/// order would otherwise be unspecified).
fn execute_batch_runs<S: ResponseSink>(
    session: &Session,
    tokens: &mut ScanTokens,
    mut reqs: Vec<Request>,
    sink: &mut S,
) {
    let runs = mtkv::split_batch_runs(
        &reqs,
        |r| match r {
            Request::Get { .. } => mtkv::RunKind::Get,
            Request::Put { .. } => mtkv::RunKind::Put,
            _ => mtkv::RunKind::Other,
        },
        |r| match r {
            Request::Get { key, .. } | Request::Put { key, .. } => key.as_slice(),
            _ => &[],
        },
    );
    for (kind, range) in runs {
        let run = &reqs[range.clone()];
        match kind {
            mtkv::RunKind::Get if run.len() >= 2 => {
                let keys: Vec<&[u8]> = run
                    .iter()
                    .map(|r| match r {
                        Request::Get { key, .. } => key.as_slice(),
                        _ => unreachable!("run holds only gets"),
                    })
                    .collect();
                // Each request's own column selection is applied against
                // the live value inside the visitor — the sink decides
                // whether that means copying (owned) or encoding (wire).
                session.multi_get_with(&keys, |i, hit| {
                    let Request::Get { cols, .. } = &run[i] else {
                        unreachable!("run holds only gets")
                    };
                    sink.get_result(hit, cols.as_deref());
                });
            }
            mtkv::RunKind::Put if run.len() >= 2 => {
                let updates: Vec<Vec<(usize, &[u8])>> = run
                    .iter()
                    .map(|r| match r {
                        Request::Put { cols, .. } => cols
                            .iter()
                            .map(|(i, d)| (*i as usize, d.as_slice()))
                            .collect(),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                let ops: Vec<mtkv::PutOp<'_>> = run
                    .iter()
                    .zip(&updates)
                    .map(|(r, u)| match r {
                        Request::Put { key, .. } => (key.as_slice(), u.as_slice()),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                for version in session.multi_put(&ops) {
                    sink.put_ok(version);
                }
            }
            _ => {
                // Singleton or non-groupable run: execute in place. The
                // placeholder swap lets us move the request out without
                // cloning its payload.
                for idx in range {
                    let req =
                        std::mem::replace(&mut reqs[idx], Request::Remove { key: Vec::new() });
                    sink.single(session, tokens, req);
                }
            }
        }
    }
}

/// Executes a whole wire batch against a store session, returning owned
/// responses. See [`execute_batch_runs`] for the grouping semantics.
pub fn execute_batch(session: &Session, reqs: Vec<Request>) -> Vec<Response> {
    let mut sink = OwnedSink(Vec::with_capacity(reqs.len()));
    execute_batch_runs(session, &mut ScanTokens::new(), reqs, &mut sink);
    sink.0
}

/// Executes a whole wire batch against a store session, serializing
/// responses directly into `out` — the zero-copy read path. Runs of
/// consecutive gets go through the interleaved batch traversal engine
/// and their responses are encoded **inside the `multi_get_with`
/// visitor**, with column slices borrowed straight out of each live
/// `ColValue` under the epoch guard; nothing is copied into intermediate
/// `Vec<Response>` payloads. Returns the number of responses written.
pub fn execute_batch_into(session: &Session, reqs: Vec<Request>, out: &mut Vec<u8>) -> usize {
    let mut sink = WireSink { out, written: 0 };
    execute_batch_runs(session, &mut ScanTokens::new(), reqs, &mut sink);
    sink.written
}

/// Executes one request against a store session, serializing the
/// response directly into `out`. Gets and scans write column slices
/// borrowed under the epoch guard (via `get_with` / `get_range_with`);
/// puts and removes encode their small fixed-size replies.
pub fn execute_into(session: &Session, req: Request, out: &mut Vec<u8>) {
    execute_into_tokens(session, &mut ScanTokens::new(), req, out)
}

/// [`execute_into`] with the connection's scan-token cursors, so
/// resumable `Scan` requests re-enter the tree at their remembered
/// border nodes.
fn execute_into_tokens(
    session: &Session,
    tokens: &mut ScanTokens,
    req: Request,
    out: &mut Vec<u8>,
) {
    match req {
        Request::Get { key, cols } => {
            session.get_with(&key, |hit| write_get_response(out, hit, cols.as_deref()));
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates)).encode(out);
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)).encode(out),
        Request::Scan {
            key,
            count,
            cols,
            resume,
        } => {
            let mut rows = RowsWriter::begin(out);
            scan_with_tokens(session, tokens, &key, count, resume, |k, v| match &cols {
                None => rows.push_row(
                    k,
                    v.ncols(),
                    (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
                ),
                Some(ids) => rows.push_row(
                    k,
                    ids.len(),
                    ids.iter().map(|&c| v.col(c as usize).unwrap_or(&[])),
                ),
            });
            rows.finish();
        }
        // Admin requests: small fixed-size replies, no zero-copy need.
        req @ (Request::Stats | Request::Flush | Request::Sync) => {
            execute(session, req).encode(out)
        }
    }
}

/// Runs one scan chunk, resuming from the connection's token cursor
/// when `resume` names one. `key` is the fallback start, used only
/// when the token has no cursor — the stream's first chunk, or a
/// cursor evicted at the [`MAX_SCAN_TOKENS`] cap (which is why clients
/// are told to pass their continuation key on follow-ups: an eviction
/// then degrades to one descent, not a silent re-stream). Evictions are
/// least-recently-used and counted (`cache_scan_evictions` in the wire
/// stats). Token-less scans take the session's transparent
/// start-key-matched cursor cache instead.
fn scan_with_tokens<F>(
    session: &Session,
    tokens: &mut ScanTokens,
    key: &[u8],
    count: u32,
    resume: Option<u64>,
    f: F,
) where
    F: FnMut(&[u8], &mtkv::ColValue),
{
    let Some(token) = resume else {
        session.get_range_with(key, count as usize, f);
        return;
    };
    let mut cursor = tokens
        .take(token)
        .unwrap_or_else(|| session.scan_cursor(key));
    session.get_range_resumed(&mut cursor, count as usize, f);
    if !cursor.is_done() && tokens.insert(token, cursor) {
        session.store().note_scan_evictions(1);
    }
}

/// Writes a get's `Response::Value` wire bytes from a borrowed value,
/// applying the request's column selection slice-by-slice.
fn write_get_response(out: &mut Vec<u8>, hit: Option<&mtkv::ColValue>, cols: Option<&[u16]>) {
    match hit {
        None => write_value_none(out),
        Some(v) => match cols {
            None => write_value_borrowed(
                out,
                v.ncols(),
                (0..v.ncols()).map(|c| v.col(c).unwrap_or(&[])),
            ),
            Some(ids) => write_value_borrowed(
                out,
                ids.len(),
                ids.iter().map(|&c| v.col(c as usize).unwrap_or(&[])),
            ),
        },
    }
}

/// Executes one request against a store session (token-less: resumable
/// `Scan` requests fall back to fresh scans; the server's per-connection
/// state routes them through [`StoreConn`] instead).
pub fn execute(session: &Session, req: Request) -> Response {
    execute_tokens(session, &mut ScanTokens::new(), req)
}

/// [`execute`] with the connection's scan-token cursors.
fn execute_tokens(session: &Session, tokens: &mut ScanTokens, req: Request) -> Response {
    match req {
        Request::Get { key, cols } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Value(session.get(&key, ids.as_deref()))
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates))
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)),
        Request::Scan {
            key,
            count,
            cols,
            resume,
        } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            let mut rows = Vec::with_capacity((count as usize).min(1024));
            scan_with_tokens(session, tokens, &key, count, resume, |k, v| {
                let row = match &ids {
                    None => v.cols(),
                    Some(ids) => ids
                        .iter()
                        .map(|&i| v.col(i).unwrap_or(&[]).to_vec())
                        .collect(),
                };
                rows.push((k.to_vec(), row));
            });
            Response::Rows(rows)
        }
        Request::Stats => Response::Stats(gather_stats(session)),
        Request::Flush => {
            // Make this connection's log durable, then run one full
            // durability cycle: checkpoint, truncate covered segments,
            // prune old checkpoints. A flush reply acks durability, so
            // any failure must surface as an error response — never as
            // stats pretending the data is safe. In-memory stores have
            // nothing to flush and answer with (all-zero) stats.
            if !session.force_log() {
                return Response::Err("flush failed: log writer is dead (I/O error)".into());
            }
            if session.store().log_dir().is_some() {
                if let Err(e) = session.store().checkpoint_now() {
                    return Response::Err(format!("flush failed: durability cycle: {e}"));
                }
            }
            Response::Stats(gather_stats(session))
        }
        Request::Sync => {
            // Group-commit barrier only (§5's per-core log force): make
            // this connection's log durable and report the stats — no
            // checkpoint, no truncation. Like Flush, a success reply
            // acks durability, so a dead log must surface as an error.
            if !session.force_log() {
                return Response::Err("sync failed: log writer is dead (I/O error)".into());
            }
            Response::Stats(gather_stats(session))
        }
    }
}

/// Snapshots the store's durability and cache-tier state into the wire
/// reply.
///
/// The cache counters aggregate **every** session's traffic as of this
/// call: `Store::cache_stats` walks the store's registry of live
/// session caches and flushes each one's batched local counters into
/// the shared sink before snapshotting it. (Sessions otherwise flush
/// only every 256 events and on drop, so a `Stats` request used to see
/// other connections' traffic late — and only its own connection's
/// counters freshly.)
fn gather_stats(session: &Session) -> StatsReply {
    let s = session.store().durability_stats();
    let c = session.store().cache_stats();
    StatsReply {
        checkpoints: s.checkpoints,
        last_checkpoint_start_ts: s.last_checkpoint_start_ts,
        log_bytes: s.log_bytes,
        log_segments: s.log_segments,
        segments_truncated: s.segments_truncated,
        cache_lookups: c.lookups,
        cache_hits: c.hits,
        cache_stale: c.stale,
        cache_write_hits: c.write_hits,
        cache_write_stale: c.write_stale,
        cache_scan_resumes: c.scan_resumes,
        cache_scan_evictions: c.scan_evictions,
    }
}
