//! The Masstree network server (§5 of the paper).
//!
//! The paper uses per-core NIC receive queues; in a container we serve
//! long-lived TCP connections from few client aggregators — the paper's
//! own benchmark configuration ("long-lived TCP query connections from
//! few clients (or client aggregators), a common operating mode that is
//! equally effective at avoiding network overhead"). One worker thread
//! per connection, each with its own store [`Session`] (and therefore its
//! own log, preserving the per-core-log design).

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mtkv::{Session, Store};

use crate::proto::{frame_batch, read_batch, Request, Response};

/// Per-connection request executor. The Masstree store is the primary
/// implementation; the benchmark harness plugs stand-in systems (hash
/// stores, partitioned stores) behind the same network stack so §7's
/// system comparison exercises identical I/O paths.
pub trait Backend: Send + Sync + 'static {
    /// Per-connection state (e.g. a store session owning a log).
    fn connect(&self) -> Box<dyn ConnState>;
}

/// Connection-scoped executor produced by a [`Backend`].
pub trait ConnState: Send {
    fn execute(&mut self, req: Request) -> Response;
}

/// The default backend: an `mtkv` store; each connection gets a session
/// (and therefore its own log, preserving the per-core-log design).
struct StoreBackend(Arc<Store>);

impl Backend for StoreBackend {
    fn connect(&self) -> Box<dyn ConnState> {
        let session = self.0.session().expect("open session log");
        Box::new(session)
    }
}

impl ConnState for Session {
    fn execute(&mut self, req: Request) -> Response {
        execute(self, req)
    }
}

/// A running server; dropping it (or calling [`Server::stop`]) shuts the
/// listener down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    ops: Arc<AtomicU64>,
}

impl Server {
    /// Starts serving `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Server::addr`]).
    pub fn start(store: Arc<Store>, addr: &str) -> std::io::Result<Server> {
        Self::start_backend(Arc::new(StoreBackend(store)), addr)
    }

    /// Starts serving an arbitrary [`Backend`].
    pub fn start_backend(backend: Arc<dyn Backend>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let ops2 = Arc::clone(&ops);
        let accept_thread = std::thread::Builder::new()
            .name("mtnet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let state = backend.connect();
                    let ops3 = Arc::clone(&ops2);
                    let _ = std::thread::Builder::new()
                        .name("mtnet-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(conn, state, &ops3);
                        });
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            ops,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total operations served (for benchmark harnesses).
    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops accepting. Existing connections drain when clients close.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Handles one connection: read a batch, execute every query, write the
/// response batch (one write per batch — the batching §7 shows matters).
fn serve_connection(
    conn: TcpStream,
    mut state: Box<dyn ConnState>,
    ops: &AtomicU64,
) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let mut reader = BufReader::with_capacity(1 << 20, conn.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 20, conn);
    while let Some((count, body)) = read_batch(&mut reader)? {
        let mut p = &body[..];
        let mut out = Vec::with_capacity(body.len());
        let mut served = 0u64;
        for _ in 0..count {
            let Some(req) = Request::decode(&mut p) else {
                return Err(std::io::Error::other("malformed request"));
            };
            let resp = state.execute(req);
            resp.encode(&mut out);
            served += 1;
        }
        ops.fetch_add(served, Ordering::Relaxed);
        let framed = frame_batch(count as usize, &out);
        writer.write_all(&framed)?;
        writer.flush()?;
    }
    Ok(())
}

/// Executes one request against a store session.
pub fn execute(session: &Session, req: Request) -> Response {
    match req {
        Request::Get { key, cols } => {
            let ids: Option<Vec<usize>> =
                cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Value(session.get(&key, ids.as_deref()))
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates))
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)),
        Request::Scan { key, count, cols } => {
            let ids: Option<Vec<usize>> =
                cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Rows(session.get_range(&key, count as usize, ids.as_deref()))
        }
    }
}
