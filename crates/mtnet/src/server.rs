//! The Masstree network server (§5 of the paper).
//!
//! The paper uses per-core NIC receive queues; in a container we serve
//! long-lived TCP connections from few client aggregators — the paper's
//! own benchmark configuration ("long-lived TCP query connections from
//! few clients (or client aggregators), a common operating mode that is
//! equally effective at avoiding network overhead"). One worker thread
//! per connection, each with its own store [`Session`] (and therefore its
//! own log, preserving the per-core-log design).

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mtkv::{Session, Store};

use crate::proto::{frame_batch, read_batch, Request, Response};

/// Per-connection request executor. The Masstree store is the primary
/// implementation; the benchmark harness plugs stand-in systems (hash
/// stores, partitioned stores) behind the same network stack so §7's
/// system comparison exercises identical I/O paths.
pub trait Backend: Send + Sync + 'static {
    /// Per-connection state (e.g. a store session owning a log).
    fn connect(&self) -> Box<dyn ConnState>;
}

/// Connection-scoped executor produced by a [`Backend`].
pub trait ConnState: Send {
    fn execute(&mut self, req: Request) -> Response;

    /// Executes one wire batch. The default runs each request in turn;
    /// the Masstree store overrides this to feed runs of gets/puts
    /// through the interleaved batch traversal engine.
    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter().map(|r| self.execute(r)).collect()
    }
}

/// The default backend: an `mtkv` store; each connection gets a session
/// (and therefore its own log, preserving the per-core-log design).
struct StoreBackend(Arc<Store>);

impl Backend for StoreBackend {
    fn connect(&self) -> Box<dyn ConnState> {
        let session = self.0.session().expect("open session log");
        Box::new(session)
    }
}

impl ConnState for Session {
    fn execute(&mut self, req: Request) -> Response {
        execute(self, req)
    }

    fn execute_batch(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        execute_batch(self, reqs)
    }
}

/// A running server; dropping it (or calling [`Server::stop`]) shuts the
/// listener down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    ops: Arc<AtomicU64>,
}

impl Server {
    /// Starts serving `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Server::addr`]).
    pub fn start(store: Arc<Store>, addr: &str) -> std::io::Result<Server> {
        Self::start_backend(Arc::new(StoreBackend(store)), addr)
    }

    /// Starts serving an arbitrary [`Backend`].
    pub fn start_backend(backend: Arc<dyn Backend>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ops = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let ops2 = Arc::clone(&ops);
        let accept_thread = std::thread::Builder::new()
            .name("mtnet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let state = backend.connect();
                    let ops3 = Arc::clone(&ops2);
                    let _ =
                        std::thread::Builder::new()
                            .name("mtnet-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(conn, state, &ops3);
                            });
                }
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            ops,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total operations served (for benchmark harnesses).
    pub fn ops_served(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Stops accepting. Existing connections drain when clients close.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Handles one connection: read a batch, decode it whole, execute it as
/// one unit (letting the backend interleave traversals across the
/// batch), write the response batch (one write per batch — the batching
/// §7 shows matters).
fn serve_connection(
    conn: TcpStream,
    mut state: Box<dyn ConnState>,
    ops: &AtomicU64,
) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let mut reader = BufReader::with_capacity(1 << 20, conn.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 20, conn);
    while let Some((count, body)) = read_batch(&mut reader)? {
        let mut p = &body[..];
        let mut reqs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let Some(req) = Request::decode(&mut p) else {
                return Err(std::io::Error::other("malformed request"));
            };
            reqs.push(req);
        }
        let resps = state.execute_batch(reqs);
        if resps.len() != count as usize {
            // A misbehaving backend must not desync the framed protocol:
            // fail the connection instead of sending a lying count.
            return Err(std::io::Error::other("backend response count mismatch"));
        }
        let mut out = Vec::with_capacity(body.len());
        for resp in &resps {
            resp.encode(&mut out);
        }
        ops.fetch_add(count as u64, Ordering::Relaxed);
        let framed = frame_batch(count as usize, &out);
        writer.write_all(&framed)?;
        writer.flush()?;
    }
    Ok(())
}

/// Executes a whole wire batch against a store session, routing runs of
/// consecutive gets and puts through the interleaved batch traversal
/// engine (`masstree::batch`) instead of N sequential descents.
///
/// Batch semantics are preserved exactly: responses are positionally
/// matched, requests of different kinds never reorder across each other,
/// and a run of puts is split at a duplicate key so writes to the same
/// key apply in batch order (within an interleaved group, duplicate-key
/// order would otherwise be unspecified).
pub fn execute_batch(session: &Session, mut reqs: Vec<Request>) -> Vec<Response> {
    let runs = mtkv::split_batch_runs(
        &reqs,
        |r| match r {
            Request::Get { .. } => mtkv::RunKind::Get,
            Request::Put { .. } => mtkv::RunKind::Put,
            _ => mtkv::RunKind::Other,
        },
        |r| match r {
            Request::Get { key, .. } | Request::Put { key, .. } => key.as_slice(),
            _ => &[],
        },
    );
    let mut out = Vec::with_capacity(reqs.len());
    for (kind, range) in runs {
        let run = &reqs[range.clone()];
        match kind {
            mtkv::RunKind::Get if run.len() >= 2 => {
                let keys: Vec<&[u8]> = run
                    .iter()
                    .map(|r| match r {
                        Request::Get { key, .. } => key.as_slice(),
                        _ => unreachable!("run holds only gets"),
                    })
                    .collect();
                // Project each request's own column selection straight
                // from the live value — no whole-value intermediate copy.
                let hits = session.multi_get_project(&keys, |i, v| {
                    let Request::Get { cols, .. } = &run[i] else {
                        unreachable!("run holds only gets")
                    };
                    match cols {
                        None => v.cols(),
                        Some(ids) => ids
                            .iter()
                            .map(|&c| v.col(c as usize).unwrap_or(&[]).to_vec())
                            .collect(),
                    }
                });
                out.extend(hits.into_iter().map(Response::Value));
            }
            mtkv::RunKind::Put if run.len() >= 2 => {
                let updates: Vec<Vec<(usize, &[u8])>> = run
                    .iter()
                    .map(|r| match r {
                        Request::Put { cols, .. } => cols
                            .iter()
                            .map(|(i, d)| (*i as usize, d.as_slice()))
                            .collect(),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                let ops: Vec<mtkv::PutOp<'_>> = run
                    .iter()
                    .zip(&updates)
                    .map(|(r, u)| match r {
                        Request::Put { key, .. } => (key.as_slice(), u.as_slice()),
                        _ => unreachable!("run holds only puts"),
                    })
                    .collect();
                out.extend(session.multi_put(&ops).into_iter().map(Response::PutOk));
            }
            _ => {
                // Singleton or non-groupable run: execute in place. The
                // placeholder swap lets us move the request out without
                // cloning its payload.
                for idx in range {
                    let req =
                        std::mem::replace(&mut reqs[idx], Request::Remove { key: Vec::new() });
                    out.push(execute(session, req));
                }
            }
        }
    }
    out
}

/// Executes one request against a store session.
pub fn execute(session: &Session, req: Request) -> Response {
    match req {
        Request::Get { key, cols } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Value(session.get(&key, ids.as_deref()))
        }
        Request::Put { key, cols } => {
            let updates: Vec<(usize, &[u8])> = cols
                .iter()
                .map(|(i, d)| (*i as usize, d.as_slice()))
                .collect();
            Response::PutOk(session.put(&key, &updates))
        }
        Request::Remove { key } => Response::RemoveOk(session.remove(&key)),
        Request::Scan { key, count, cols } => {
            let ids: Option<Vec<usize>> = cols.map(|c| c.iter().map(|&i| i as usize).collect());
            Response::Rows(session.get_range(&key, count as usize, ids.as_deref()))
        }
    }
}
