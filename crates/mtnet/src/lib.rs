//! # mtnet — network front end for the Masstree store
//!
//! A framed binary protocol with batched, pipelined queries (§3, §5, §7
//! of the paper), a shard-per-core event-loop TCP server (worker-owned
//! sessions and logs, cross-connection batch aggregation), and a client
//! library.

pub mod client;
pub mod poll;
pub mod proto;
pub mod repl;
pub mod server;

pub use client::Client;
pub use proto::{Request, Response, ScanResume, StatsExReply, StatsReply};
pub use repl::{Follower, FollowerConfig, FollowerStatus, ReplConfig, ReplSource};
pub use server::{
    execute, execute_batch, execute_batch_into, execute_into, Backend, ConnState, Server,
    ServerConfig,
};
