//! Tests for the linearization-hook APIs (`put_with`, `remove_with`) and
//! assorted edge cases: read-modify-write atomicity under contention,
//! hook ordering guarantees, and scans across structural churn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use masstree::Masstree;

#[test]
fn put_with_sees_current_value() {
    let t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let old = t.put_with(b"k", |old| old.copied().unwrap_or(0) + 1, &g);
    assert!(old.is_none());
    assert_eq!(t.get(b"k", &g), Some(&1));
    let old = t.put_with(b"k", |old| old.copied().unwrap_or(0) + 1, &g);
    assert_eq!(old, Some(&1));
    assert_eq!(t.get(b"k", &g), Some(&2));
}

#[test]
fn concurrent_put_with_increments_never_lose_updates() {
    // The whole point of running the closure under the node lock: N
    // concurrent read-modify-writes must all take effect.
    const THREADS: usize = 8;
    const PER: u64 = 20_000;
    let t = Arc::new(Masstree::<u64>::new());
    {
        let g = masstree::pin();
        t.put(b"counter", 0, &g);
    }
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let g = masstree::pin();
                for _ in 0..PER {
                    t.put_with(b"counter", |old| old.copied().unwrap_or(0) + 1, &g);
                }
            });
        }
    });
    let g = masstree::pin();
    assert_eq!(t.get(b"counter", &g), Some(&(THREADS as u64 * PER)));
}

#[test]
fn remove_with_runs_hook_exactly_once_per_removal() {
    let t: Masstree<u64> = Masstree::new();
    let hook_runs = AtomicU64::new(0);
    let g = masstree::pin();
    t.put(b"gone", 7, &g);
    let r = t.remove_with(
        b"gone",
        |v| {
            hook_runs.fetch_add(1, Ordering::Relaxed);
            *v * 2
        },
        &g,
    );
    assert_eq!(r.map(|(v, hook)| (*v, hook)), Some((7, 14)));
    assert_eq!(hook_runs.load(Ordering::Relaxed), 1);
    // Missing key: hook must not run.
    assert!(t
        .remove_with(b"gone", |_| panic!("must not run"), &g)
        .is_none());
    assert_eq!(hook_runs.load(Ordering::Relaxed), 1);
}

#[test]
fn interleaved_put_with_and_remove_with_serialize() {
    // A global sequence counter drawn inside the hooks must produce
    // versions consistent with the final state: whichever op drew the
    // highest version for a key determines its presence.
    const ROUNDS: u64 = 10_000;
    let t = Arc::new(Masstree::<u64>::new());
    let seq = Arc::new(AtomicU64::new(1));
    let put_max = Arc::new(AtomicU64::new(0));
    let rm_max = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        {
            let (t, seq, put_max) = (Arc::clone(&t), Arc::clone(&seq), Arc::clone(&put_max));
            s.spawn(move || {
                let g = masstree::pin();
                for _ in 0..ROUNDS {
                    let mut drawn = 0;
                    t.put_with(
                        b"contended",
                        |_| {
                            drawn = seq.fetch_add(1, Ordering::Relaxed);
                            drawn
                        },
                        &g,
                    );
                    put_max.fetch_max(drawn, Ordering::Relaxed);
                }
            });
        }
        {
            let (t, seq, rm_max) = (Arc::clone(&t), Arc::clone(&seq), Arc::clone(&rm_max));
            s.spawn(move || {
                let g = masstree::pin();
                for _ in 0..ROUNDS {
                    if let Some((_, v)) =
                        t.remove_with(b"contended", |_| seq.fetch_add(1, Ordering::Relaxed), &g)
                    {
                        rm_max.fetch_max(v, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let g = masstree::pin();
    let present = t.get(b"contended", &g).is_some();
    let (pm, rm) = (
        put_max.load(Ordering::Relaxed),
        rm_max.load(Ordering::Relaxed),
    );
    // The op with the globally-latest draw decides the final state.
    assert_eq!(
        present,
        pm > rm,
        "present={present}, put_max={pm}, rm_max={rm}"
    );
}

#[test]
fn deep_layer_roots_heal_lazily() {
    // Grow a deep layer until its root splits several times; gets and
    // puts entering through the (possibly stale) layer link must climb
    // and heal (§4.6.4 lazy root update).
    let mut t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let prefix = b"SAMESLC!"; // exactly 8 bytes: everything below layer 0
    for i in 0..20_000u64 {
        let key = [&prefix[..], format!("{i:010}").as_bytes()].concat();
        t.put(&key, i, &g);
    }
    for i in (0..20_000u64).step_by(37) {
        let key = [&prefix[..], format!("{i:010}").as_bytes()].concat();
        assert_eq!(t.get(&key, &g), Some(&i));
    }
    drop(g);
    let report = t.validate().expect("valid after deep-layer growth");
    assert_eq!(report.keys, 20_000);
    assert!(report.layers >= 2);
}

#[test]
fn scan_prefix_extraction_with_binary_keys() {
    let t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    // Keys containing 0x00 and 0xff bytes around slice boundaries.
    let keys: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x00],
        vec![0x00, 0x00],
        vec![0xff; 7],
        vec![0xff; 8],
        vec![0xff; 9],
        [vec![0xff; 8], vec![0x00]].concat(),
        [vec![0x41; 8], vec![0xff; 8], vec![0x42; 3]].concat(),
    ];
    for (i, k) in keys.iter().enumerate() {
        t.put(k, i as u64, &g);
    }
    let mut got = Vec::new();
    t.scan(b"", &g, |k, _| {
        got.push(k.to_vec());
        true
    });
    let mut want = keys.clone();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn get_range_limit_zero_and_large() {
    let t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..100u64 {
        t.put(format!("{i:03}").as_bytes(), i, &g);
    }
    assert!(t.get_range(b"", 0, &g).is_empty());
    assert_eq!(t.get_range(b"", 10_000, &g).len(), 100);
    assert_eq!(t.get_range(b"9999", 10, &g).len(), 0, "past the end");
}

#[test]
fn slot_reuse_never_leaks_wrong_value() {
    // §4.6.5's exact hazard: get locates k1 at slot i; remove(k1) frees
    // slot i; put(k2) reuses slot i; the get must NOT return k2's value
    // for k1. All keys share one border node (single-slice keys), and
    // every value records its key so readers can detect cross-key leaks.
    use std::sync::atomic::AtomicBool;
    const KEYS: &[&[u8]] = &[b"a", b"b", b"c", b"d", b"e", b"f", b"g", b"h"];
    let t = Arc::new(Masstree::<Vec<u8>>::new());
    let stop = Arc::new(AtomicBool::new(false));
    {
        let g = masstree::pin();
        for k in KEYS {
            t.put(k, k.to_vec(), &g);
        }
    }
    std::thread::scope(|s| {
        // Two writers constantly remove + reinsert (forcing slot reuse).
        for w in 0..2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let g = masstree::pin();
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let k = KEYS[i % KEYS.len()];
                    t.remove(k, &g);
                    t.put(k, k.to_vec(), &g);
                    i += 1;
                }
            });
        }
        // Four readers verify value-key binding on every hit.
        for r in 0..4 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let g = masstree::pin();
                    let k = KEYS[i % KEYS.len()];
                    if let Some(v) = t.get(k, &g) {
                        assert_eq!(v.as_slice(), k, "slot reuse leaked another key's value");
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(1500));
        stop.store(true, Ordering::Relaxed);
    });
}
