//! Single-threaded semantic tests for the Masstree core: every operation
//! is cross-checked against `std::collections::BTreeMap` as a model, and
//! the whole-tree validator runs after structural churn.

use std::collections::BTreeMap;

use masstree::Masstree;

fn decimal_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    // 1-to-10-byte decimal keys as in §6.1 of the paper.
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (s >> 33) % 2_147_483_648;
            v.to_string().into_bytes()
        })
        .collect()
}

#[test]
fn empty_tree() {
    let t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    assert_eq!(t.get(b"anything", &g), None);
    assert_eq!(t.get(b"", &g), None);
    assert_eq!(t.remove(b"anything", &g), None);
    assert_eq!(t.get_range(b"", 10, &g), vec![]);
    assert_eq!(t.count_keys(&g), 0);
}

#[test]
fn put_get_single() {
    let t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    assert_eq!(t.put(b"hello", 7, &g), None);
    assert_eq!(t.get(b"hello", &g), Some(&7));
    assert_eq!(t.get(b"hell", &g), None);
    assert_eq!(t.get(b"hello!", &g), None);
}

#[test]
fn update_returns_old_value() {
    let t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    assert_eq!(t.put(b"k", 1, &g), None);
    assert_eq!(t.put(b"k", 2, &g), Some(&1));
    assert_eq!(t.get(b"k", &g), Some(&2));
}

#[test]
fn empty_key_is_a_valid_key() {
    let t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    assert_eq!(t.put(b"", 42, &g), None);
    assert_eq!(t.get(b"", &g), Some(&42));
    assert_eq!(t.remove(b"", &g), Some(&42));
    assert_eq!(t.get(b"", &g), None);
}

#[test]
fn binary_keys_with_nuls() {
    // §4.2: "ABCDEFG\0" (8 bytes) must differ from "ABCDEFG" (7 bytes).
    let t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    t.put(b"ABCDEFG", 7, &g);
    t.put(b"ABCDEFG\0", 8, &g);
    t.put(b"ABCDEFG\0\0", 9, &g);
    assert_eq!(t.get(b"ABCDEFG", &g), Some(&7));
    assert_eq!(t.get(b"ABCDEFG\0", &g), Some(&8));
    assert_eq!(t.get(b"ABCDEFG\0\0", &g), Some(&9));
    assert_eq!(t.get(b"ABCDEF", &g), None);
}

#[test]
fn paper_layer_example() {
    // The worked example from §4.1 of the paper.
    let mut t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    // 1. put("01234567AB") stores slice + suffix in the root layer.
    t.put(b"01234567AB", 1, &g);
    assert_eq!(t.get(b"01234567AB", &g), Some(&1));
    // 2. put("01234567XY") forces a new layer; both keys stay visible.
    t.put(b"01234567XY", 2, &g);
    assert_eq!(t.get(b"01234567AB", &g), Some(&1));
    assert_eq!(t.get(b"01234567XY", &g), Some(&2));
    assert_eq!(t.get(b"01234567", &g), None);
    assert!(t.stats().snapshot().layers_created >= 1);
    // 3. remove("01234567XY") deletes only that key.
    assert_eq!(t.remove(b"01234567XY", &g), Some(&2));
    assert_eq!(t.get(b"01234567AB", &g), Some(&1));
    assert_eq!(t.get(b"01234567XY", &g), None);
    drop(g);
    let report = t.validate().expect("valid tree");
    assert_eq!(report.keys, 1);
}

#[test]
fn long_shared_prefixes_build_deep_layers() {
    let mut t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let prefix = b"0123456789abcdef0123456789abcdef0123456789abcdef"; // 48 bytes
    for i in 0..100u64 {
        let mut k = prefix.to_vec();
        k.extend_from_slice(format!("{i:08}").as_bytes());
        t.put(&k, i, &g);
    }
    for i in 0..100u64 {
        let mut k = prefix.to_vec();
        k.extend_from_slice(format!("{i:08}").as_bytes());
        assert_eq!(t.get(&k, &g), Some(&i), "key {i}");
    }
    // 48-byte shared prefix ⇒ at least 7 layers (§4.1: 1000 keys sharing a
    // 64-byte prefix generate at least 8 layers).
    drop(g);
    let report = t.validate().expect("valid tree");
    assert_eq!(report.keys, 100);
    assert!(report.layers >= 6, "layers = {}", report.layers);
}

#[test]
fn prefix_of_prefix_keys() {
    // Keys that are prefixes of each other at every slice boundary.
    let mut t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    let full = b"aaaabbbbccccddddeeeeffff";
    let keys: Vec<&[u8]> = (0..=full.len()).map(|i| &full[..i]).collect();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.put(k, i as u32, &g), None, "insert len {i}");
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.get(k, &g), Some(&(i as u32)), "get len {i}");
    }
    drop(g);
    let report = t.validate().expect("valid tree");
    assert_eq!(report.keys, keys.len());
}

#[test]
fn sequential_inserts_split_correctly() {
    // Exercises the sequential-insert split optimization (§4.3).
    let mut t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..10_000u64 {
        let k = format!("{i:08}");
        t.put(k.as_bytes(), i, &g);
    }
    for i in 0..10_000u64 {
        let k = format!("{i:08}");
        assert_eq!(t.get(k.as_bytes(), &g), Some(&i));
    }
    assert!(t.stats().snapshot().splits > 0);
    drop(g);
    let report = t.validate().expect("valid tree");
    assert_eq!(report.keys, 10_000);
}

#[test]
fn random_inserts_against_model() {
    let mut t: Masstree<u64> = Masstree::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let g = masstree::pin();
    for (i, k) in decimal_keys(50_000, 99).into_iter().enumerate() {
        let old_model = model.insert(k.clone(), i as u64);
        let old_tree = t.put(&k, i as u64, &g).copied();
        assert_eq!(old_tree, old_model, "put {:?}", String::from_utf8_lossy(&k));
    }
    for (k, v) in &model {
        assert_eq!(t.get(k, &g), Some(v));
    }
    assert_eq!(t.count_keys(&g), model.len());
    drop(g);
    let report = t.validate().expect("valid tree");
    assert_eq!(report.keys, model.len());
    assert!(report.interiors > 0);
}

#[test]
fn remove_against_model() {
    let mut t: Masstree<u64> = Masstree::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let g = masstree::pin();
    let keys = decimal_keys(20_000, 7);
    for (i, k) in keys.iter().enumerate() {
        model.insert(k.clone(), i as u64);
        t.put(k, i as u64, &g);
    }
    // Remove every other distinct key.
    let distinct: Vec<Vec<u8>> = model.keys().cloned().collect();
    for (j, k) in distinct.iter().enumerate() {
        if j % 2 == 0 {
            let want = model.remove(k);
            let got = t.remove(k, &g).copied();
            assert_eq!(got, want, "remove {:?}", String::from_utf8_lossy(k));
        }
    }
    for k in &distinct {
        assert_eq!(t.get(k, &g).copied(), model.get(k).copied());
    }
    drop(g);
    let report = t.validate().expect("valid tree");
    assert_eq!(report.keys, model.len());
}

#[test]
fn remove_everything_then_reuse() {
    let mut t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let keys = decimal_keys(5_000, 21);
    let distinct: std::collections::BTreeSet<Vec<u8>> = keys.iter().cloned().collect();
    for k in &distinct {
        t.put(k, 1, &g);
    }
    for k in &distinct {
        assert!(t.remove(k, &g).is_some());
    }
    assert_eq!(t.count_keys(&g), 0);
    assert!(
        t.stats().snapshot().nodes_deleted > 0,
        "border deletes happened"
    );
    // The tree must be fully reusable afterwards.
    for k in &distinct {
        assert_eq!(t.put(k, 2, &g), None);
    }
    assert_eq!(t.count_keys(&g), distinct.len());
    drop(g);
    t.validate().expect("valid tree after churn");
}

#[test]
fn scan_matches_model_order() {
    let t: Masstree<u64> = Masstree::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let g = masstree::pin();
    for (i, k) in decimal_keys(10_000, 3).into_iter().enumerate() {
        model.insert(k.clone(), i as u64);
        t.put(&k, i as u64, &g);
    }
    // Full scan == model iteration.
    let mut got = Vec::new();
    t.scan(b"", &g, |k, v| {
        got.push((k.to_vec(), *v));
        true
    });
    let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(got.len(), want.len());
    assert_eq!(got, want);
}

#[test]
fn get_range_from_arbitrary_starts() {
    let t: Masstree<u64> = Masstree::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let g = masstree::pin();
    for (i, k) in decimal_keys(5_000, 11).into_iter().enumerate() {
        model.insert(k.clone(), i as u64);
        t.put(&k, i as u64, &g);
    }
    let starts: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"1".to_vec(),
        b"12345".to_vec(),
        b"2".to_vec(),
        b"999999999999".to_vec(),
        b"5000000000".to_vec(),
    ];
    for start in starts {
        for limit in [1usize, 7, 100] {
            let got = t.get_range(&start, limit, &g);
            let want: Vec<(Vec<u8>, u64)> = model
                .range(start.clone()..)
                .take(limit)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let got_pairs: Vec<(Vec<u8>, u64)> = got.into_iter().map(|(k, v)| (k, *v)).collect();
            assert_eq!(got_pairs, want, "start={start:?} limit={limit}");
        }
    }
}

#[test]
fn scan_with_deep_layers() {
    let t: Masstree<u64> = Masstree::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let g = masstree::pin();
    // URL-like keys sharing long prefixes (the Bigtable motivation, §1).
    let domains = [
        "com.example",
        "com.example.mail",
        "org.kernel",
        "org.kernel.git",
    ];
    for (d, dom) in domains.iter().enumerate() {
        for p in 0..200u64 {
            let key = format!("{dom}/page{p:05}").into_bytes();
            let val = d as u64 * 1000 + p;
            model.insert(key.clone(), val);
            t.put(&key, val, &g);
        }
    }
    let mut got = Vec::new();
    t.scan(b"", &g, |k, v| {
        got.push((k.to_vec(), *v));
        true
    });
    let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(got, want);
    // Prefix-bounded range: all of org.kernel/* (not org.kernel.git).
    let hits = t.get_range(b"org.kernel/", 1000, &g);
    let in_prefix = hits
        .iter()
        .take_while(|(k, _)| k.starts_with(b"org.kernel/"))
        .count();
    assert_eq!(in_prefix, 200);
}

#[test]
fn scan_early_stop() {
    let t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..1000u64 {
        t.put(format!("{i:04}").as_bytes(), i, &g);
    }
    let mut seen = 0;
    let visited = t.scan(b"", &g, |_, _| {
        seen += 1;
        seen < 10
    });
    assert_eq!(seen, 10);
    assert_eq!(visited, 10);
}

#[test]
fn maintain_collects_empty_layers() {
    let mut t: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    // Create a layer, then empty it.
    t.put(b"01234567AAAA", 1, &g);
    t.put(b"01234567BBBB", 2, &g);
    assert!(t.stats().snapshot().layers_created >= 1);
    t.remove(b"01234567AAAA", &g);
    t.remove(b"01234567BBBB", &g);
    assert_eq!(t.count_keys(&g), 0);
    // The empty layer may persist until maintenance runs.
    t.maintain(&g);
    drop(g);
    let report = t.validate().expect("valid after maintain");
    assert_eq!(report.keys, 0);
    assert_eq!(report.layers, 1, "empty layer collected");
}

#[test]
fn ten_keys_sharing_one_slice() {
    // §4.2: a single slice can host keys of lengths 0..=8 plus one longer
    // key — 10 entries, the maximum for one slice.
    let mut t: Masstree<u32> = Masstree::new();
    let g = masstree::pin();
    let base = b"SLICEKEY";
    let mut keys: Vec<Vec<u8>> = (0..=8).map(|l| base[..l].to_vec()).collect();
    keys.push(b"SLICEKEYLONG".to_vec());
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.put(k, i as u32, &g), None);
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.get(k, &g), Some(&(i as u32)), "key {i}");
    }
    drop(g);
    assert_eq!(t.validate().unwrap().keys, 10);
}
