//! Concurrent `remove_with` vs. forward/reverse scan stress (§4.6.5).
//!
//! Removals during scans had no dedicated test: removals only rewrite
//! the permutation (readers keep seeing consistent old state), empty
//! border nodes are unlinked from the leaf list scans walk, and layers
//! are deleted by the maintenance pass — every one of those transitions
//! races a scan's cursor here. Writers continuously remove and re-insert
//! keys (forcing node deletions and leaf-list splices) while scanners
//! assert the §4 invariants: strict key ordering, no duplicates, values
//! always consistent with their keys, and keys outside the churn window
//! never missing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use masstree::Masstree;

const STABLE_KEYS: usize = 2_000;
const CHURN_KEYS: usize = 2_000;
const WRITERS: usize = 2;
const SCAN_ROUNDS: usize = 400;

fn stable_key(i: usize) -> Vec<u8> {
    format!("stable{i:06}").into_bytes()
}

fn churn_key(i: usize) -> Vec<u8> {
    // Interleaved with the stable keys (shared prefix) so removals
    // delete nodes *inside* the range scans traverse, and long suffixes
    // force multi-layer trees whose layer GC also races the scans.
    format!("stable{i:06}churn-with-a-long-suffix-to-force-deeper-layers").into_bytes()
}

/// Value = hash of the key bytes, so a scanner can validate any (k, v)
/// pair without knowing the write schedule.
fn expected_value(key: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in key {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[test]
fn concurrent_remove_with_vs_forward_and_reverse_scans() {
    let tree = Arc::new(Masstree::<u64>::new());
    {
        let g = masstree::pin();
        for i in 0..STABLE_KEYS {
            let k = stable_key(i);
            let v = expected_value(&k);
            tree.put(&k, v, &g);
        }
        for i in 0..CHURN_KEYS {
            let k = churn_key(i);
            let v = expected_value(&k);
            tree.put(&k, v, &g);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let removals = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(WRITERS + 4));

    let mut handles = Vec::new();

    // Writers: remove_with + re-insert over the churn keys, drawing a
    // "version" inside the removal's critical section exactly the way
    // the storage layer does (§5) — the callback must run under the
    // border-node lock without upsetting concurrent scans.
    for w in 0..WRITERS {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        let removals = Arc::clone(&removals);
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut rng = 0x9e3779b97f4a7c15u64 ^ (w as u64);
            let mut local = 0usize;
            while !stop.load(Ordering::Relaxed) {
                rng = mix64(rng);
                let i = (rng as usize) % CHURN_KEYS;
                let k = churn_key(i);
                let g = masstree::pin();
                if let Some((val, drawn)) = tree.remove_with(&k, |v| *v, &g) {
                    assert_eq!(*val, expected_value(&k), "remove saw a foreign value");
                    assert_eq!(drawn, expected_value(&k), "callback ran on the value");
                    local += 1;
                    // Re-insert so scanners keep having work near this key.
                    tree.put(&k, expected_value(&k), &g);
                }
                drop(g);
                if local.is_multiple_of(64) {
                    let g = masstree::pin();
                    tree.maintain(&g); // empty-layer GC races the scans too
                }
            }
            removals.fetch_add(local, Ordering::Relaxed);
        }));
    }

    // Forward scanners.
    for s in 0..2 {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut rng = 0xfeedface ^ (s as u64);
            for round in 0..SCAN_ROUNDS {
                rng = mix64(rng);
                let start = stable_key((rng as usize) % STABLE_KEYS);
                let g = masstree::pin();
                let mut prev: Option<Vec<u8>> = None;
                let mut stable_seen = 0usize;
                let mut visited = 0usize;
                tree.scan(&start, &g, |k, v| {
                    if let Some(p) = &prev {
                        assert!(
                            k > p.as_slice(),
                            "round {round}: forward scan went backwards or repeated: \
                             {:?} after {:?}",
                            String::from_utf8_lossy(k),
                            String::from_utf8_lossy(p)
                        );
                    }
                    assert_eq!(
                        *v,
                        expected_value(k),
                        "round {round}: value inconsistent with key {:?}",
                        String::from_utf8_lossy(k)
                    );
                    if !k.ends_with(b"layers") {
                        stable_seen += 1;
                    }
                    prev = Some(k.to_vec());
                    visited += 1;
                    visited < 300
                });
                // Stable keys are never removed and interleave 1:1 with
                // the churn keys, so any visited window must be at least
                // half stable — a lower count means a scan lost keys.
                assert!(
                    stable_seen * 2 + 2 >= visited,
                    "round {round}: stable keys went missing from a forward scan \
                     ({stable_seen} of {visited})"
                );
                drop(g);
            }
            stop.store(true, Ordering::Relaxed);
        }));
    }

    // Reverse scanners.
    for s in 0..2 {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut rng = 0xdecafbad ^ (s as u64);
            for round in 0..SCAN_ROUNDS {
                rng = mix64(rng);
                let start = stable_key(STABLE_KEYS - 1 - (rng as usize) % (STABLE_KEYS / 2));
                let g = masstree::pin();
                let mut prev: Option<Vec<u8>> = None;
                let mut stable_seen = 0usize;
                let mut visited = 0usize;
                tree.scan_rev(&start, &g, |k, v| {
                    if let Some(p) = &prev {
                        assert!(
                            k < p.as_slice(),
                            "round {round}: reverse scan went forwards or repeated: \
                             {:?} after {:?}",
                            String::from_utf8_lossy(k),
                            String::from_utf8_lossy(p)
                        );
                    }
                    assert_eq!(*v, expected_value(k), "round {round}");
                    if !k.ends_with(b"layers") {
                        stable_seen += 1;
                    }
                    prev = Some(k.to_vec());
                    visited += 1;
                    visited < 300
                });
                assert!(
                    stable_seen * 2 + 2 >= visited,
                    "round {round}: stable keys went missing from a reverse scan \
                     ({stable_seen} of {visited})"
                );
                drop(g);
            }
            stop.store(true, Ordering::Relaxed);
        }));
    }

    for h in handles {
        h.join().unwrap();
    }
    assert!(
        removals.load(Ordering::Relaxed) > 1_000,
        "writers must actually have churned ({} removals)",
        removals.load(Ordering::Relaxed)
    );

    // Quiescent check: every key present with its expected value, full
    // forward and reverse scans agree exactly.
    let g = masstree::pin();
    let mut fwd = Vec::new();
    tree.scan(b"", &g, |k, v| {
        assert_eq!(*v, expected_value(k));
        fwd.push(k.to_vec());
        true
    });
    assert_eq!(fwd.len(), STABLE_KEYS + CHURN_KEYS);
    let mut rev = Vec::new();
    tree.scan_rev(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff", &g, |k, _| {
        rev.push(k.to_vec());
        true
    });
    rev.reverse();
    assert_eq!(fwd, rev, "forward and reverse scans disagree at rest");
}
