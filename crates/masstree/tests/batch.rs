//! Batch/sequential equivalence properties for the interleaved traversal
//! engine (`masstree::batch`): a random stream of `multi_get`/`multi_put`
//! groups must produce byte-identical results to the same operations
//! issued one at a time — including keys that share prefixes and cross
//! trie-layer boundaries — and must stay correct while a concurrent
//! writer forces OCC retries mid-batch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use masstree::Masstree;

const CASES: u64 = 48;

use mtworkload::Rng64 as Rng;

/// Keys engineered to stress the trie: short binary keys, zero-padded
/// slice colliders, and 16/24-byte shared prefixes whose tails differ
/// only past a layer boundary.
fn gen_key(rng: &mut Rng) -> Vec<u8> {
    match rng.below(4) {
        0 => {
            let len = rng.below(12) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        }
        1 => {
            // Same 8-byte slice, different lengths: "AAAA", "AAAA\0"...
            let len = rng.below(10) as usize;
            let mut k = vec![b'A'; len.min(8)];
            k.extend(std::iter::repeat_n(0u8, len.saturating_sub(8)));
            k
        }
        2 => {
            // 16-byte shared prefix, tail crosses into layer 2.
            let mut k = b"prefix__prefix__".to_vec();
            k.extend(format!("{:04}", rng.below(50)).into_bytes());
            k
        }
        _ => {
            // 24-byte shared prefix: three layers deep.
            let mut k = b"deep____deep____deep____".to_vec();
            k.extend(format!("{:03}", rng.below(40)).into_bytes());
            k
        }
    }
}

/// One phase of a stream: a group of puts or a group of gets.
enum Group {
    Puts(Vec<(Vec<u8>, u64)>),
    Gets(Vec<Vec<u8>>),
}

fn gen_stream(rng: &mut Rng) -> Vec<Group> {
    let phases = 2 + rng.below(8) as usize;
    (0..phases)
        .map(|_| {
            let n = 1 + rng.below(40) as usize;
            if rng.below(2) == 0 {
                Group::Puts((0..n).map(|_| (gen_key(rng), rng.next_u64())).collect())
            } else {
                Group::Gets((0..n).map(|_| gen_key(rng)).collect())
            }
        })
        .collect()
}

#[test]
fn batched_stream_equals_sequential_stream() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xba7c4 + case);
        let stream = gen_stream(&mut rng);

        // Replay the same stream into a batched tree, a sequential tree,
        // and a model; all three must agree op-by-op and in final state.
        let mut batched: Masstree<u64> = Masstree::new();
        let sequential: Masstree<u64> = Masstree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let g = masstree::pin();
        for group in &stream {
            match group {
                Group::Puts(ops) => {
                    // Duplicate keys within one interleaved group apply
                    // in unspecified order; dedupe (keep the last write,
                    // like the server's run splitting would) so all three
                    // replicas see a well-defined stream.
                    let mut dedup: BTreeMap<&[u8], u64> = BTreeMap::new();
                    for (k, v) in ops {
                        dedup.insert(k.as_slice(), *v);
                    }
                    let keys: Vec<&[u8]> = dedup.keys().copied().collect();
                    let values: Vec<u64> = dedup.values().copied().collect();
                    let prev_batch = batched.multi_put(&keys, values.clone(), &g);
                    for ((k, v), prev) in dedup.iter().zip(prev_batch) {
                        let prev_seq = sequential.put(k, *v, &g).copied();
                        let prev_model = model.insert(k.to_vec(), *v);
                        assert_eq!(prev.copied(), prev_model, "case {case}");
                        assert_eq!(prev_seq, prev_model, "case {case}");
                    }
                }
                Group::Gets(keys) => {
                    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                    let got_batch = batched.multi_get(&refs, &g);
                    for (k, got) in refs.iter().zip(got_batch) {
                        let want = model.get(*k).copied();
                        assert_eq!(got.copied(), want, "case {case} key {k:?}");
                        assert_eq!(sequential.get(k, &g).copied(), want, "case {case}");
                    }
                }
            }
        }
        // Final states are byte-identical: scan both trees.
        let mut from_batched = Vec::new();
        batched.scan(b"", &g, |k, v| {
            from_batched.push((k.to_vec(), *v));
            true
        });
        let mut from_sequential = Vec::new();
        sequential.scan(b"", &g, |k, v| {
            from_sequential.push((k.to_vec(), *v));
            true
        });
        let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(from_batched, want, "case {case}");
        assert_eq!(from_sequential, want, "case {case}");
        drop(g);
        batched
            .validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

#[test]
fn batch_results_identical_to_singles_on_same_tree() {
    // On one tree: every multi_get answer must equal the sequential
    // get answer under the same guard, for every batch size the bench
    // sweeps, with layer-crossing keys present.
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let mut rng = Rng::new(0x1de27);
    let mut keys: Vec<Vec<u8>> = Vec::new();
    for _ in 0..3_000 {
        let k = gen_key(&mut rng);
        tree.put(&k, rng.next_u64(), &g);
        keys.push(k);
    }
    for batch_size in [1usize, 4, 8, 16, 32, 33, 100] {
        let probe: Vec<&[u8]> = (0..batch_size * 3)
            .map(|i| keys[(i * 37) % keys.len()].as_slice())
            .collect();
        for chunk in probe.chunks(batch_size) {
            let got = tree.multi_get(chunk, &g);
            for (k, v) in chunk.iter().zip(got) {
                assert_eq!(v, tree.get(k, &g), "batch_size {batch_size}");
            }
        }
    }
}

#[test]
fn batches_stay_correct_under_concurrent_writer() {
    // A writer thread churns inserts/updates/removes over half the
    // keyspace (forcing splits, layer creation and OCC retries) while
    // batched readers and writers run against the *other* half, whose
    // contents are deterministic. Batched results for the stable half
    // must always match the model exactly.
    const STABLE: u64 = 2_000;
    let tree = Arc::new(Masstree::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));

    {
        let g = masstree::pin();
        for i in 0..STABLE {
            tree.put(format!("stable/{i:06}").as_bytes(), i, &g);
        }
    }

    let churn = {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut rng = Rng::new(7);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let g = masstree::pin();
                for _ in 0..512 {
                    // Same leading slices as the stable half ("stable/"
                    // vs "stably/" share 6 bytes) plus deep-layer churn.
                    let k = match rng.below(3) {
                        0 => format!("stably/{:06}", rng.below(5_000)),
                        1 => format!("stable/{:06}x{:04}", rng.below(5_000), rng.below(100)),
                        _ => format!("deep____deep____{:08}", rng.below(10_000)),
                    };
                    if rng.below(4) == 0 {
                        tree.remove(k.as_bytes(), &g);
                    } else {
                        tree.put(k.as_bytes(), i, &g);
                    }
                    i += 1;
                }
                drop(g);
                thread::yield_now();
            }
        })
    };

    let mut rng = Rng::new(99);
    for round in 0..200 {
        let g = masstree::pin();
        // Batched gets over the stable half: must match exactly.
        let keys: Vec<Vec<u8>> = (0..32)
            .map(|_| format!("stable/{:06}", rng.below(STABLE)).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let got = tree.multi_get(&refs, &g);
        for (k, v) in refs.iter().zip(got) {
            let idx: u64 = std::str::from_utf8(&k[7..]).unwrap().parse().unwrap();
            assert_eq!(v.copied(), Some(idx), "round {round}");
        }
        // Batched updates of the stable half back to their model value
        // (multi_put must return the old value and re-install idx).
        let prev = tree.multi_put(
            &refs,
            refs.iter()
                .map(|k| std::str::from_utf8(&k[7..]).unwrap().parse().unwrap())
                .collect(),
            &g,
        );
        for (k, p) in refs.iter().zip(prev) {
            let idx: u64 = std::str::from_utf8(&k[7..]).unwrap().parse().unwrap();
            assert_eq!(p.copied(), Some(idx), "round {round}");
        }
        drop(g);
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    tree.validate().expect("valid tree after churn");
    // OCC machinery actually fired while batches ran.
    let snap = tree.stats().snapshot();
    assert!(snap.batched_ops > 0);
}
