//! Backward range queries (§4.3: the doubly-linked border list "speeds up
//! range queries in either direction") — model-checked against BTreeMap's
//! reverse ranges, including deep trie layers and binary keys.

use std::collections::BTreeMap;

use masstree::Masstree;

fn decimal_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 2_147_483_648).to_string().into_bytes()
        })
        .collect()
}

fn build(keys: &[Vec<u8>]) -> (Masstree<u64>, BTreeMap<Vec<u8>, u64>) {
    let t = Masstree::new();
    let mut m = BTreeMap::new();
    let g = masstree::pin();
    for (i, k) in keys.iter().enumerate() {
        t.put(k, i as u64, &g);
        m.insert(k.clone(), i as u64);
    }
    (t, m)
}

fn check_rev(t: &Masstree<u64>, m: &BTreeMap<Vec<u8>, u64>, start: &[u8], limit: usize) {
    let g = masstree::pin();
    let got: Vec<(Vec<u8>, u64)> = t
        .get_range_rev(start, limit, &g)
        .into_iter()
        .map(|(k, v)| (k, *v))
        .collect();
    let want: Vec<(Vec<u8>, u64)> = m
        .range::<[u8], _>((std::ops::Bound::Unbounded, std::ops::Bound::Included(start)))
        .rev()
        .take(limit)
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    assert_eq!(
        got,
        want,
        "start={:?} limit={limit}",
        String::from_utf8_lossy(start)
    );
}

#[test]
fn full_reverse_scan_matches_model() {
    let keys = decimal_keys(20_000, 5);
    let (t, m) = build(&keys);
    check_rev(
        &t,
        &m,
        b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff",
        usize::MAX >> 1,
    );
}

#[test]
fn reverse_from_arbitrary_starts() {
    let keys = decimal_keys(5_000, 17);
    let (t, m) = build(&keys);
    for start in [&b""[..], b"5", b"12345", b"2000000000", b"99999999999"] {
        for limit in [1usize, 7, 100] {
            check_rev(&t, &m, start, limit);
        }
    }
}

#[test]
fn reverse_through_deep_layers() {
    // URL-like keys: shared prefixes force multi-layer recursion.
    let mut keys = Vec::new();
    for dom in ["com.example", "com.example.mail", "org.kernel"] {
        for p in 0..300u32 {
            keys.push(format!("{dom}/page{p:05}").into_bytes());
        }
    }
    let (t, m) = build(&keys);
    check_rev(&t, &m, b"zzzz", 10_000);
    check_rev(&t, &m, b"com.example/page00150", 50);
    check_rev(&t, &m, b"org.kernel/page00000", 5);
}

#[test]
fn reverse_with_binary_keys() {
    let keys: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x00],
        vec![0x00, 0x00],
        b"ABCDEFG".to_vec(),
        b"ABCDEFG\0".to_vec(),
        b"ABCDEFGH".to_vec(),
        b"ABCDEFGHI".to_vec(),
        vec![0xff; 9],
        [vec![0x41; 8], vec![0x00], vec![0x42; 3]].concat(),
    ];
    let (t, m) = build(&keys);
    check_rev(&t, &m, &[0xff; 12], 100);
    check_rev(&t, &m, b"ABCDEFGH", 100);
    check_rev(&t, &m, b"ABCDEFG\0", 2);
    check_rev(&t, &m, &[], 5);
}

#[test]
fn reverse_scan_early_stop() {
    let keys = decimal_keys(2_000, 3);
    let (t, _) = build(&keys);
    let g = masstree::pin();
    let mut seen = 0;
    let visited = t.scan_rev(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff", &g, |_, _| {
        seen += 1;
        seen < 10
    });
    assert_eq!(visited, 10);
}

#[test]
fn reverse_scan_during_concurrent_inserts_stays_sorted() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let t = Arc::new(Masstree::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    {
        let g = masstree::pin();
        for i in 0..3_000u64 {
            t.put(format!("base{i:06}").as_bytes(), i, &g);
        }
    }
    // Scale contention to the machine (spinning writers starve the
    // scanner on small containers), re-pin periodically so epoch
    // reclamation keeps up, and wrap the keyspace so the tree stays
    // bounded while scans race inserts *and* updates.
    let writers_n = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .saturating_sub(1)
        .clamp(1, 4);
    std::thread::scope(|s| {
        for w in 0..writers_n {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = masstree::pin();
                    for _ in 0..1024 {
                        t.put(format!("new{w}/{:08}", i % 100_000).as_bytes(), i, &g);
                        i += 1;
                    }
                    drop(g);
                    std::thread::yield_now();
                }
            });
        }
        for _ in 0..10 {
            let g = masstree::pin();
            let mut prev: Option<Vec<u8>> = None;
            let mut base_seen = 0;
            t.scan_rev(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff", &g, |k, _| {
                if let Some(p) = &prev {
                    assert!(p.as_slice() > k, "reverse scan out of order");
                }
                if k.starts_with(b"base") {
                    base_seen += 1;
                }
                prev = Some(k.to_vec());
                true
            });
            assert_eq!(base_seen, 3_000, "pre-inserted keys never lost");
        }
        stop.store(true, Ordering::Relaxed);
    });
}
