//! Integration tests for the hinted-entry API (`hint.rs`): equivalence
//! with plain lookups, hinted batch lookups, and hint validation across
//! node deletion and slab reuse.

use masstree::hint::{HintResult, HintedGet};
use masstree::{LeafHint, Masstree};

#[test]
fn hinted_gets_match_plain_gets_across_workload() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..5_000u64 {
        tree.put(format!("key{i:06}").as_bytes(), i, &g);
    }
    // Capture hints for a mix of present and absent keys, then mutate
    // the tree heavily and re-check every hinted answer against get.
    let probes: Vec<Vec<u8>> = (0..2_000u64)
        .map(|i| format!("key{:06}", i * 7 % 6_000).into_bytes())
        .collect();
    let mut hints: Vec<LeafHint<u64>> = probes
        .iter()
        .map(|k| tree.get_capturing_hint(k, &g).1)
        .collect();
    for round in 0..4u64 {
        // Mutations: updates, inserts (splits), removes.
        for i in 0..3_000u64 {
            let j = (i * 13 + round * 97) % 7_000;
            if j % 5 == 0 {
                tree.remove(format!("key{j:06}").as_bytes(), &g);
            } else {
                tree.put(format!("key{j:06}").as_bytes(), j + round * 1_000_000, &g);
            }
        }
        let mut hits = 0usize;
        let mut stale = 0usize;
        for (k, h) in probes.iter().zip(hints.iter_mut()) {
            let expect = tree.get(k, &g).copied();
            match tree.get_at_hint(k, h, &g) {
                HintedGet::Hit(v) => {
                    hits += 1;
                    assert_eq!(v.copied(), expect, "hinted read diverged for {k:?}");
                }
                HintedGet::Stale => {
                    stale += 1;
                    let (v, fresh) = tree.get_capturing_hint(k, &g);
                    assert_eq!(v.copied(), expect);
                    *h = fresh;
                }
            }
        }
        assert!(hits + stale == probes.len());
    }
}

#[test]
fn multi_get_hinted_matches_multi_get() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..3_000u64 {
        tree.put(format!("mk{i:05}").as_bytes(), i, &g);
    }
    let keys: Vec<Vec<u8>> = (0..600u64)
        .map(|i| format!("mk{:05}", i * 11 % 3_500).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

    // First pass: no hints; everything refreshes.
    let empty: Vec<Option<LeafHint<u64>>> = vec![None; refs.len()];
    let mut hints: Vec<Option<LeafHint<u64>>> = vec![None; refs.len()];
    let mut seen = Vec::new();
    tree.multi_get_hinted(&refs, &empty, &g, |i, v, fate| {
        seen.push((i, v.copied()));
        if let HintResult::Refreshed(h) = fate {
            hints[i] = Some(h);
        }
    });
    assert_eq!(seen.len(), refs.len());
    for (pos, (i, v)) in seen.iter().enumerate() {
        assert_eq!(pos, *i, "visited in input order");
        assert_eq!(*v, tree.get(&keys[pos], &g).copied());
    }
    assert!(hints.iter().all(|h| h.is_some()), "every miss refreshed");

    // Second pass: all hinted; on an unchanged tree every key hits.
    let mut hits = 0usize;
    let snapshot = hints.clone();
    tree.multi_get_hinted(&refs, &snapshot, &g, |i, v, fate| {
        assert_eq!(v.copied(), tree.get(&keys[i], &g).copied());
        if matches!(fate, HintResult::Hit) {
            hits += 1;
        }
    });
    assert_eq!(hits, refs.len(), "unchanged tree: all hints validate");

    // Third pass after heavy mutation: still equivalent, mixed fates.
    for i in 0..4_000u64 {
        tree.put(format!("mk{i:05}").as_bytes(), i + 50_000, &g);
    }
    tree.multi_get_hinted(&refs, &snapshot, &g, |i, v, _| {
        assert_eq!(v.copied(), tree.get(&keys[i], &g).copied());
    });
}

#[test]
fn hints_survive_node_deletion_and_slab_reuse() {
    // Delete enough nodes that their slab memory is recycled into new
    // nodes, then replay old hints: every answer must be Stale or the
    // (correct) live value — never garbage and never a stale value.
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let key = |i: u64| format!("reuse{i:06}").into_bytes();
    for i in 0..4_000u64 {
        tree.put(&key(i), i, &g);
    }
    let probes: Vec<u64> = (0..4_000).step_by(17).collect();
    let hints: Vec<LeafHint<u64>> = probes
        .iter()
        .map(|&i| tree.get_capturing_hint(&key(i), &g).1)
        .collect();
    // Empty out most of the tree (forcing border-node deletions), drain
    // the epoch, then grow a different key population so freed nodes are
    // recycled.
    for i in 0..4_000u64 {
        tree.remove(&key(i), &g);
    }
    drop(g);
    for _ in 0..64 {
        // Fresh pins advance the epoch so deferred frees run.
        let g = masstree::pin();
        g.flush();
    }
    let g = masstree::pin();
    for i in 0..4_000u64 {
        tree.put(format!("fresh{i:06}").as_bytes(), i, &g);
    }
    let mut stale = 0usize;
    for (&i, h) in probes.iter().zip(&hints) {
        match tree.get_at_hint(&key(i), h, &g) {
            HintedGet::Stale => stale += 1,
            HintedGet::Hit(v) => {
                // Only acceptable if it proves the live (absent) state.
                assert_eq!(v.copied(), tree.get(&key(i), &g).copied());
            }
        }
    }
    assert!(stale > 0, "deleted/recycled nodes must invalidate hints");
}

// ---- hinted writes (validated-anchor entry for put/remove) ----

#[test]
fn put_at_hint_updates_inserts_and_converts_layers() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    tree.put(b"wh-alpha", 1, &g);
    let (_, hint) = tree.get_capturing_hint(b"wh-alpha", &g);

    // Update through the anchor.
    let (prev, _fresh) = tree
        .put_at_hint(b"wh-alpha", &hint, |old| old.copied().unwrap_or(0) + 10, &g)
        .expect("fresh anchor must validate");
    assert_eq!(prev.copied(), Some(1));
    assert_eq!(tree.get(b"wh-alpha", &g).copied(), Some(11));

    // Insert a brand-new key through an absent-key anchor.
    let (miss, hint2) = tree.get_capturing_hint(b"wh-beta", &g);
    assert!(miss.is_none());
    let (prev, fresh) = tree
        .put_at_hint(b"wh-beta", &hint2, |_| 77, &g)
        .expect("anchor insert");
    assert!(prev.is_none());
    // An anchored insert hands back a replacement anchor (the insert
    // may have staled the one it used) — and it serves reads.
    let fresh = fresh.expect("non-split completion captures an anchor");
    match tree.get_at_hint(b"wh-beta", &fresh, &g) {
        HintedGet::Hit(v) => assert_eq!(v.copied(), Some(77)),
        HintedGet::Stale => panic!("fresh post-insert anchor must validate"),
    }
    assert_eq!(tree.get(b"wh-beta", &g).copied(), Some(77));

    // A colliding suffix forces a layer conversion underneath the
    // anchored node; the hinted put must follow it down.
    tree.put(b"collision-prefix-A", 1, &g);
    let (_, hint3) = tree.get_capturing_hint(b"collision-prefix-A", &g);
    let (prev, _fresh) = tree
        .put_at_hint(b"collision-prefix-B", &hint3, |_| 2, &g)
        .expect("layer conversion through anchor");
    assert!(prev.is_none());
    assert_eq!(tree.get(b"collision-prefix-A", &g).copied(), Some(1));
    assert_eq!(tree.get(b"collision-prefix-B", &g).copied(), Some(2));
}

#[test]
fn put_at_hint_splits_full_nodes_correctly() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    // Fill one border node, then keep inserting through a (refreshing)
    // hint so anchored writes drive the splits themselves.
    tree.put(b"sp0000", 0, &g);
    let (_, mut hint) = tree.get_capturing_hint(b"sp0000", &g);
    for i in 1..500u64 {
        let k = format!("sp{i:04}");
        match tree.put_at_hint(k.as_bytes(), &hint, |_| i, &g) {
            Ok((prev, fresh)) => {
                assert!(prev.is_none(), "fresh key");
                if let Some(h) = fresh {
                    hint = h;
                }
            }
            Err(_) => {
                let (prev, fresh) = tree.put_with_capture(k.as_bytes(), |_| i, &g);
                assert!(prev.is_none());
                if let Some(h) = fresh {
                    hint = h;
                }
            }
        }
    }
    for i in 0..500u64 {
        assert_eq!(
            tree.get(format!("sp{i:04}").as_bytes(), &g).copied(),
            Some(i),
            "key sp{i:04} after anchored splits"
        );
    }
}

#[test]
fn remove_at_hint_matches_plain_remove() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..200u64 {
        tree.put(format!("rm{i:04}").as_bytes(), i, &g);
    }
    for i in (0..200u64).step_by(2) {
        let k = format!("rm{i:04}");
        let (_, hint) = tree.get_capturing_hint(k.as_bytes(), &g);
        match tree.remove_at_hint(k.as_bytes(), &hint, |v| *v, &g) {
            Ok(Some((v, hooked))) => {
                assert_eq!(*v, i);
                assert_eq!(hooked, i, "hook ran under the lock on the live value");
            }
            Ok(None) => panic!("key {k} was present"),
            Err(_) => {
                assert!(tree.remove(k.as_bytes(), &g).is_some());
            }
        }
        // Removing an absent key through a (now stale-ish) anchor
        // reports absence, never a phantom.
        match tree.remove_at_hint(k.as_bytes(), &hint, |v| *v, &g) {
            Ok(removed) => assert!(removed.is_none(), "double remove must be absent"),
            Err(_) => assert!(tree.remove(k.as_bytes(), &g).is_none()),
        }
    }
    for i in 0..200u64 {
        let expect = if i % 2 == 0 { None } else { Some(i) };
        assert_eq!(
            tree.get(format!("rm{i:04}").as_bytes(), &g).copied(),
            expect
        );
    }
}

#[test]
fn stale_write_anchor_is_rejected_after_node_deletion() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    // Two nodes' worth of keys; capture an anchor in the right node,
    // then empty it so the node is deleted.
    for i in 0..32u64 {
        tree.put(format!("del{i:04}").as_bytes(), i, &g);
    }
    let (_, hint) = tree.get_capturing_hint(b"del0030", &g);
    for i in 16..32u64 {
        tree.remove(format!("del{i:04}").as_bytes(), &g);
    }
    // The anchored node may now be deleted; the hinted write must either
    // refuse (Stale) or — if the anchor still names a live node — land
    // the write where a descent would.
    match tree.put_at_hint(b"del0030", &hint, |_| 999, &g) {
        Ok(_) => assert_eq!(tree.get(b"del0030", &g).copied(), Some(999)),
        Err(_) => assert_eq!(tree.get(b"del0030", &g), None),
    }
}

#[test]
fn multi_put_hinted_matches_multi_put() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let keys: Vec<Vec<u8>> = (0..300u64)
        .map(|i| format!("mp{i:04}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    tree.multi_put(&refs, (0..300u64).collect(), &g);

    // Capture hints for every key, then batch-update through them.
    let hints: Vec<Option<LeafHint<u64>>> = refs
        .iter()
        .map(|k| Some(tree.get_capturing_hint(k, &g).1))
        .collect();
    let mut hinted_hits = 0usize;
    let mut refreshed = 0usize;
    let prev = tree.multi_put_hinted(
        &refs,
        &hints,
        |_i, old| old.copied().unwrap_or(0) + 1000,
        &g,
        |_, hit, fresh| {
            hinted_hits += hit as usize;
            refreshed += fresh.is_some() as usize;
        },
    );
    for (i, p) in prev.iter().enumerate() {
        assert_eq!(p.copied(), Some(i as u64), "previous value per op");
    }
    for (i, k) in refs.iter().enumerate() {
        assert_eq!(tree.get(k, &g).copied(), Some(i as u64 + 1000));
    }
    assert!(hinted_hits > 0, "fresh hints must serve batched writes");

    // Unhinted batch through the same API equals multi_put_with.
    let none: Vec<Option<LeafHint<u64>>> = vec![None; refs.len()];
    let mut engine_refreshed = 0usize;
    tree.multi_put_hinted(
        &refs,
        &none,
        |_, old| old.copied().unwrap_or(0) + 1,
        &g,
        |_, hit, fresh| {
            assert!(!hit);
            engine_refreshed += fresh.is_some() as usize;
        },
    );
    assert!(engine_refreshed > 0, "engine captures anchors for misses");
    for (i, k) in refs.iter().enumerate() {
        assert_eq!(tree.get(k, &g).copied(), Some(i as u64 + 1001));
    }
}

#[test]
fn write_captured_hints_serve_reads_and_writes() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..50u64 {
        tree.put(format!("wc{i:03}").as_bytes(), i, &g);
    }
    let (_, hint) = tree.put_with_capture(b"wc025", |_| 25, &g);
    let hint = hint.expect("live completion node");
    // Read through the write-captured anchor.
    match tree.get_at_hint(b"wc025", &hint, &g) {
        HintedGet::Hit(v) => assert_eq!(v.copied(), Some(25)),
        HintedGet::Stale => panic!("fresh write anchor must serve reads"),
    }
    // Write through it again.
    tree.put_at_hint(b"wc025", &hint, |_| 26, &g)
        .expect("fresh write anchor must serve writes");
    assert_eq!(tree.get(b"wc025", &g).copied(), Some(26));
}
