//! Integration tests for the hinted-entry API (`hint.rs`): equivalence
//! with plain lookups, hinted batch lookups, and hint validation across
//! node deletion and slab reuse.

use masstree::hint::{HintResult, HintedGet};
use masstree::{LeafHint, Masstree};

#[test]
fn hinted_gets_match_plain_gets_across_workload() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..5_000u64 {
        tree.put(format!("key{i:06}").as_bytes(), i, &g);
    }
    // Capture hints for a mix of present and absent keys, then mutate
    // the tree heavily and re-check every hinted answer against get.
    let probes: Vec<Vec<u8>> = (0..2_000u64)
        .map(|i| format!("key{:06}", i * 7 % 6_000).into_bytes())
        .collect();
    let mut hints: Vec<LeafHint<u64>> = probes
        .iter()
        .map(|k| tree.get_capturing_hint(k, &g).1)
        .collect();
    for round in 0..4u64 {
        // Mutations: updates, inserts (splits), removes.
        for i in 0..3_000u64 {
            let j = (i * 13 + round * 97) % 7_000;
            if j % 5 == 0 {
                tree.remove(format!("key{j:06}").as_bytes(), &g);
            } else {
                tree.put(format!("key{j:06}").as_bytes(), j + round * 1_000_000, &g);
            }
        }
        let mut hits = 0usize;
        let mut stale = 0usize;
        for (k, h) in probes.iter().zip(hints.iter_mut()) {
            let expect = tree.get(k, &g).copied();
            match tree.get_at_hint(k, h, &g) {
                HintedGet::Hit(v) => {
                    hits += 1;
                    assert_eq!(v.copied(), expect, "hinted read diverged for {k:?}");
                }
                HintedGet::Stale => {
                    stale += 1;
                    let (v, fresh) = tree.get_capturing_hint(k, &g);
                    assert_eq!(v.copied(), expect);
                    *h = fresh;
                }
            }
        }
        assert!(hits + stale == probes.len());
    }
}

#[test]
fn multi_get_hinted_matches_multi_get() {
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    for i in 0..3_000u64 {
        tree.put(format!("mk{i:05}").as_bytes(), i, &g);
    }
    let keys: Vec<Vec<u8>> = (0..600u64)
        .map(|i| format!("mk{:05}", i * 11 % 3_500).into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

    // First pass: no hints; everything refreshes.
    let empty: Vec<Option<LeafHint<u64>>> = vec![None; refs.len()];
    let mut hints: Vec<Option<LeafHint<u64>>> = vec![None; refs.len()];
    let mut seen = Vec::new();
    tree.multi_get_hinted(&refs, &empty, &g, |i, v, fate| {
        seen.push((i, v.copied()));
        if let HintResult::Refreshed(h) = fate {
            hints[i] = Some(h);
        }
    });
    assert_eq!(seen.len(), refs.len());
    for (pos, (i, v)) in seen.iter().enumerate() {
        assert_eq!(pos, *i, "visited in input order");
        assert_eq!(*v, tree.get(&keys[pos], &g).copied());
    }
    assert!(hints.iter().all(|h| h.is_some()), "every miss refreshed");

    // Second pass: all hinted; on an unchanged tree every key hits.
    let mut hits = 0usize;
    let snapshot = hints.clone();
    tree.multi_get_hinted(&refs, &snapshot, &g, |i, v, fate| {
        assert_eq!(v.copied(), tree.get(&keys[i], &g).copied());
        if matches!(fate, HintResult::Hit) {
            hits += 1;
        }
    });
    assert_eq!(hits, refs.len(), "unchanged tree: all hints validate");

    // Third pass after heavy mutation: still equivalent, mixed fates.
    for i in 0..4_000u64 {
        tree.put(format!("mk{i:05}").as_bytes(), i + 50_000, &g);
    }
    tree.multi_get_hinted(&refs, &snapshot, &g, |i, v, _| {
        assert_eq!(v.copied(), tree.get(&keys[i], &g).copied());
    });
}

#[test]
fn hints_survive_node_deletion_and_slab_reuse() {
    // Delete enough nodes that their slab memory is recycled into new
    // nodes, then replay old hints: every answer must be Stale or the
    // (correct) live value — never garbage and never a stale value.
    let tree: Masstree<u64> = Masstree::new();
    let g = masstree::pin();
    let key = |i: u64| format!("reuse{i:06}").into_bytes();
    for i in 0..4_000u64 {
        tree.put(&key(i), i, &g);
    }
    let probes: Vec<u64> = (0..4_000).step_by(17).collect();
    let hints: Vec<LeafHint<u64>> = probes
        .iter()
        .map(|&i| tree.get_capturing_hint(&key(i), &g).1)
        .collect();
    // Empty out most of the tree (forcing border-node deletions), drain
    // the epoch, then grow a different key population so freed nodes are
    // recycled.
    for i in 0..4_000u64 {
        tree.remove(&key(i), &g);
    }
    drop(g);
    for _ in 0..64 {
        // Fresh pins advance the epoch so deferred frees run.
        let g = masstree::pin();
        g.flush();
    }
    let g = masstree::pin();
    for i in 0..4_000u64 {
        tree.put(format!("fresh{i:06}").as_bytes(), i, &g);
    }
    let mut stale = 0usize;
    for (&i, h) in probes.iter().zip(&hints) {
        match tree.get_at_hint(&key(i), h, &g) {
            HintedGet::Stale => stale += 1,
            HintedGet::Hit(v) => {
                // Only acceptable if it proves the live (absent) state.
                assert_eq!(v.copied(), tree.get(&key(i), &g).copied());
            }
        }
    }
    assert!(stale > 0, "deleted/recycled nodes must invalidate hints");
}
