//! Equivalence properties for the zero-copy read path: the scratch-based
//! visitor scans and the batched borrowed lookups must observe exactly
//! what the owning/collected APIs observe, over adversarial key shapes
//! (binary keys, slice collisions, deep trie layers) and arbitrary scan
//! bounds — including scratch reuse across many scans.
//!
//! Deterministic seeded PRNG, same rationale as `properties.rs`.

use std::collections::BTreeMap;

use masstree::{Masstree, ScanScratch};
use mtworkload::Rng64 as Rng;

const CASES: u64 = 32;

/// Key generator biased toward collisions (mirrors `properties.rs`).
fn gen_key(rng: &mut Rng) -> Vec<u8> {
    match rng.below(3) {
        0 => {
            let len = rng.below(20) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        }
        1 => {
            let len = rng.below(24) as usize;
            (0..len)
                .map(|_| [b'a', b'b', 0u8][rng.below(3) as usize])
                .collect()
        }
        _ => {
            let mut k = b"sharedprefix0123sharedprefix0123".to_vec();
            let len = rng.below(6) as usize;
            k.extend((0..len).map(|_| rng.next_u64() as u8));
            k
        }
    }
}

fn build_case(seed: u64) -> (Masstree<u64>, BTreeMap<Vec<u8>, u64>, Rng) {
    let mut rng = Rng::new(seed);
    let tree: Masstree<u64> = Masstree::new();
    let mut model = BTreeMap::new();
    let g = masstree::pin();
    for _ in 0..400 {
        let k = gen_key(&mut rng);
        let v = rng.next_u64();
        tree.put(&k, v, &g);
        model.insert(k, v);
    }
    (tree, model, rng)
}

#[test]
fn visitor_scan_with_reused_scratch_matches_collected_scan() {
    for seed in 0..CASES {
        let (tree, model, mut rng) = build_case(1000 + seed);
        let g = masstree::pin();
        // One scratch reused across every bound in the case: stale state
        // from a previous scan must never leak into the next.
        let mut scratch = ScanScratch::new();
        for _ in 0..16 {
            let start = gen_key(&mut rng);
            let limit = 1 + rng.below(30) as usize;
            // Ground truth from the model.
            let expect: Vec<(Vec<u8>, u64)> = model
                .range(start.clone()..)
                .take(limit)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            // Collected owning API.
            let collected: Vec<(Vec<u8>, u64)> = tree
                .get_range(&start, limit, &g)
                .into_iter()
                .map(|(k, v)| (k, *v))
                .collect();
            // Visitor API with the reused scratch.
            let mut visited: Vec<(Vec<u8>, u64)> = Vec::new();
            tree.scan_with(&start, &mut scratch, &g, |k, v| {
                visited.push((k.to_vec(), *v));
                visited.len() < limit
            });
            assert_eq!(collected, expect, "seed {seed}");
            assert_eq!(visited, expect, "seed {seed}");
        }
    }
}

#[test]
fn reverse_visitor_scan_matches_collected_scan() {
    for seed in 0..CASES {
        let (tree, model, mut rng) = build_case(2000 + seed);
        let g = masstree::pin();
        let mut scratch = ScanScratch::new();
        for _ in 0..16 {
            let start = gen_key(&mut rng);
            let limit = 1 + rng.below(30) as usize;
            let expect: Vec<(Vec<u8>, u64)> = model
                .range(..=start.clone())
                .rev()
                .take(limit)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let collected: Vec<(Vec<u8>, u64)> = tree
                .get_range_rev(&start, limit, &g)
                .into_iter()
                .map(|(k, v)| (k, *v))
                .collect();
            let mut visited: Vec<(Vec<u8>, u64)> = Vec::new();
            tree.scan_rev_with(&start, &mut scratch, &g, |k, v| {
                visited.push((k.to_vec(), *v));
                visited.len() < limit
            });
            assert_eq!(collected, expect, "seed {seed}");
            assert_eq!(visited, expect, "seed {seed}");
        }
    }
}

#[test]
fn forward_and_reverse_scratch_share_safely() {
    // Interleaving forward and reverse scans through one scratch must
    // not corrupt either direction's bounds.
    let (tree, model, _) = build_case(31337);
    let g = masstree::pin();
    let mut scratch = ScanScratch::new();
    let mut fwd = Vec::new();
    tree.scan_with(b"", &mut scratch, &g, |k, v| {
        fwd.push((k.to_vec(), *v));
        true
    });
    let mut rev = Vec::new();
    tree.scan_rev_with(&[0xff; 40], &mut scratch, &g, |k, v| {
        rev.push((k.to_vec(), *v));
        true
    });
    let expect_fwd: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let expect_rev: Vec<(Vec<u8>, u64)> =
        model.iter().rev().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(fwd, expect_fwd);
    assert_eq!(rev, expect_rev);
}

#[test]
fn borrowed_multi_get_matches_sequential_get() {
    for seed in 0..CASES {
        let (tree, model, mut rng) = build_case(3000 + seed);
        let g = masstree::pin();
        // Mix of present and absent keys, above and below MAX_GROUP.
        for batch_len in [1usize, 2, 7, 32, 33, 70] {
            let keys: Vec<Vec<u8>> = (0..batch_len).map(|_| gen_key(&mut rng)).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let mut seen = 0usize;
            tree.multi_get_with(&refs, &g, |i, hit| {
                assert_eq!(i, seen, "in input order");
                seen += 1;
                assert_eq!(hit.copied(), model.get(&keys[i]).copied(), "seed {seed}");
                assert_eq!(hit.copied(), tree.get(&keys[i], &g).copied());
            });
            assert_eq!(seen, batch_len);
        }
    }
}
