//! Value-lifetime test: every value is dropped exactly once, whether it
//! was overwritten, removed, or still live at tree teardown. Runs in its
//! own test binary so other tests' epoch guards cannot delay reclamation.

use std::sync::atomic::{AtomicUsize, Ordering};

use masstree::Masstree;

static DROPS: AtomicUsize = AtomicUsize::new(0);

struct Counted(#[allow(dead_code)] u64);

impl Drop for Counted {
    fn drop(&mut self) {
        DROPS.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn values_are_dropped_exactly_once() {
    {
        let t: Masstree<Counted> = Masstree::new();
        let g = masstree::pin();
        for i in 0..1000u64 {
            t.put(format!("key{i:06}").as_bytes(), Counted(i), &g);
        }
        // 200 updates (drop the old value), 200 removes (drop the removed
        // value): 400 deferred destructions plus 800 live at teardown.
        for i in 0..200u64 {
            t.put(format!("key{i:06}").as_bytes(), Counted(i + 1), &g);
        }
        for i in 200..400u64 {
            t.remove(format!("key{i:06}").as_bytes(), &g);
        }
        drop(g);
    }
    // Drive the collector until all deferred destructors have run.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while DROPS.load(Ordering::Relaxed) < 1200 && std::time::Instant::now() < deadline {
        masstree::pin().flush();
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), 1200);
}
