//! Property-based tests: pseudo-random operation sequences against a
//! model, arbitrary binary keys (including embedded NULs and shared
//! prefixes), and permutation/version algebra.
//!
//! The generators are driven by a seeded splitmix64 PRNG rather than an
//! external property-testing crate (the build environment is offline), so
//! every run exercises the same deterministic case set; bump `CASES` or
//! add seeds to widen coverage.

use std::collections::{BTreeMap, BTreeSet};

use masstree::permutation::{Permutation, WIDTH};
use masstree::Masstree;

const CASES: u64 = 64;

use mtworkload::Rng64 as Rng;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, u64),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Range(Vec<u8>, usize),
}

/// Key generator biased toward collisions: short alphabets and a fixed
/// long prefix so slices, suffixes and layers all get exercised.
fn gen_key(rng: &mut Rng) -> Vec<u8> {
    match rng.below(3) {
        // Arbitrary short binary keys.
        0 => {
            let len = rng.below(20) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        }
        // Low-entropy keys: lots of slice collisions.
        1 => {
            let len = rng.below(24) as usize;
            (0..len)
                .map(|_| [b'a', b'b', 0u8][rng.below(3) as usize])
                .collect()
        }
        // Fixed long prefix + short tail: forces layering.
        _ => {
            let mut k = b"sharedprefix0123sharedprefix0123".to_vec();
            let len = rng.below(6) as usize;
            k.extend((0..len).map(|_| rng.next_u64() as u8));
            k
        }
    }
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 => Op::Put(gen_key(rng), rng.next_u64()),
        1 => Op::Remove(gen_key(rng)),
        2 => Op::Get(gen_key(rng)),
        _ => Op::Range(gen_key(rng), rng.below(20) as usize),
    }
}

#[test]
fn tree_matches_model() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x7ee5 + case);
        let nops = 1 + rng.below(400) as usize;
        let ops: Vec<Op> = (0..nops).map(|_| gen_op(&mut rng)).collect();
        let mut tree: Masstree<u64> = Masstree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let g = masstree::pin();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let want = model.insert(k.clone(), *v);
                    let got = tree.put(k, *v, &g).copied();
                    assert_eq!(got, want, "case {case}");
                }
                Op::Remove(k) => {
                    let want = model.remove(k);
                    let got = tree.remove(k, &g).copied();
                    assert_eq!(got, want, "case {case}");
                }
                Op::Get(k) => {
                    let want = model.get(k).copied();
                    let got = tree.get(k, &g).copied();
                    assert_eq!(got, want, "case {case}");
                }
                Op::Range(k, n) => {
                    let got: Vec<(Vec<u8>, u64)> = tree
                        .get_range(k, *n, &g)
                        .into_iter()
                        .map(|(key, v)| (key, *v))
                        .collect();
                    let want: Vec<(Vec<u8>, u64)> = model
                        .range(k.clone()..)
                        .take(*n)
                        .map(|(key, v)| (key.clone(), *v))
                        .collect();
                    assert_eq!(got, want, "case {case}");
                }
            }
        }
        // Final state equivalence + structural invariants.
        let mut scanned = Vec::new();
        tree.scan(b"", &g, |k, v| {
            scanned.push((k.to_vec(), *v));
            true
        });
        let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(scanned, want, "case {case}");
        drop(g);
        let report = tree
            .validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(report.keys, model.len(), "case {case}");
    }
}

#[test]
fn maintain_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xa11c + case);
        let nops = 1 + rng.below(200) as usize;
        let ops: Vec<Op> = (0..nops).map(|_| gen_op(&mut rng)).collect();
        let mut tree: Masstree<u64> = Masstree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let g = masstree::pin();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put(k, v) => {
                    model.insert(k.clone(), *v);
                    tree.put(k, *v, &g);
                }
                Op::Remove(k) => {
                    model.remove(k);
                    tree.remove(k, &g);
                }
                _ => {}
            }
            if i % 50 == 25 {
                tree.maintain(&g);
            }
        }
        tree.maintain(&g);
        for (k, v) in &model {
            assert_eq!(tree.get(k, &g), Some(v), "case {case}");
        }
        assert_eq!(tree.count_keys(&g), model.len(), "case {case}");
        drop(g);
        tree.validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

#[test]
fn permutation_insert_remove_algebra() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9e47 + case);
        let steps = rng.below(64) as usize;
        let mut p = Permutation::empty();
        let mut live: Vec<usize> = Vec::new(); // model: slot per sorted pos
        for _ in 0..steps {
            let pos = rng.below(WIDTH as u64) as usize;
            let is_insert = rng.below(2) == 0;
            if is_insert && live.len() < WIDTH {
                let pos = pos.min(live.len());
                let (np, slot) = p.insert_from_back(pos);
                assert!(!live.contains(&slot), "fresh slot (case {case})");
                live.insert(pos, slot);
                p = np;
            } else if !live.is_empty() {
                let pos = pos % live.len();
                let (np, slot) = p.remove_at(pos);
                assert_eq!(live.remove(pos), slot, "case {case}");
                p = np;
            }
            assert!(p.is_valid(), "case {case}");
            assert_eq!(p.nkeys(), live.len(), "case {case}");
            let got: Vec<usize> = p.live_slots().collect();
            assert_eq!(&got, &live, "case {case}");
        }
    }
}

#[test]
fn slice_order_equals_byte_order() {
    use masstree::key::slice_at;
    let mut rng = Rng::new(0x51ce);
    for _ in 0..CASES * 64 {
        let a: Vec<u8> = (0..rng.below(16) as usize)
            .map(|_| rng.next_u64() as u8)
            .collect();
        let b: Vec<u8> = (0..rng.below(16) as usize)
            .map(|_| rng.next_u64() as u8)
            .collect();
        // For keys up to 8 bytes, integer order must match byte order
        // exactly (modulo length ties resolved by keylen).
        let (sa, sb) = (slice_at(&a, 0), slice_at(&b, 0));
        if sa < sb {
            // A shorter padded key can only sort below a longer one when
            // bytes differ; check byte order agrees on the first slice.
            let pa = &a[..a.len().min(8)];
            let pb = &b[..b.len().min(8)];
            assert!(pa <= pb, "slice order contradicts byte order");
        }
    }
}

#[test]
fn keys_survive_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6e15 + case);
        let mut keys: BTreeSet<Vec<u8>> = BTreeSet::new();
        let target = 1 + rng.below(80) as usize;
        while keys.len() < target {
            keys.insert(gen_key(&mut rng));
        }
        let mut tree: Masstree<u64> = Masstree::new();
        let g = masstree::pin();
        for (i, k) in keys.iter().enumerate() {
            tree.put(k, i as u64, &g);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(tree.get(k, &g), Some(&(i as u64)), "case {case}");
        }
        // Scan yields exactly the sorted key set.
        let mut got = Vec::new();
        tree.scan(b"", &g, |k, _| {
            got.push(k.to_vec());
            true
        });
        let want: Vec<Vec<u8>> = keys.iter().cloned().collect();
        assert_eq!(got, want, "case {case}");
        drop(g);
        tree.validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}
