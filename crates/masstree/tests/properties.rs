//! Property-based tests: arbitrary operation sequences against a model,
//! arbitrary binary keys (including embedded NULs and shared prefixes),
//! and permutation/version algebra.

use std::collections::BTreeMap;

use masstree::permutation::{Permutation, WIDTH};
use masstree::Masstree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, u64),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Range(Vec<u8>, usize),
}

/// Key strategy biased toward collisions: short alphabets and a few fixed
/// prefixes so slices, suffixes and layers all get exercised.
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary short binary keys.
        proptest::collection::vec(any::<u8>(), 0..20),
        // Low-entropy keys: lots of slice collisions.
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(0u8)], 0..24),
        // Fixed long prefix + short tail: forces layering.
        proptest::collection::vec(any::<u8>(), 0..6).prop_map(|tail| {
            let mut k = b"sharedprefix0123sharedprefix0123".to_vec();
            k.extend(tail);
            k
        }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Get),
        (key_strategy(), 0usize..20).prop_map(|(k, n)| Op::Range(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut tree: Masstree<u64> = Masstree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let g = masstree::pin();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let want = model.insert(k.clone(), *v);
                    let got = tree.put(k, *v, &g).copied();
                    prop_assert_eq!(got, want);
                }
                Op::Remove(k) => {
                    let want = model.remove(k);
                    let got = tree.remove(k, &g).copied();
                    prop_assert_eq!(got, want);
                }
                Op::Get(k) => {
                    let want = model.get(k).copied();
                    let got = tree.get(k, &g).copied();
                    prop_assert_eq!(got, want);
                }
                Op::Range(k, n) => {
                    let got: Vec<(Vec<u8>, u64)> = tree
                        .get_range(k, *n, &g)
                        .into_iter()
                        .map(|(key, v)| (key, *v))
                        .collect();
                    let want: Vec<(Vec<u8>, u64)> = model
                        .range(k.clone()..)
                        .take(*n)
                        .map(|(key, v)| (key.clone(), *v))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final state equivalence + structural invariants.
        let mut scanned = Vec::new();
        tree.scan(b"", &g, |k, v| { scanned.push((k.to_vec(), *v)); true });
        let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(scanned, want);
        drop(g);
        let report = tree.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(report.keys, model.len());
    }

    #[test]
    fn maintain_preserves_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut tree: Masstree<u64> = Masstree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let g = masstree::pin();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put(k, v) => { model.insert(k.clone(), *v); tree.put(k, *v, &g); }
                Op::Remove(k) => { model.remove(k); tree.remove(k, &g); }
                _ => {}
            }
            if i % 50 == 25 {
                tree.maintain(&g);
            }
        }
        tree.maintain(&g);
        for (k, v) in &model {
            prop_assert_eq!(tree.get(k, &g), Some(v));
        }
        prop_assert_eq!(tree.count_keys(&g), model.len());
        drop(g);
        tree.validate().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn permutation_insert_remove_algebra(
        positions in proptest::collection::vec((0usize..WIDTH, any::<bool>()), 0..64),
    ) {
        let mut p = Permutation::empty();
        let mut live: Vec<usize> = Vec::new(); // model: slot per sorted pos
        for (pos, is_insert) in positions {
            if is_insert && live.len() < WIDTH {
                let pos = pos.min(live.len());
                let (np, slot) = p.insert_from_back(pos);
                prop_assert!(!live.contains(&slot), "fresh slot");
                live.insert(pos, slot);
                p = np;
            } else if !live.is_empty() {
                let pos = pos % live.len();
                let (np, slot) = p.remove_at(pos);
                prop_assert_eq!(live.remove(pos), slot);
                p = np;
            }
            prop_assert!(p.is_valid());
            prop_assert_eq!(p.nkeys(), live.len());
            let got: Vec<usize> = p.live_slots().collect();
            prop_assert_eq!(&got, &live);
        }
    }

    #[test]
    fn slice_order_equals_byte_order(a in proptest::collection::vec(any::<u8>(), 0..16),
                                     b in proptest::collection::vec(any::<u8>(), 0..16)) {
        use masstree::key::slice_at;
        // For keys up to 8 bytes, integer order must match byte order
        // exactly (modulo length ties resolved by keylen).
        let (sa, sb) = (slice_at(&a, 0), slice_at(&b, 0));
        if sa < sb {
            // A shorter padded key can only sort below a longer one when
            // bytes differ; check byte order agrees on the first slice.
            let pa = &a[..a.len().min(8)];
            let pb = &b[..b.len().min(8)];
            prop_assert!(pa <= pb, "slice order contradicts byte order");
        }
    }

    #[test]
    fn keys_survive_roundtrip(keys in proptest::collection::btree_set(key_strategy(), 1..80)) {
        let mut tree: Masstree<u64> = Masstree::new();
        let g = masstree::pin();
        for (i, k) in keys.iter().enumerate() {
            tree.put(k, i as u64, &g);
        }
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(tree.get(k, &g), Some(&(i as u64)));
        }
        // Scan yields exactly the sorted key set.
        let mut got = Vec::new();
        tree.scan(b"", &g, |k, _| { got.push(k.to_vec()); true });
        let want: Vec<Vec<u8>> = keys.iter().cloned().collect();
        prop_assert_eq!(got, want);
        drop(g);
        tree.validate().map_err(TestCaseError::fail)?;
    }
}
