//! Concurrent stress tests for the OCC protocol: lock-free readers racing
//! structural writers, multi-thread inserts/removes/scans, and the paper's
//! "no lost keys" correctness condition (§4.4).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use masstree::Masstree;

fn decimal_key(v: u64) -> Vec<u8> {
    (v % 2_147_483_648).to_string().into_bytes()
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[test]
fn concurrent_disjoint_inserts() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let tree = Arc::new(Masstree::<u64>::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let g = masstree::pin();
                for i in 0..PER_THREAD {
                    let key = format!("t{t:02}i{i:08}");
                    assert_eq!(
                        tree.put(key.as_bytes(), (t * PER_THREAD + i) as u64, &g),
                        None
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let g = masstree::pin();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let key = format!("t{t:02}i{i:08}");
            assert_eq!(
                tree.get(key.as_bytes(), &g),
                Some(&((t * PER_THREAD + i) as u64)),
                "{key}"
            );
        }
    }
    drop(g);
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    let report = tree
        .validate()
        .expect("valid tree after concurrent inserts");
    assert_eq!(report.keys, THREADS * PER_THREAD);
}

#[test]
fn concurrent_overlapping_puts_last_writer_wins_shape() {
    // Multiple threads hammer the same small keyspace; afterwards every
    // key must hold a value some thread wrote for that key.
    const THREADS: usize = 8;
    const KEYS: u64 = 2_000;
    const OPS: usize = 30_000;
    let tree = Arc::new(Masstree::<(u64, u64)>::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let g = masstree::pin();
                for i in 0..OPS {
                    let k = mix64((t * OPS + i) as u64) % KEYS;
                    tree.put(&decimal_key(k), (k, t as u64), &g);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let g = masstree::pin();
    let mut seen = 0;
    for k in 0..KEYS {
        if let Some(&(vk, vt)) = tree.get(&decimal_key(k), &g) {
            assert_eq!(vk, k, "value belongs to its key (no torn writes)");
            assert!((vt as usize) < THREADS);
            seen += 1;
        }
    }
    assert!(seen > 0);
    drop(g);
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    tree.validate().expect("valid tree");
}

#[test]
fn no_lost_keys_under_concurrent_writers() {
    // The paper's correctness condition: a get(k) concurrent with puts of
    // *other* keys must find k once k's put completed.
    const WRITERS: usize = 6;
    const READERS: usize = 4;
    const MARKERS: u64 = 500;
    let tree = Arc::new(Masstree::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(AtomicUsize::new(0));

    // Pre-insert marker keys that must never disappear.
    {
        let g = masstree::pin();
        for m in 0..MARKERS {
            tree.put(format!("marker{m:06}").as_bytes(), m, &g);
        }
    }
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let inserted = Arc::clone(&inserted);
            thread::spawn(move || {
                let g = masstree::pin();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Churn around the markers: inserts and removes that
                    // force splits, node deletions and layer churn.
                    let k = format!("churn{t}/{:012}", mix64(i));
                    tree.put(k.as_bytes(), i, &g);
                    if i.is_multiple_of(3) {
                        tree.remove(k.as_bytes(), &g);
                    }
                    inserted.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = masstree::pin();
                    let m = mix64(checks + r as u64) % MARKERS;
                    let key = format!("marker{m:06}");
                    assert_eq!(
                        tree.get(key.as_bytes(), &g),
                        Some(&m),
                        "marker key lost under concurrent writes"
                    );
                    checks += 1;
                }
                checks
            })
        })
        .collect();
    thread::sleep(std::time::Duration::from_millis(1500));
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let mut total_checks = 0;
    for r in readers {
        total_checks += r.join().unwrap();
    }
    assert!(total_checks > 1000, "readers made progress: {total_checks}");
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    tree.validate().expect("valid tree after churn");
}

#[test]
fn concurrent_inserts_and_removes_disjoint_ranges() {
    // Each thread owns a key range: inserts everything, removes half.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let tree = Arc::new(Masstree::<u64>::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let g = masstree::pin();
                for i in 0..PER_THREAD {
                    let key = format!("r{t}k{i:08}");
                    tree.put(key.as_bytes(), i as u64, &g);
                }
                for i in (0..PER_THREAD).step_by(2) {
                    let key = format!("r{t}k{i:08}");
                    assert!(tree.remove(key.as_bytes(), &g).is_some());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let g = masstree::pin();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let key = format!("r{t}k{i:08}");
            let got = tree.get(key.as_bytes(), &g);
            if i % 2 == 0 {
                assert_eq!(got, None, "{key}");
            } else {
                assert_eq!(got, Some(&(i as u64)), "{key}");
            }
        }
    }
    drop(g);
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    let report = tree.validate().expect("valid tree");
    assert_eq!(report.keys, THREADS * PER_THREAD / 2);
}

#[test]
fn concurrent_layer_creation_shared_prefixes() {
    // Many threads insert keys sharing deep prefixes, racing on §4.6.3
    // layer creation at the same slots.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4_000;
    let tree = Arc::new(Masstree::<u64>::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let g = masstree::pin();
                for i in 0..PER_THREAD {
                    // 24-byte shared prefix then thread-unique tail.
                    let key = format!("shared/prefix/0123456789/t{t}i{i:06}");
                    tree.put(key.as_bytes(), (t * PER_THREAD + i) as u64, &g);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let g = masstree::pin();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let key = format!("shared/prefix/0123456789/t{t}i{i:06}");
            assert_eq!(
                tree.get(key.as_bytes(), &g),
                Some(&((t * PER_THREAD + i) as u64))
            );
        }
    }
    drop(g);
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    let report = tree.validate().expect("valid tree");
    assert_eq!(report.keys, THREADS * PER_THREAD);
    assert!(report.layers > 1, "layering happened");
}

#[test]
fn scans_stay_sorted_during_concurrent_inserts() {
    // Scale contention to the machine: on a single-core container, four
    // spinning writers starve the scanner for unbounded time.
    let writers_n = thread::available_parallelism()
        .map_or(2, |n| n.get())
        .saturating_sub(1)
        .clamp(1, 4);
    let tree = Arc::new(Masstree::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    {
        let g = masstree::pin();
        for i in 0..5_000u64 {
            tree.put(format!("base{i:08}").as_bytes(), i, &g);
        }
    }
    let writers: Vec<_> = (0..writers_n)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                // Re-pin periodically (a guard held across millions of
                // puts blocks epoch reclamation — see `masstree::pin`
                // docs) and wrap the keyspace so the tree stays bounded
                // while scans race inserts *and* updates.
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = masstree::pin();
                    for _ in 0..1024 {
                        let k = mix64(i % 200_000);
                        tree.put(format!("new{t}/{k:010}").as_bytes(), i, &g);
                        i += 1;
                    }
                    drop(g);
                    // Let the scanner run on low-core machines.
                    thread::yield_now();
                }
            })
        })
        .collect();
    // Scanners verify order + uniqueness + base-key completeness.
    for _ in 0..10 {
        let g = masstree::pin();
        let mut prev: Option<Vec<u8>> = None;
        let mut base_seen = 0;
        tree.scan(b"", &g, |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k, "scan out of order");
            }
            if k.starts_with(b"base") {
                base_seen += 1;
            }
            prev = Some(k.to_vec());
            true
        });
        assert_eq!(base_seen, 5_000, "pre-inserted keys never lost from scans");
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    tree.validate().expect("valid tree");
}

#[test]
fn maintain_races_with_writers() {
    // Layer GC runs while writers create and destroy layers.
    const WRITERS: usize = 4;
    let tree = Arc::new(Masstree::<u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let g = masstree::pin();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Same 16-byte prefix: constant layer churn.
                    let key = format!("LAYERPREFIX01234/t{t}/{:06}", mix64(i) % 500);
                    if i.is_multiple_of(2) {
                        tree.put(key.as_bytes(), i, &g);
                    } else {
                        tree.remove(key.as_bytes(), &g);
                    }
                    i += 1;
                }
            })
        })
        .collect();
    for _ in 0..50 {
        let g = masstree::pin();
        tree.maintain(&g);
        thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let g = masstree::pin();
    tree.maintain(&g);
    drop(g);
    let mut tree = Arc::try_unwrap(tree).ok().expect("sole owner");
    tree.validate().expect("valid tree after GC races");
}

#[test]
fn split_retries_are_rare() {
    // §4.6.4: under an 8-thread insert load, fewer than 1 in 10^6 lookups
    // had to retry from the root; local retries ~15× more common. We
    // assert the qualitative claim (root retries ≪ operations).
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25_000;
    let tree = Arc::new(Masstree::<u64>::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let g = masstree::pin();
                for i in 0..PER_THREAD {
                    let k = decimal_key(mix64((t * PER_THREAD + i) as u64));
                    tree.put(&k, i as u64, &g);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let ops = (THREADS * PER_THREAD) as f64;
    let snap = tree.stats().snapshot();
    let root_retry_rate = snap.descend_retries_root as f64 / ops;
    assert!(
        root_retry_rate < 0.01,
        "root retries should be rare: rate={root_retry_rate}, snap={snap:?}"
    );
}
