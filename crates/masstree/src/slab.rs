//! Slab allocation for tree nodes (§4.2 / §4.7: DRAM traffic is the
//! enemy, so node memory is recycled instead of round-tripping through
//! the general-purpose allocator).
//!
//! Nodes are served from cache-line-aligned **size-class slabs**: a
//! class per whole number of 64-byte lines, refilled by carving chunks
//! of [`CHUNK_NODES`] nodes from the system allocator. Each thread keeps
//! a small free list per class; `free` pushes locally and spills batches
//! to a global pool when the local list fills, `alloc` pops locally and
//! refills from the global pool, so nodes freed by one thread's epoch GC
//! are reused by every other thread. The hot put/split path therefore
//! touches no allocator locks at all, and recycled nodes come back
//! cache-warm with their lines already resident.
//!
//! Node memory never returns to the operating system: it cycles between
//! the per-thread lists and the global pool for the life of the process.
//! That is the classic slab trade — the working set of nodes is bounded
//! by the high-water mark of the tree, and reuse is what makes node
//! allocation O(1) and contention-free.
//!
//! Reclamation safety is unchanged from the `Box` days: a node reaches
//! [`free`] only through the epoch GC (`gc.rs`), after every reader that
//! could hold a reference has unpinned, so recycling its memory for a
//! new node cannot produce a use-after-free.

use core::alloc::Layout;
use std::alloc::{alloc, dealloc, handle_alloc_error};
use std::cell::RefCell;
use std::sync::Mutex;

/// Cache-line size all classes are aligned to.
const LINE: usize = 64;
/// Number of size classes: `class c` serves `(c + 1) * 64` bytes, so
/// classes cover 64 B ..= 1 KiB — comfortably past both node types.
const NUM_CLASSES: usize = 16;
/// Nodes carved from the system allocator per refill chunk.
const CHUNK_NODES: usize = 64;
/// Per-thread free-list cap per class; beyond it, a batch spills to the
/// global pool so cross-thread producer/consumer patterns don't hoard.
const LOCAL_MAX: usize = 256;
/// Nodes moved per local<->global exchange.
const TRANSFER: usize = 64;

#[inline]
fn class_of(layout: Layout) -> Option<usize> {
    if layout.align() > LINE || layout.size() == 0 {
        return None;
    }
    let lines = layout.size().div_ceil(LINE);
    (lines <= NUM_CLASSES).then(|| lines - 1)
}

#[inline]
fn class_size(class: usize) -> usize {
    (class + 1) * LINE
}

/// Global per-class overflow pools (uncontended except when a local
/// list spills or refills).
static GLOBAL: [Mutex<Vec<usize>>; NUM_CLASSES] = [const { Mutex::new(Vec::new()) }; NUM_CLASSES];

/// Per-thread free lists. On thread exit the remaining nodes flush to
/// the global pool so nothing strands.
struct LocalLists([Vec<usize>; NUM_CLASSES]);

impl Drop for LocalLists {
    fn drop(&mut self) {
        for (class, list) in self.0.iter_mut().enumerate() {
            if !list.is_empty() {
                GLOBAL[class].lock().unwrap().append(list);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalLists> =
        RefCell::new(LocalLists(std::array::from_fn(|_| Vec::new())));
}

/// Carves a fresh chunk for `class`, pushing all but one node onto
/// `spare` and returning the remaining node.
fn carve(class: usize, spare: &mut Vec<usize>) -> usize {
    let size = class_size(class);
    let layout =
        Layout::from_size_align(size * CHUNK_NODES, LINE).expect("slab chunk layout overflow");
    // SAFETY: the layout has non-zero size.
    let base = unsafe { alloc(layout) };
    if base.is_null() {
        handle_alloc_error(layout);
    }
    spare.reserve(CHUNK_NODES - 1);
    for i in 1..CHUNK_NODES {
        spare.push(base as usize + i * size);
    }
    base as usize
}

/// Slow path used when thread-local storage is unavailable (a deferred
/// destructor running during thread teardown): go straight to the
/// global pool. The second element reports whether the memory is fresh
/// (see [`alloc_node`]).
fn alloc_global(class: usize) -> (usize, bool) {
    let mut pool = GLOBAL[class].lock().unwrap();
    match pool.pop() {
        Some(p) => (p, false),
        None => {
            let mut spare = Vec::new();
            let p = carve(class, &mut spare);
            pool.append(&mut spare);
            (p, true)
        }
    }
}

/// Allocates node memory for `layout`. Layouts outside the class range
/// fall back to the system allocator.
///
/// Returns the pointer and whether the memory is **fresh** (just carved
/// from the system allocator, never a node before) or **recycled** (a
/// previously freed node of the same size class). The distinction
/// matters to hinted readers (`hint.rs`): recycled memory may still be
/// concurrently *read* through a stale [`crate::hint::NodeRef`], so its
/// reinitialization must use atomic stores, while fresh memory has never
/// been published and can be written plainly.
pub(crate) fn alloc_node(layout: Layout) -> (*mut u8, bool) {
    let Some(class) = class_of(layout) else {
        // SAFETY: non-zero size guaranteed by the node types.
        let p = unsafe { alloc(layout) };
        if p.is_null() {
            handle_alloc_error(layout);
        }
        return (p, true);
    };
    let (addr, fresh) = LOCAL
        .try_with(|l| {
            let mut lists = l.borrow_mut();
            let list = &mut lists.0[class];
            if let Some(p) = list.pop() {
                return (p, false);
            }
            // Refill from the global pool before carving fresh memory.
            {
                let mut pool = GLOBAL[class].lock().unwrap();
                let take = pool.len().min(TRANSFER);
                if take > 0 {
                    let at = pool.len() - take;
                    list.extend(pool.drain(at..));
                }
            }
            match list.pop() {
                Some(p) => (p, false),
                None => (carve(class, list), true),
            }
        })
        .unwrap_or_else(|_| alloc_global(class));
    (addr as *mut u8, fresh)
}

/// Returns node memory to the slab. `layout` must be the layout passed
/// to the matching [`alloc_node`] call.
///
/// # Safety
///
/// `p` must have come from [`alloc_node`] with this `layout`, must be
/// unreachable, and must not be freed twice.
pub(crate) unsafe fn free_node(p: *mut u8, layout: Layout) {
    let Some(class) = class_of(layout) else {
        // SAFETY: per caller contract, `p` came from the fallback
        // system-allocator path with this layout.
        unsafe { dealloc(p, layout) };
        return;
    };
    let addr = p as usize;
    let pushed_local = LOCAL
        .try_with(|l| {
            let mut lists = l.borrow_mut();
            let list = &mut lists.0[class];
            list.push(addr);
            if list.len() > LOCAL_MAX {
                // Spill from the *front*: the list is LIFO, so the front
                // holds the coldest nodes — ship those to the global
                // pool and keep the recently freed (cache-warm) ones for
                // this thread's next alloc.
                GLOBAL[class].lock().unwrap().extend(list.drain(..TRANSFER));
            }
        })
        .is_ok();
    if !pushed_local {
        GLOBAL[class].lock().unwrap().push(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_class_reuses_memory() {
        let layout = Layout::from_size_align(3 * LINE, LINE).unwrap();
        let (a, _) = alloc_node(layout);
        // SAFETY: freeing what we just allocated.
        unsafe { free_node(a, layout) };
        let (b, fresh) = alloc_node(layout);
        assert_eq!(a, b, "LIFO free list hands the node straight back");
        assert!(!fresh, "recycled memory is reported as such");
        // SAFETY: freeing the live allocation once.
        unsafe { free_node(b, layout) };
    }

    #[test]
    fn classes_are_line_aligned_and_disjoint() {
        let small = Layout::from_size_align(LINE, LINE).unwrap();
        let big = Layout::from_size_align(9 * LINE, LINE).unwrap();
        let (a, _) = alloc_node(small);
        let (b, _) = alloc_node(big);
        assert_eq!(a as usize % LINE, 0);
        assert_eq!(b as usize % LINE, 0);
        assert_ne!(a, b);
        // SAFETY: freeing both live allocations once.
        unsafe {
            free_node(a, small);
            free_node(b, big);
        }
    }

    #[test]
    fn oversized_layout_falls_back() {
        let huge = Layout::from_size_align(64 * 1024, LINE).unwrap();
        assert!(class_of(huge).is_none());
        let (p, fresh) = alloc_node(huge);
        assert!(!p.is_null());
        assert!(fresh, "fallback allocations are always fresh");
        // SAFETY: freeing the fallback allocation once.
        unsafe { free_node(p, huge) };
    }

    #[test]
    fn cross_thread_free_recycles_through_global_pool() {
        let layout = Layout::from_size_align(2 * LINE, LINE).unwrap();
        // Allocate enough on a worker that its exit flushes the nodes to
        // the global pool, then verify this thread can drain them.
        let handle = std::thread::spawn(move || {
            let ptrs: Vec<usize> = (0..CHUNK_NODES)
                .map(|_| alloc_node(layout).0 as usize)
                .collect();
            for p in &ptrs {
                // SAFETY: freeing each worker allocation once.
                unsafe { free_node(*p as *mut u8, layout) };
            }
            ptrs
        });
        let freed = handle.join().unwrap();
        let mut recycled = 0;
        let mut got = Vec::new();
        for _ in 0..CHUNK_NODES * 4 {
            let (p, _) = alloc_node(layout);
            if freed.contains(&(p as usize)) {
                recycled += 1;
            }
            got.push(p);
        }
        assert!(recycled > 0, "worker's nodes were reused on this thread");
        for p in got {
            // SAFETY: freeing each live allocation once.
            unsafe { free_node(p, layout) };
        }
    }
}
