//! Masstree node structures (Figure 2 of the paper).
//!
//! Interior and border nodes are the internal and leaf nodes of a width-15
//! B+-tree; border nodes can additionally hold links to deeper trie layers.
//! Both begin (via `#[repr(C)]`) with a [`NodeHeader`] containing the
//! version word, so a type-punned [`NodePtr`] can read the `ISBORDER` bit
//! and downcast. This module owns that central `unsafe`; everything above
//! it works with typed references.
//!
//! # Concurrency
//!
//! Every field a reader may race on is an atomic. Writers publish with
//! release stores while holding the node spinlock; readers use acquire
//! loads validated by the version protocol (`version.rs`). Fields written
//! only under a lock and read only under the same lock could in principle
//! be plain cells, but keeping them atomic (with relaxed ordering where
//! possible) keeps the whole structure free of `UnsafeCell` aliasing
//! hazards at negligible x86 cost.

use core::alloc::Layout;
use core::marker::PhantomData;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicU16, AtomicU64, AtomicU8, Ordering};

use crate::key::{keylen_rank, KEYLEN_LAYER, KEYLEN_UNSTABLE};
use crate::permutation::{Permutation, WIDTH};
use crate::prefetch::prefetch;
use crate::suffix::KeySuffix;
use crate::version::VersionCell;

/// Common prefix of both node types: the version word and the slab
/// reuse generation.
#[repr(C)]
pub struct NodeHeader {
    pub version: VersionCell,
    /// Slab-reuse generation, read by hinted readers (`hint.rs`) to
    /// detect that a remembered node was freed and its memory recycled.
    /// Bumped (release) in [`NodePtr::free`] just before the memory goes
    /// back to the slab free lists; **preserved** across reallocation
    /// (node reinit never touches it), so a hint captured before a free
    /// can never validate against whatever node the memory becomes next.
    pub generation: AtomicU64,
}

impl NodeHeader {
    /// Acquire-loads the reuse generation. The acquire pairs with the
    /// release stores of node reinitialization: a hinted reader that
    /// observes any post-reuse field value is guaranteed to observe the
    /// generation bump too (the bump happens-before the reinit via the
    /// slab free-list hand-off).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// A border (leaf) node: keys, values, suffixes and layer links, plus the
/// doubly-linked leaf list used by scans and concurrent remove.
#[repr(C, align(64))]
pub struct BorderNode<V> {
    pub header: NodeHeader,
    /// Slots freed by `remove` since last reuse; inserting into one of
    /// these requires a vinsert bump (§4.6.5).
    pub freed_mask: AtomicU16,
    /// Per-slot key-length codes (see `key.rs`).
    pub keylen: [AtomicU8; WIDTH],
    /// Key order + free list, published atomically (§4.6.2).
    pub permutation: AtomicU64,
    /// 8-byte key slices as big-endian integers.
    pub keyslice: [AtomicU64; WIDTH],
    /// Value pointer (`*mut V`) or next-layer root (`*mut NodeHeader`),
    /// discriminated by `keylen` (the paper's `link_or_value`).
    pub lv: [AtomicPtr<()>; WIDTH],
    /// Suffix blocks for slots with `keylen == KEYLEN_SUFFIX`.
    pub suffix: [AtomicPtr<KeySuffix>; WIDTH],
    pub next: AtomicPtr<BorderNode<V>>,
    pub prev: AtomicPtr<BorderNode<V>>,
    pub parent: AtomicPtr<InteriorNode<V>>,
    /// Inclusive lower bound of this node's slice range. Constant for the
    /// node's lifetime (§4.6.4); meaningless for the leftmost node, whose
    /// logical lowkey is −∞.
    pub lowkey: AtomicU64,
    pub _marker: PhantomData<fn(V) -> V>,
}

/// An interior node: separators and children of the width-15 B+-tree.
#[repr(C, align(64))]
pub struct InteriorNode<V> {
    pub header: NodeHeader,
    pub nkeys: AtomicU8,
    pub keyslice: [AtomicU64; WIDTH],
    pub child: [AtomicPtr<NodeHeader>; WIDTH + 1],
    pub parent: AtomicPtr<InteriorNode<V>>,
    pub _marker: PhantomData<fn(V) -> V>,
}

/// Result of searching a border node for a `(slice, rank)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BorderSearch {
    /// Key present: sorted position and slot index.
    Found { pos: usize, slot: usize },
    /// Key absent: the sorted position where it would be inserted.
    Missing { pos: usize },
}

/// What a border slot's `link_or_value` held at extraction time
/// (Figure 7's `t` tag).
pub enum ExtractedLv {
    /// The slot holds a plain value pointer.
    Value(*mut ()),
    /// The slot links to a deeper trie layer.
    Layer(*mut NodeHeader),
    /// The slot is mid-conversion (§4.6.3); the reader must re-extract.
    Unstable,
}

fn atomic_ptr_array<T, const N: usize>() -> [AtomicPtr<T>; N] {
    // `AtomicPtr` is not `Copy`; an inline-const repeat builds the array.
    [const { AtomicPtr::new(ptr::null_mut()) }; N]
}

fn atomic_u64_array<const N: usize>() -> [AtomicU64; N] {
    [const { AtomicU64::new(0) }; N]
}

fn atomic_u8_array<const N: usize>() -> [AtomicU8; N] {
    [const { AtomicU8::new(0) }; N]
}

impl<V> BorderNode<V> {
    /// Allocates an empty border node from the slab (`slab.rs`).
    pub fn alloc(is_root: bool, locked: bool, lowkey: u64) -> *mut BorderNode<V> {
        let (raw, fresh) = crate::slab::alloc_node(Layout::new::<BorderNode<V>>());
        let p = raw.cast::<BorderNode<V>>();
        if fresh {
            // SAFETY: fresh slab memory sized and aligned for
            // `BorderNode<V>`, never published — nothing can race the
            // plain write.
            unsafe {
                p.write(BorderNode {
                    header: NodeHeader {
                        version: VersionCell::new(true, is_root, locked),
                        generation: AtomicU64::new(0),
                    },
                    freed_mask: AtomicU16::new(0),
                    keylen: atomic_u8_array(),
                    permutation: AtomicU64::new(Permutation::empty().raw()),
                    keyslice: atomic_u64_array(),
                    lv: atomic_ptr_array(),
                    suffix: atomic_ptr_array(),
                    next: AtomicPtr::new(ptr::null_mut()),
                    prev: AtomicPtr::new(ptr::null_mut()),
                    parent: AtomicPtr::new(ptr::null_mut()),
                    lowkey: AtomicU64::new(lowkey),
                    _marker: PhantomData,
                });
            }
        } else {
            // Recycled node memory. A stale leaf hint (`hint.rs`) may
            // still be concurrently *reading* these bytes — slab memory
            // is type-stable and every field is an atomic, so shared
            // reads are fine, but the reinitialization must therefore
            // use atomic stores (a plain `p.write` would be a data
            // race). Release ordering pairs with hinted readers' acquire
            // loads: observing any reinit value implies observing the
            // generation bump done when this memory was freed, so the
            // stale hint bails. The generation itself is preserved.
            //
            // SAFETY: recycled slab memory of this size class holds a
            // fully initialized node (every field an integer-like atomic
            // valid for any bit pattern), so forming a shared reference
            // is sound.
            let n = unsafe { &*p };
            n.header.version.reinit(true, is_root, locked);
            n.freed_mask.store(0, Ordering::Release);
            for i in 0..WIDTH {
                n.keylen[i].store(0, Ordering::Release);
                n.keyslice[i].store(0, Ordering::Release);
                n.lv[i].store(ptr::null_mut(), Ordering::Release);
                n.suffix[i].store(ptr::null_mut(), Ordering::Release);
            }
            n.permutation
                .store(Permutation::empty().raw(), Ordering::Release);
            n.next.store(ptr::null_mut(), Ordering::Release);
            n.prev.store(ptr::null_mut(), Ordering::Release);
            n.parent.store(ptr::null_mut(), Ordering::Release);
            n.lowkey.store(lowkey, Ordering::Release);
        }
        p
    }

    /// Allocates the right sibling for a split of `src` (Figure 5's
    /// `n'.version ← n.version`): the new node starts locked and splitting
    /// like its source, but is never a root.
    pub fn alloc_for_split(src: &VersionCell, lowkey: u64) -> *mut BorderNode<V> {
        let p = Self::alloc(false, false, lowkey);
        // Atomic store (not a struct overwrite): the memory may be
        // recycled and watched by a stale hinted reader.
        // SAFETY: just allocated, valid node.
        unsafe { (*p).header.version.reinit_for_split(src) };
        p
    }

    /// This node's slab-reuse generation (see [`NodeHeader::generation`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.header.generation()
    }

    #[inline]
    pub fn version(&self) -> &VersionCell {
        &self.header.version
    }

    #[inline]
    pub fn permutation(&self) -> Permutation {
        Permutation::from_raw(self.permutation.load(Ordering::Acquire))
    }

    /// Publishes a new permutation (the single atomic step that makes an
    /// insert or remove visible).
    #[inline]
    pub fn publish_permutation(&self, p: Permutation) {
        self.permutation.store(p.raw(), Ordering::Release);
    }

    /// Searches the live keys for `(ikey, rank)`.
    ///
    /// `rank` is the target's comparison rank (`keylen_rank` of its code):
    /// inline lengths compare by length; any ">8 bytes" resident (suffix,
    /// layer, unstable) occupies rank 9. Linear search: the paper found it
    /// as fast or faster than binary search on these widths (§4.8).
    pub fn search(&self, perm: Permutation, ikey: u64, rank: u8) -> BorderSearch {
        let n = perm.nkeys();
        for pos in 0..n {
            let slot = perm.get(pos);
            let ks = self.keyslice[slot].load(Ordering::Acquire);
            if ks < ikey {
                continue;
            }
            if ks > ikey {
                return BorderSearch::Missing { pos };
            }
            let r = keylen_rank(self.keylen[slot].load(Ordering::Acquire));
            if r < rank {
                continue;
            }
            if r > rank {
                return BorderSearch::Missing { pos };
            }
            return BorderSearch::Found { pos, slot };
        }
        BorderSearch::Missing { pos: n }
    }

    /// Extracts the slot's `link_or_value` with the ordering required by
    /// §4.6.3 layer creation.
    ///
    /// The writer's publication order is UNSTABLE → `lv` → LAYER (all
    /// release stores), so:
    /// * reading `lv` **before** `keylen` guarantees that if `keylen` reads
    ///   an inline/suffix code, `lv` was still the value pointer;
    /// * if `keylen` reads LAYER, the acquire load synchronizes with the
    ///   writer's release store, so re-reading `lv` observes the layer
    ///   pointer.
    ///
    /// Slot reuse after a remove can still interleave arbitrarily; the
    /// caller's version re-check (vinsert bump on reuse, §4.6.5) catches
    /// that case.
    #[inline]
    pub fn extract_lv(&self, slot: usize) -> (u8, ExtractedLv) {
        let lv1 = self.lv[slot].load(Ordering::Acquire);
        let code = self.keylen[slot].load(Ordering::Acquire);
        match code {
            KEYLEN_UNSTABLE => (code, ExtractedLv::Unstable),
            KEYLEN_LAYER => {
                let lv2 = self.lv[slot].load(Ordering::Acquire);
                (code, ExtractedLv::Layer(lv2.cast::<NodeHeader>()))
            }
            _ => (code, ExtractedLv::Value(lv1)),
        }
    }

    /// Writes a complete entry into a (free) slot. Caller must hold the
    /// node lock and must publish a permutation including `slot` *after*
    /// this returns (release ordering on the permutation store makes the
    /// contents visible).
    pub fn write_slot(
        &self,
        slot: usize,
        ikey: u64,
        keylen: u8,
        suffix: *mut KeySuffix,
        lv: *mut (),
    ) {
        self.keyslice[slot].store(ikey, Ordering::Release);
        self.keylen[slot].store(keylen, Ordering::Release);
        self.suffix[slot].store(suffix, Ordering::Release);
        self.lv[slot].store(lv, Ordering::Release);
    }

    /// True if inserting into `slot` requires a vinsert bump because the
    /// slot was freed by a remove (§4.6.5). Clears the flag.
    pub fn take_freed(&self, slot: usize) -> bool {
        let bit = 1u16 << slot;
        self.freed_mask.fetch_and(!bit, Ordering::Relaxed) & bit != 0
    }

    /// Marks `slot` as freed by a remove.
    pub fn mark_freed(&self, slot: usize) {
        self.freed_mask.fetch_or(1u16 << slot, Ordering::Relaxed);
    }
}

impl<V> InteriorNode<V> {
    /// Allocates an interior node with no keys and no children from the
    /// slab (`slab.rs`).
    pub fn alloc(is_root: bool, locked: bool) -> *mut InteriorNode<V> {
        let (raw, fresh) = crate::slab::alloc_node(Layout::new::<InteriorNode<V>>());
        let p = raw.cast::<InteriorNode<V>>();
        if fresh {
            // SAFETY: fresh slab memory sized and aligned for
            // `InteriorNode<V>`, never published.
            unsafe {
                p.write(InteriorNode {
                    header: NodeHeader {
                        version: VersionCell::new(false, is_root, locked),
                        generation: AtomicU64::new(0),
                    },
                    nkeys: AtomicU8::new(0),
                    keyslice: atomic_u64_array(),
                    child: atomic_ptr_array(),
                    parent: AtomicPtr::new(ptr::null_mut()),
                    _marker: PhantomData,
                });
            }
        } else {
            // Recycled memory: atomic reinit, generation preserved — see
            // the matching branch in `BorderNode::alloc` for the full
            // safety argument.
            // SAFETY: as in `BorderNode::alloc`.
            let n = unsafe { &*p };
            n.header.version.reinit(false, is_root, locked);
            n.nkeys.store(0, Ordering::Release);
            for i in 0..WIDTH {
                n.keyslice[i].store(0, Ordering::Release);
            }
            for c in &n.child {
                c.store(ptr::null_mut(), Ordering::Release);
            }
            n.parent.store(ptr::null_mut(), Ordering::Release);
        }
        p
    }

    /// Allocates the right sibling for an interior split (locked and
    /// splitting like its source, never a root).
    pub fn alloc_for_split(src: &VersionCell) -> *mut InteriorNode<V> {
        let p = Self::alloc(false, false);
        // Atomic store (not a struct overwrite): the memory may be
        // recycled and watched by a stale hinted reader.
        // SAFETY: just allocated, valid node.
        unsafe { (*p).header.version.reinit_for_split(src) };
        p
    }

    #[inline]
    pub fn version(&self) -> &VersionCell {
        &self.header.version
    }

    #[inline]
    pub fn nkeys(&self) -> usize {
        (self.nkeys.load(Ordering::Acquire) as usize).min(WIDTH)
    }

    /// Finds the child covering `ikey`: child `i` covers
    /// `[key[i-1], key[i])`, with keys equal to a separator going right.
    #[inline]
    pub fn find_child(&self, ikey: u64) -> (usize, *mut NodeHeader) {
        let n = self.nkeys();
        let mut i = 0;
        while i < n && ikey >= self.keyslice[i].load(Ordering::Acquire) {
            i += 1;
        }
        (i, self.child[i].load(Ordering::Acquire))
    }

    /// Index of `child` in the child array, if present. Caller must hold
    /// this node's lock (children cannot move while it is held).
    pub fn child_index(&self, child: *mut NodeHeader) -> Option<usize> {
        let n = self.nkeys();
        (0..=n).find(|&i| self.child[i].load(Ordering::Acquire) == child)
    }
}

/// A type-punned pointer to either node kind.
///
/// The `ISBORDER` bit of the version word (constant for a node's lifetime)
/// selects the concrete type. Both node structs are `#[repr(C)]` with
/// `NodeHeader` first, making the casts layout-sound.
pub struct NodePtr<V>(*mut NodeHeader, PhantomData<fn(V) -> V>);

impl<V> Clone for NodePtr<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for NodePtr<V> {}
impl<V> PartialEq for NodePtr<V> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<V> Eq for NodePtr<V> {}
impl<V> core::fmt::Debug for NodePtr<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "NodePtr({:p})", self.0)
    }
}

impl<V> NodePtr<V> {
    #[allow(dead_code)]
    #[inline]
    pub fn null() -> Self {
        NodePtr(ptr::null_mut(), PhantomData)
    }

    #[inline]
    pub fn from_raw(p: *mut NodeHeader) -> Self {
        NodePtr(p, PhantomData)
    }

    #[inline]
    pub fn from_border(p: *mut BorderNode<V>) -> Self {
        NodePtr(p.cast::<NodeHeader>(), PhantomData)
    }

    #[inline]
    pub fn from_interior(p: *mut InteriorNode<V>) -> Self {
        NodePtr(p.cast::<NodeHeader>(), PhantomData)
    }

    #[inline]
    pub fn raw(self) -> *mut NodeHeader {
        self.0
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self.0.is_null()
    }

    /// The node's version cell.
    ///
    /// # Safety
    ///
    /// The pointer must reference a live node (epoch reclamation keeps
    /// retired nodes live while any guard from before retirement exists).
    #[inline]
    pub unsafe fn version<'a>(self) -> &'a VersionCell {
        // SAFETY: `NodeHeader` heads both node types per `#[repr(C)]`.
        unsafe { &(*self.0).version }
    }

    /// Reads the constant `ISBORDER` bit.
    ///
    /// # Safety
    ///
    /// Same liveness requirement as [`NodePtr::version`].
    #[inline]
    pub unsafe fn is_border(self) -> bool {
        // SAFETY: per caller contract.
        unsafe { self.version().load(Ordering::Relaxed).is_border() }
    }

    /// Downcasts to a border node.
    ///
    /// # Safety
    ///
    /// The node must be live and must actually be a border node.
    #[inline]
    pub unsafe fn as_border<'a>(self) -> &'a BorderNode<V> {
        debug_assert!(!self.0.is_null());
        // SAFETY: caller guarantees the concrete type; layouts share the
        // `NodeHeader` prefix via `#[repr(C)]`.
        unsafe {
            debug_assert!(self.is_border());
            &*self.0.cast::<BorderNode<V>>()
        }
    }

    /// Downcasts to an interior node.
    ///
    /// # Safety
    ///
    /// The node must be live and must actually be an interior node.
    #[inline]
    pub unsafe fn as_interior<'a>(self) -> &'a InteriorNode<V> {
        debug_assert!(!self.0.is_null());
        // SAFETY: as for `as_border`.
        unsafe {
            debug_assert!(!self.is_border());
            &*self.0.cast::<InteriorNode<V>>()
        }
    }

    /// Loads the node's parent pointer (border and interior store it at
    /// different offsets, hence the dispatch).
    ///
    /// # Safety
    ///
    /// The node must be live.
    #[inline]
    pub unsafe fn parent(self) -> *mut InteriorNode<V> {
        // SAFETY: per caller contract; dispatch on the constant shape bit.
        unsafe {
            if self.is_border() {
                self.as_border().parent.load(Ordering::Acquire)
            } else {
                self.as_interior().parent.load(Ordering::Acquire)
            }
        }
    }

    /// Stores the node's parent pointer. Caller must either hold the lock
    /// protecting this field (the *parent's* lock, §4.5) or have exclusive
    /// access to an unpublished node.
    ///
    /// # Safety
    ///
    /// The node must be live.
    #[inline]
    pub unsafe fn set_parent(self, p: *mut InteriorNode<V>) {
        // SAFETY: per caller contract.
        unsafe {
            if self.is_border() {
                self.as_border().parent.store(p, Ordering::Release);
            } else {
                self.as_interior().parent.store(p, Ordering::Release);
            }
        }
    }

    /// Prefetches all cache lines of the node (border size dominates).
    #[inline]
    pub fn prefetch(self) {
        prefetch(self.0.cast::<BorderNode<V>>().cast_const());
    }

    /// Returns the node allocation to the slab free lists (not its
    /// values/suffixes/children). In steady state this is reached only
    /// through the epoch GC (`gc.rs`), which is what refills the
    /// per-thread free lists that `alloc` draws from.
    ///
    /// # Safety
    ///
    /// The node must have been allocated by `BorderNode::alloc` or
    /// `InteriorNode::alloc`, must be unreachable, and must not be freed
    /// again.
    pub unsafe fn free(self) {
        // SAFETY: per caller contract; the layout matches the alloc call
        // for the node's concrete type. Neither node type has drop glue
        // (atomics and PhantomData only), so returning the raw memory is
        // the whole destruction.
        unsafe {
            // Invalidate stale leaf hints before the memory can be
            // recycled: hinted readers (`hint.rs`) compare this
            // generation against their snapshot and bail on mismatch.
            // Release pairs with their acquire loads.
            (*self.0).generation.fetch_add(1, Ordering::Release);
            if self.is_border() {
                crate::slab::free_node(self.0.cast::<u8>(), Layout::new::<BorderNode<V>>());
            } else {
                crate::slab::free_node(self.0.cast::<u8>(), Layout::new::<InteriorNode<V>>());
            }
        }
    }
}

/// Where a layer's root pointer lives: the tree-wide root or a `lv` slot in
/// a parent-layer border node. Used to install new roots on root splits
/// and collapses (§4.6.4's lazy root update, made eager where possible).
pub enum RootSlot<'a, V> {
    Tree(&'a AtomicPtr<NodeHeader>),
    LayerLink {
        node: *const BorderNode<V>,
        slot: usize,
    },
    /// The layer was entered through a validated anchor, so the slot
    /// holding its root pointer is unknown: root updates are left
    /// entirely to §4.6.4's lazy healing (`find_border` climbs past the
    /// stale pointer; the next descending writer repairs it).
    Detached,
}

impl<V> RootSlot<'_, V> {
    /// Best-effort CAS of the root pointer from `old` to `new`. A failure
    /// is harmless: stale roots are healed by `find_border`'s parent climb.
    pub fn cas(&self, old: *mut NodeHeader, new: *mut NodeHeader) {
        match self {
            RootSlot::Detached => {}
            RootSlot::Tree(slot) => {
                let _ = slot.compare_exchange(old, new, Ordering::AcqRel, Ordering::Relaxed);
            }
            RootSlot::LayerLink { node, slot } => {
                // SAFETY: the parent border node is live while the guard
                // held by the ongoing operation is pinned.
                let b = unsafe { &**node };
                let _ = b.lv[*slot].compare_exchange(
                    old.cast::<()>(),
                    new.cast::<()>(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KEYLEN_SUFFIX;

    #[test]
    fn node_header_is_first_field() {
        // The type-punning NodePtr relies on this.
        let b = BorderNode::<u64>::alloc(true, false, 0);
        let i = InteriorNode::<u64>::alloc(false, false);
        assert_eq!(b.cast::<NodeHeader>().cast::<u8>(), b.cast::<u8>());
        assert_eq!(i.cast::<NodeHeader>().cast::<u8>(), i.cast::<u8>());
        // SAFETY: freshly allocated, correct types.
        unsafe {
            assert!(NodePtr::<u64>::from_border(b).is_border());
            assert!(!NodePtr::<u64>::from_interior(i).is_border());
            NodePtr::<u64>::from_border(b).free();
            NodePtr::<u64>::from_interior(i).free();
        }
    }

    #[test]
    fn node_alignment() {
        assert_eq!(align_of::<BorderNode<u64>>(), 64);
        assert_eq!(align_of::<InteriorNode<u64>>(), 64);
        // Border nodes should stay within a small number of cache lines
        // (the paper uses 4; our per-slot suffix pointers cost more — see
        // DESIGN.md §4.2 — but the node must stay prefetchable).
        assert!(
            size_of::<BorderNode<u64>>() <= 64 * 10,
            "{}",
            size_of::<BorderNode<u64>>()
        );
        assert!(
            size_of::<InteriorNode<u64>>() <= 64 * 5,
            "{}",
            size_of::<InteriorNode<u64>>()
        );
    }

    fn make_border_with(keys: &[(u64, u8)]) -> *mut BorderNode<u64> {
        let b = BorderNode::<u64>::alloc(true, false, 0);
        // SAFETY: fresh private node.
        let bn = unsafe { &*b };
        let mut perm = Permutation::empty();
        for (i, &(ik, code)) in keys.iter().enumerate() {
            let (np, slot) = perm.insert_from_back(i);
            bn.write_slot(slot, ik, code, ptr::null_mut(), ptr::null_mut());
            perm = np;
        }
        bn.publish_permutation(perm);
        b
    }

    #[test]
    fn border_search_orders_by_ikey_then_rank() {
        let b = make_border_with(&[(10, 3), (10, 8), (10, KEYLEN_SUFFIX), (20, 0)]);
        // SAFETY: fresh node.
        let bn = unsafe { &*b };
        let perm = bn.permutation();
        assert_eq!(
            bn.search(perm, 10, 3),
            BorderSearch::Found { pos: 0, slot: 0 }
        );
        assert_eq!(
            bn.search(perm, 10, 8),
            BorderSearch::Found { pos: 1, slot: 1 }
        );
        assert_eq!(
            bn.search(perm, 10, 9),
            BorderSearch::Found { pos: 2, slot: 2 }
        );
        assert_eq!(bn.search(perm, 10, 5), BorderSearch::Missing { pos: 1 });
        assert_eq!(bn.search(perm, 5, 8), BorderSearch::Missing { pos: 0 });
        assert_eq!(bn.search(perm, 15, 0), BorderSearch::Missing { pos: 3 });
        assert_eq!(bn.search(perm, 30, 0), BorderSearch::Missing { pos: 4 });
        // A layer marker matches rank 9 searches.
        bn.keylen[2].store(KEYLEN_LAYER, Ordering::Relaxed);
        assert_eq!(
            bn.search(perm, 10, 9),
            BorderSearch::Found { pos: 2, slot: 2 }
        );
        // SAFETY: freeing the test node once.
        unsafe { NodePtr::<u64>::from_border(b).free() };
    }

    #[test]
    fn freed_mask_roundtrip() {
        let b = BorderNode::<u64>::alloc(true, false, 0);
        // SAFETY: fresh node.
        let bn = unsafe { &*b };
        assert!(!bn.take_freed(3));
        bn.mark_freed(3);
        bn.mark_freed(7);
        assert!(bn.take_freed(3));
        assert!(!bn.take_freed(3), "flag clears on take");
        assert!(bn.take_freed(7));
        // SAFETY: freeing the test node once.
        unsafe { NodePtr::<u64>::from_border(b).free() };
    }

    #[test]
    fn interior_find_child_ranges() {
        let i = InteriorNode::<u64>::alloc(true, false);
        // SAFETY: fresh node.
        let node = unsafe { &*i };
        let c: Vec<*mut NodeHeader> = (0..4)
            .map(|_| BorderNode::<u64>::alloc(false, false, 0).cast::<NodeHeader>())
            .collect();
        node.keyslice[0].store(10, Ordering::Relaxed);
        node.keyslice[1].store(20, Ordering::Relaxed);
        node.keyslice[2].store(30, Ordering::Relaxed);
        for (j, &p) in c.iter().enumerate() {
            node.child[j].store(p, Ordering::Relaxed);
        }
        node.nkeys.store(3, Ordering::Release);
        assert_eq!(node.find_child(5), (0, c[0]));
        assert_eq!(node.find_child(10), (1, c[1]), "equal separator goes right");
        assert_eq!(node.find_child(15), (1, c[1]));
        assert_eq!(node.find_child(29), (2, c[2]));
        assert_eq!(node.find_child(u64::MAX), (3, c[3]));
        assert_eq!(node.child_index(c[2]), Some(2));
        assert_eq!(node.child_index(ptr::null_mut()), None);
        // SAFETY: freeing each test node once.
        unsafe {
            for p in c {
                NodePtr::<u64>::from_raw(p).free();
            }
            NodePtr::<u64>::from_interior(i).free();
        }
    }

    #[test]
    fn extract_lv_reports_layer() {
        let b = make_border_with(&[(10, KEYLEN_SUFFIX)]);
        // SAFETY: fresh node.
        let bn = unsafe { &*b };
        let (code, e) = bn.extract_lv(0);
        assert_eq!(code, KEYLEN_SUFFIX);
        assert!(matches!(e, ExtractedLv::Value(_)));
        // Simulate §4.6.3 conversion.
        let layer = BorderNode::<u64>::alloc(true, false, 0);
        bn.keylen[0].store(KEYLEN_UNSTABLE, Ordering::Release);
        assert!(matches!(bn.extract_lv(0).1, ExtractedLv::Unstable));
        bn.lv[0].store(layer.cast::<()>(), Ordering::Release);
        bn.keylen[0].store(KEYLEN_LAYER, Ordering::Release);
        match bn.extract_lv(0) {
            (c, ExtractedLv::Layer(p)) => {
                assert_eq!(c, KEYLEN_LAYER);
                assert_eq!(p, layer.cast::<NodeHeader>());
            }
            _ => panic!("expected layer"),
        }
        // SAFETY: freeing both test nodes once.
        unsafe {
            NodePtr::<u64>::from_border(layer).free();
            NodePtr::<u64>::from_border(b).free();
        }
    }
}
