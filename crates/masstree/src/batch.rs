//! Interleaved batch traversal engine: software-pipelined `multi_get` /
//! `multi_put` (§4.2's prefetch rationale, applied *across* operations).
//!
//! A single tree descent stalls on DRAM once per level: prefetching a
//! whole wide node hides latency within one node visit, but the next
//! level's address is unknown until the current node has been read. With
//! a *batch* of independent operations, the engine keeps one cursor per
//! operation and advances them round-robin: as soon as cursor `i`
//! computes its next node it issues the prefetch and yields, so the DRAM
//! fetch overlaps with cursors `i+1..n` doing useful work. Per-level
//! stalls become memory-level parallelism across the whole group.
//!
//! # Cursor state machine
//!
//! Each cursor holds its key position ([`KeyCursor`]), the current trie
//! layer's root, and a [`Phase`]:
//!
//! ```text
//! EnterLayer ──stable──▶ (descend loop) ──prefetch child──▶ ChildFetch
//!      ▲                       │  border                        │
//!      │ layer link /          ▼                                │ validate
//!      │ new layer      BorderRead (get) / BorderLock (put)  ◀──┘ parent
//!      │                       │
//!      └───────────────────────┴──▶ Done
//! ```
//!
//! Yield points are exactly the places a sequential traversal would miss
//! cache: after prefetching a layer root, after prefetching a child,
//! after prefetching a leaf-list neighbour during a B-link walk, and —
//! instead of spinning — whenever a version is dirty ([`
//! crate::version::VersionCell::try_stable`] fails) or a border lock is
//! contended. OCC retries are handled per cursor: one operation
//! restarting (deleted node, split underneath it) never disturbs the
//! rest of the group.
//!
//! Writers complete their border-node work (lock, insert, split, layer
//! creation) inline within a single step, reusing the exact same
//! `put.rs` primitives as the sequential path; no lock is ever held
//! across a yield, so cursors cannot deadlock each other.

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::hint::{HintResult, HintedGet, LeafHint};
use crate::key::{keylen_rank, KeyCursor, KEYLEN_SUFFIX};
use crate::node::{BorderNode, BorderSearch, ExtractedLv, NodePtr, RootSlot};
use crate::put::{BorderWrite, ValueFactory};
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::Masstree;
use crate::tree::Restart;
use crate::version::Version;

/// Maximum operations interleaved in one group. Larger groups add
/// memory-level parallelism until the outstanding-miss limit of the core
/// is reached; 32 is comfortably past that knee on current x86.
pub const MAX_GROUP: usize = 32;

/// What a finished cursor produced: the raw value pointer (current value
/// for gets, previous value for puts), if any.
type RawResult = Option<*mut ()>;

/// Whether a cursor performs a lookup or an insert/update.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Get,
    Put,
}

/// Where the current trie layer's root pointer lives, for lazy root
/// healing and split ascents (put cursors only).
enum LayerSlot<V> {
    Tree,
    Link {
        node: *const BorderNode<V>,
        slot: usize,
    },
}

impl<V> LayerSlot<V> {
    fn as_root_slot<'t>(&self, tree: &'t Masstree<V>) -> RootSlot<'t, V> {
        match self {
            LayerSlot::Tree => RootSlot::Tree(&tree.root),
            LayerSlot::Link { node, slot } => RootSlot::LayerLink {
                node: *node,
                slot: *slot,
            },
        }
    }
}

/// The per-cursor resume point. Every variant names a node that has
/// already been prefetched by the transition that created the variant.
enum Phase<V> {
    /// About to read the current layer root (`Cursor::root`).
    EnterLayer,
    /// `parent` (validated at version `pv`) chose `child`; the child's
    /// cache lines are in flight.
    ChildFetch {
        parent: NodePtr<V>,
        pv: Version,
        child: NodePtr<V>,
    },
    /// Reader positioned at a border node. `pending` is the stable
    /// version if the descent already provided one, else the step must
    /// (re-)stabilize first — e.g. after a B-link walk.
    BorderRead {
        n: *const BorderNode<V>,
        pending: Option<Version>,
    },
    /// Writer waiting to lock this border node.
    BorderLock { n: *const BorderNode<V> },
    /// Finished.
    Done,
}

/// One in-flight operation.
struct Cursor<'k, V> {
    idx: usize,
    mode: Mode,
    k: KeyCursor<'k>,
    /// Root of the trie layer currently being descended.
    root: NodePtr<V>,
    /// The pointer through which this layer was entered (healed via CAS
    /// if the descent climbs past it — §4.6.4 lazy root update).
    entered: NodePtr<V>,
    slot: LayerSlot<V>,
    phase: Phase<V>,
    result: RawResult,
    /// For get cursors: the leaf hint captured at the validated endpoint
    /// (`hint.rs`), so hinted batch lookups can refresh their tables.
    hint: Option<LeafHint<V>>,
}

impl<'k, V: Send + Sync + 'static> Cursor<'k, V> {
    fn new(idx: usize, mode: Mode, key: &'k [u8], tree: &Masstree<V>) -> Self {
        let root = tree.load_root();
        root.prefetch();
        Cursor {
            idx,
            mode,
            k: KeyCursor::new(key),
            root,
            entered: root,
            slot: LayerSlot::Tree,
            phase: Phase::EnterLayer,
            result: None,
            hint: None,
        }
    }

    /// Restarts the whole operation from the top of the trie (deleted
    /// node or removed layer — the per-cursor equivalent of the
    /// sequential paths' `'restart` loop).
    fn full_restart(&mut self, tree: &Masstree<V>) -> Phase<V> {
        Stats::bump(&tree.stats.op_restarts);
        self.k = KeyCursor::new(self.k.full_key());
        self.root = tree.load_root();
        self.entered = self.root;
        self.slot = LayerSlot::Tree;
        self.root.prefetch();
        Phase::EnterLayer
    }

    /// Retries the current layer from its (possibly updated) root.
    fn layer_retry(&mut self) -> Phase<V> {
        self.root.prefetch();
        Phase::EnterLayer
    }

    /// Descends into the next trie layer through `link` found in border
    /// node `node` at `slot`.
    fn enter_layer(
        &mut self,
        link: NodePtr<V>,
        node: *const BorderNode<V>,
        slot: usize,
    ) -> Phase<V> {
        self.root = link;
        self.entered = link;
        self.slot = LayerSlot::Link { node, slot };
        self.k.advance();
        self.root.prefetch();
        Phase::EnterLayer
    }

    /// Runs the in-cache part of `find_border`'s inner loop from `(n, v)`
    /// until the next cold-node yield point or the border is reached.
    fn descend_from(&mut self, tree: &Masstree<V>, n: NodePtr<V>, mut v: Version) -> Phase<V> {
        loop {
            if v.is_deleted() {
                return self.full_restart(tree);
            }
            if v.is_border() {
                // SAFETY: live node (guard pinned by the engine),
                // ISBORDER verified via `v`.
                let bn = unsafe { n.as_border() } as *const BorderNode<V>;
                return match self.mode {
                    Mode::Get => Phase::BorderRead {
                        n: bn,
                        pending: Some(v),
                    },
                    Mode::Put => {
                        // Heal a stale layer-root pointer before the write
                        // completes (put_inner does the same after
                        // find_border).
                        if self.root != self.entered {
                            self.slot
                                .as_root_slot(tree)
                                .cas(self.entered.raw(), self.root.raw());
                            self.entered = self.root;
                        }
                        Phase::BorderLock { n: bn }
                    }
                };
            }
            // SAFETY: live node, interior per the check above.
            let inter = unsafe { n.as_interior() };
            let (_, childp) = inter.find_child(self.k.ikey());
            if childp.is_null() {
                // Torn read during a concurrent reshape; revalidate.
                let v2 = inter.version().stable();
                if v.has_split(v2) {
                    Stats::bump(&tree.stats.descend_retries_root);
                    return self.layer_retry();
                }
                Stats::bump(&tree.stats.descend_retries_local);
                v = v2;
                continue;
            }
            let child = NodePtr::from_raw(childp);
            child.prefetch();
            // Yield: the child's lines are in flight; run other cursors
            // while DRAM does its thing.
            return Phase::ChildFetch {
                parent: n,
                pv: v,
                child,
            };
        }
    }

    /// Advances the cursor by one pipeline step. Returns `true` when the
    /// operation completed (result stored in `self.result`).
    ///
    /// `factory` produces a put's value under the border-node lock (get
    /// cursors never call it).
    fn step(
        &mut self,
        tree: &Masstree<V>,
        factory: &mut dyn FnMut(usize, Option<&V>) -> V,
        guard: &Guard,
    ) -> bool {
        let next = match core::mem::replace(&mut self.phase, Phase::Done) {
            Phase::EnterLayer => {
                let n = self.root;
                // SAFETY: the layer root is live: tree root, published
                // layer link, or parent pointer, all kept live by the
                // pinned guard.
                let Some(v) = (unsafe { n.version() }).try_stable() else {
                    Stats::bump(&tree.stats.batch_dirty_yields);
                    self.phase = Phase::EnterLayer;
                    return false;
                };
                if !v.is_root() {
                    // A split installed a new root above us; climb.
                    // SAFETY: `n` is live (guard pinned).
                    let p = unsafe { n.parent() };
                    if p.is_null() {
                        self.full_restart(tree)
                    } else {
                        self.root = NodePtr::from_interior(p);
                        self.root.prefetch();
                        Phase::EnterLayer
                    }
                } else {
                    self.descend_from(tree, n, v)
                }
            }
            Phase::ChildFetch { parent, pv, child } => {
                // SAFETY: a child pointer read from a live interior node
                // is live under the pinned guard.
                let Some(vc) = (unsafe { child.version() }).try_stable() else {
                    Stats::bump(&tree.stats.batch_dirty_yields);
                    self.phase = Phase::ChildFetch { parent, pv, child };
                    return false;
                };
                // Hand-over-hand validation: re-check the parent before
                // committing to the child.
                // SAFETY: `parent` is live under the pinned guard.
                let v2 = unsafe { parent.version() }.load(Ordering::Acquire);
                if !pv.has_changed(v2) {
                    self.descend_from(tree, child, vc)
                } else {
                    // SAFETY: as above.
                    let v2 = unsafe { parent.version() }.stable();
                    if pv.has_split(v2) {
                        Stats::bump(&tree.stats.descend_retries_root);
                        self.layer_retry()
                    } else {
                        Stats::bump(&tree.stats.descend_retries_local);
                        self.descend_from(tree, parent, v2)
                    }
                }
            }
            Phase::BorderRead { n, pending } => {
                // SAFETY: border nodes stay live (possibly deleted but
                // unreclaimed) under the pinned guard.
                let bn = unsafe { &*n };
                let v = match pending {
                    Some(v) => v,
                    None => match bn.version().try_stable() {
                        Some(v) => v,
                        None => {
                            Stats::bump(&tree.stats.batch_dirty_yields);
                            self.phase = Phase::BorderRead { n, pending: None };
                            return false;
                        }
                    },
                };
                self.read_border(tree, bn, v)
            }
            Phase::BorderLock { n } => {
                // SAFETY: as in BorderRead.
                let bn = unsafe { &*n };
                if bn.version().try_lock().is_none() {
                    // Contended: run other cursors instead of spinning.
                    core::hint::spin_loop();
                    self.phase = Phase::BorderLock { n };
                    return false;
                }
                self.write_border(tree, bn, factory, guard)
            }
            Phase::Done => Phase::Done,
        };
        self.phase = next;
        matches!(self.phase, Phase::Done)
    }

    /// The validated-read body of Figure 7, one border visit per call.
    fn read_border(&mut self, tree: &Masstree<V>, bn: &BorderNode<V>, v: Version) -> Phase<V> {
        if v.is_deleted() {
            return self.full_restart(tree);
        }
        enum Outcome {
            NotFound,
            Value(*mut ()),
            Layer(*mut crate::node::NodeHeader),
            Unstable,
        }
        let ikey = self.k.ikey();
        let perm = bn.permutation();
        let rank = keylen_rank(self.k.keylen_code());
        let mut outcome = Outcome::NotFound;
        // Slot/keylen of a Value outcome, for hint capture.
        let mut found = (0usize, 0u8);
        // See `get_capturing_hint`: suffix-mismatch absence is not
        // fast-path-stable.
        let mut absent_conclusive = true;
        if let BorderSearch::Found { slot, .. } = bn.search(perm, ikey, rank) {
            let (code, ex) = bn.extract_lv(slot);
            found = (slot, code);
            outcome = match ex {
                ExtractedLv::Unstable => Outcome::Unstable,
                ExtractedLv::Layer(p) => Outcome::Layer(p),
                ExtractedLv::Value(p) => {
                    if code == KEYLEN_SUFFIX {
                        let sp = bn.suffix[slot].load(Ordering::Acquire);
                        if sp.is_null() {
                            // Torn with a concurrent reuse; the version
                            // check below will catch it.
                            Outcome::Unstable
                        } else {
                            // SAFETY: suffix blocks are immutable and
                            // epoch-reclaimed; live under the pinned guard.
                            let sb = unsafe { KeySuffix::bytes(sp) };
                            if sb == self.k.suffix() {
                                Outcome::Value(p)
                            } else {
                                absent_conclusive = false;
                                Outcome::NotFound
                            }
                        }
                    } else if code as usize == self.k.slice_len() && !self.k.has_suffix() {
                        Outcome::Value(p)
                    } else {
                        // keylen changed under us (slot reuse); version
                        // check will catch it.
                        Outcome::Unstable
                    }
                }
            };
        }
        // Version re-check (Figure 7's `n.version ⊕ v > locked`).
        let v2 = bn.version().load(Ordering::Acquire);
        if v.has_changed(v2) {
            Stats::bump(&tree.stats.read_retries);
            let vs = bn.version().stable();
            // Walk right while the key's range moved (B-link). The
            // neighbour is cold: prefetch it and yield.
            if !vs.is_deleted() {
                let next = bn.next.load(Ordering::Acquire);
                if !next.is_null() {
                    // SAFETY: leaf-list pointers reference live nodes
                    // under the pinned epoch.
                    let nx = unsafe { &*next };
                    if ikey >= nx.lowkey.load(Ordering::Relaxed) {
                        Stats::bump(&tree.stats.read_advances);
                        crate::prefetch::prefetch(next);
                        return Phase::BorderRead {
                            n: next,
                            pending: None,
                        };
                    }
                }
            }
            return Phase::BorderRead {
                n: bn,
                pending: Some(vs),
            };
        }
        match outcome {
            Outcome::NotFound => {
                self.result = None;
                self.hint = Some(LeafHint::capture_absent(
                    bn,
                    v,
                    perm,
                    self.k.offset(),
                    absent_conclusive,
                ));
                Phase::Done
            }
            Outcome::Value(p) => {
                self.result = Some(p);
                self.hint = Some(LeafHint::capture(
                    bn,
                    v,
                    perm,
                    found.0,
                    found.1,
                    self.k.offset(),
                ));
                Phase::Done
            }
            Outcome::Layer(p) => {
                let bnp = bn as *const BorderNode<V>;
                // Reader layer descent does not track the slot for
                // healing (matching `get`), but recording it is free.
                let BorderSearch::Found { slot, .. } = bn.search(perm, ikey, rank) else {
                    // The slot moved under an unchanged version cannot
                    // happen; fall back to a clean restart.
                    return self.full_restart(tree);
                };
                self.enter_layer(NodePtr::from_raw(p), bnp, slot)
            }
            Outcome::Unstable => {
                core::hint::spin_loop();
                Phase::BorderRead {
                    n: bn,
                    pending: Some(v),
                }
            }
        }
    }

    /// The locked write completion: the walk-right plus the **shared**
    /// border-level put completion (`put.rs`'s `put_at_border`, the same
    /// code the sequential and anchored writes run), executed within one
    /// step so no lock spans a yield.
    fn write_border(
        &mut self,
        tree: &Masstree<V>,
        bn: &BorderNode<V>,
        factory: &mut dyn FnMut(usize, Option<&V>) -> V,
        guard: &Guard,
    ) -> Phase<V> {
        // `lock_border_for_ikey`'s walk-right, starting already locked:
        // chase a concurrent split's leaf chain (rare — stay inline).
        let bn = match tree.walk_right_locked(bn, self.k.ikey()) {
            Ok(bn) => bn,
            Err(Restart) => return self.full_restart(tree),
        };
        let mut fac = IdxFactory {
            idx: self.idx,
            f: factory,
        };
        let root_slot = self.slot.as_root_slot(tree);
        match tree.put_at_border(bn, &self.k, &root_slot, &mut fac, guard) {
            BorderWrite::Done { prev, hint } => {
                self.result = prev.map(|p| p as *const V as *mut V as *mut ());
                // Anchor-only capture (taken under the lock by the
                // shared completion) so batched write misses can
                // refresh a hint cache, exactly like the sequential
                // write paths.
                self.hint = hint;
                Phase::Done
            }
            BorderWrite::Layer { root, node, slot } => self.enter_layer(root, node, slot),
        }
    }
}

/// Adapts the batch engine's indexed factory to `put.rs`'s
/// [`ValueFactory`] (which boxes the produced value).
struct IdxFactory<'a, V> {
    idx: usize,
    f: &'a mut dyn FnMut(usize, Option<&V>) -> V,
}

impl<V> ValueFactory<V> for IdxFactory<'_, V> {
    fn make(&mut self, old: Option<&V>) -> *mut () {
        Box::into_raw(Box::new((self.f)(self.idx, old))).cast::<()>()
    }
}

/// Reusable buffers for [`Masstree::multi_get_hinted_with`]: raw result
/// pointers (type-erased so the buffer can outlive any one call's epoch
/// guard), refreshed hints, and the engine's miss list. All three keep
/// their capacity across calls, so a warm scratch makes the hinted
/// batch read allocation-free.
///
/// The raw pointers are only ever *read back* within the same call that
/// wrote them — while that call's guard is pinned — and are cleared at
/// the top of every call, so a stale pointer from a previous epoch can
/// never be dereferenced.
pub struct HintBatchScratch<V> {
    results: Vec<*const V>,
    refreshed: Vec<Option<LeafHint<V>>>,
    misses: Vec<usize>,
}

impl<V> HintBatchScratch<V> {
    /// An empty scratch (buffers grow on first use, then are reused).
    pub fn new() -> HintBatchScratch<V> {
        HintBatchScratch {
            results: Vec::new(),
            refreshed: Vec::new(),
            misses: Vec::new(),
        }
    }
}

impl<V> Default for HintBatchScratch<V> {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: the stored raw pointers are inert between calls (never
// dereferenced outside the call that wrote them, under its own pinned
// guard); moving the buffers across threads is therefore safe whenever
// the value type itself is.
unsafe impl<V: Send + Sync> Send for HintBatchScratch<V> {}

/// Round-robin scheduler core: calls `step(i)` for every unfinished
/// slot `0..n` per sweep until all have reported completion, so each
/// cursor's prefetch overlaps all other cursors' work. Completion
/// tracking is a bitmask (groups are capped at [`MAX_GROUP`] ≤ 64), so
/// scheduling allocates nothing. Shared by the put path (`run_group`
/// over a cursor slice) and the get path (`multi_get_with` over its
/// fixed cursor array).
fn run_round_robin(n: usize, mut step: impl FnMut(usize) -> bool) {
    debug_assert!(n <= 64);
    let mut pending: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    while pending != 0 {
        for i in 0..n {
            if pending & (1 << i) != 0 && step(i) {
                pending &= !(1 << i);
            }
        }
    }
}

/// Round-robin scheduler over a cursor slice.
fn run_group<V: Send + Sync + 'static>(
    tree: &Masstree<V>,
    cursors: &mut [Cursor<'_, V>],
    factory: &mut dyn FnMut(usize, Option<&V>) -> V,
    guard: &Guard,
) {
    run_round_robin(cursors.len(), |i| cursors[i].step(tree, factory, guard));
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Looks up a batch of keys with interleaved, software-pipelined
    /// descents, returning one result per key in input order.
    ///
    /// Semantically identical to calling [`Masstree::get`] once per key
    /// under the same guard; with batches of ≥ 8 independent keys the
    /// interleaving hides most per-level DRAM latency behind other
    /// operations' compute (§4.2 applied across operations).
    pub fn multi_get<'g>(&self, keys: &[&[u8]], guard: &'g Guard) -> Vec<Option<&'g V>> {
        let mut out = Vec::with_capacity(keys.len());
        self.multi_get_with(keys, guard, |_, hit| out.push(hit));
        out
    }

    /// Visitor form of [`Masstree::multi_get`]: calls `f(i, hit)` once
    /// per key, in input order, with the looked-up value borrowed under
    /// the guard. This is the zero-copy batch read path: cursors live in
    /// a fixed stack array and results are handed out as they are
    /// collected, so a steady-state call performs **no heap allocation**
    /// — callers (the storage layer's `multi_get_with`, the network
    /// server's response serializer) consume the borrowed values in
    /// place.
    pub fn multi_get_with<'g, F>(&self, keys: &[&[u8]], guard: &'g Guard, mut f: F)
    where
        F: FnMut(usize, Option<&'g V>),
    {
        if keys.len() < 2 {
            if let Some(k) = keys.first() {
                f(0, self.get(k, guard));
            }
            return;
        }
        let mut noop = |_: usize, _: Option<&V>| unreachable!("get cursors take no values");
        for (ci, chunk) in keys.chunks(MAX_GROUP).enumerate() {
            let base = ci * MAX_GROUP;
            let mut cursors: [Option<Cursor<'_, V>>; MAX_GROUP] = [const { None }; MAX_GROUP];
            for (i, k) in chunk.iter().enumerate() {
                cursors[i] = Some(Cursor::new(base + i, Mode::Get, k, self));
            }
            run_round_robin(chunk.len(), |i| {
                cursors[i]
                    .as_mut()
                    .expect("chunk cursors are initialized")
                    .step(self, &mut noop, guard)
            });
            self.stats
                .batched_ops
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            for (i, slot) in cursors[..chunk.len()].iter().enumerate() {
                let c = slot.as_ref().expect("chunk cursors are initialized");
                // SAFETY: a validated value pointer for this key; epoch
                // reclamation keeps it live for `'g`.
                f(base + i, c.result.map(|p| unsafe { &*p.cast::<V>() }));
            }
        }
    }

    /// Hinted batch lookup: each key first tries its [`LeafHint`]
    /// (validated with zero descent — see `hint.rs`); the misses run
    /// through the interleaved batch traversal engine, capturing fresh
    /// hints at their validated endpoints. `f(i, value, fate)` is called
    /// once per key **in input order**; [`HintResult::Refreshed`]
    /// carries the replacement hint the caller should remember for that
    /// key.
    ///
    /// Results are identical to [`Masstree::multi_get_with`] under the
    /// same guard — a validated hint is indistinguishable from a full
    /// descent. Allocates a fresh [`HintBatchScratch`] per call; hot
    /// paths (the storage layer's cached batch reads) hold a reusable
    /// scratch and call [`Masstree::multi_get_hinted_with`], which is
    /// allocation-free in steady state.
    pub fn multi_get_hinted<'g, F>(
        &self,
        keys: &[&[u8]],
        hints: &[Option<LeafHint<V>>],
        guard: &'g Guard,
        f: F,
    ) where
        F: FnMut(usize, Option<&'g V>, HintResult<V>),
    {
        let mut scratch = HintBatchScratch::new();
        self.multi_get_hinted_with(keys, hints, &mut scratch, guard, f);
    }

    /// [`Masstree::multi_get_hinted`] with an explicit, reusable
    /// [`HintBatchScratch`]: the result and refreshed-hint buffers keep
    /// their capacity across calls, so a warm scratch makes the whole
    /// hinted batch read perform **zero heap allocations** — restoring
    /// the uncached `multi_get_with` guarantee for the cached path.
    pub fn multi_get_hinted_with<'g, F>(
        &self,
        keys: &[&[u8]],
        hints: &[Option<LeafHint<V>>],
        scratch: &mut HintBatchScratch<V>,
        guard: &'g Guard,
        mut f: F,
    ) where
        F: FnMut(usize, Option<&'g V>, HintResult<V>),
    {
        assert_eq!(keys.len(), hints.len(), "one hint slot per key");
        // Warm every hinted node before validating any of them, so the
        // validations overlap each other's (rare) DRAM fetches.
        for h in hints.iter().flatten() {
            h.node().prefetch();
        }
        scratch.results.clear();
        scratch.results.resize(keys.len(), core::ptr::null());
        scratch.refreshed.clear();
        scratch.refreshed.resize(keys.len(), None);
        scratch.misses.clear();
        for (i, (key, hint)) in keys.iter().zip(hints).enumerate() {
            match hint {
                Some(h) => match self.get_at_hint(key, h, guard) {
                    // Present values keep their pointer; absent stays
                    // null — `misses` records which nulls are pending.
                    HintedGet::Hit(v) => {
                        scratch.results[i] = v.map_or(core::ptr::null(), |r| r as *const V)
                    }
                    HintedGet::Stale => scratch.misses.push(i),
                },
                None => scratch.misses.push(i),
            }
        }
        // The misses take the normal interleaved engine, one cursor per
        // key, each capturing a fresh hint at its endpoint.
        let mut noop = |_: usize, _: Option<&V>| unreachable!("get cursors take no values");
        for ci in (0..scratch.misses.len()).step_by(MAX_GROUP) {
            let chunk = &scratch.misses[ci..scratch.misses.len().min(ci + MAX_GROUP)];
            let mut cursors: [Option<Cursor<'_, V>>; MAX_GROUP] = [const { None }; MAX_GROUP];
            for (ci, &i) in chunk.iter().enumerate() {
                cursors[ci] = Some(Cursor::new(i, Mode::Get, keys[i], self));
            }
            run_round_robin(chunk.len(), |ci| {
                cursors[ci]
                    .as_mut()
                    .expect("chunk cursors are initialized")
                    .step(self, &mut noop, guard)
            });
            self.stats
                .batched_ops
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            for (ci, &i) in chunk.iter().enumerate() {
                let c = cursors[ci].as_ref().expect("chunk cursors are initialized");
                scratch.results[i] = c.result.map_or(core::ptr::null(), |p| p.cast::<V>());
                debug_assert!(c.hint.is_some(), "finished get cursors capture a hint");
                scratch.refreshed[i] = c.hint;
            }
        }
        for i in 0..keys.len() {
            let p = scratch.results[i];
            // SAFETY: a validated value pointer for this key (written
            // above, under this same guard); epoch reclamation keeps it
            // live for `'g`. Stale pointers from previous calls were
            // cleared by the resize.
            let v = if p.is_null() {
                None
            } else {
                Some(unsafe { &*p })
            };
            match scratch.refreshed[i] {
                Some(h) => f(i, v, HintResult::Refreshed(h)),
                None => f(i, v, HintResult::Hit),
            }
        }
    }

    /// Hinted batch write: each `(key, hint)` first attempts
    /// [`Masstree::put_at_hint`] (locked anchor entry, zero descent);
    /// the stale/unhinted ops run through the interleaved batch
    /// traversal engine, capturing fresh anchors at their completion
    /// nodes. `factory(i, old)` runs exactly once per op under its
    /// border node's lock, as in [`Masstree::multi_put_with`]. `fate(i,
    /// hinted_hit, refreshed)` reports, per op, whether its hint served
    /// the write and any replacement hint to remember.
    ///
    /// Returns the previous value per op, in input order. As with
    /// [`Masstree::multi_put`], the apply order of *duplicate* keys
    /// within one batch is unspecified (hinted ops complete before
    /// engine ops); callers needing per-key ordering split batches at
    /// duplicates, as the network server does.
    pub fn multi_put_hinted<'g, F, G>(
        &self,
        keys: &[&[u8]],
        hints: &[Option<LeafHint<V>>],
        mut factory: F,
        guard: &'g Guard,
        mut fate: G,
    ) -> Vec<Option<&'g V>>
    where
        F: FnMut(usize, Option<&V>) -> V,
        G: FnMut(usize, bool, Option<LeafHint<V>>),
    {
        assert_eq!(keys.len(), hints.len(), "one hint slot per key");
        for h in hints.iter().flatten() {
            h.node().prefetch();
        }
        let mut out: Vec<Option<&'g V>> = vec![None; keys.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, (key, hint)) in keys.iter().zip(hints).enumerate() {
            match hint {
                Some(h) => match self.put_at_hint(key, h, |old| factory(i, old), guard) {
                    Ok((prev, fresh)) => {
                        out[i] = prev;
                        // A hinted hit can still stale the hint it used
                        // (freed-slot insert, split): hand back the
                        // under-lock capture so the caller refreshes.
                        fate(i, true, fresh);
                    }
                    Err(crate::put::AnchorStale) => misses.push(i),
                },
                None => misses.push(i),
            }
        }
        for chunk in misses.chunks(MAX_GROUP) {
            let mut cursors: Vec<Cursor<'_, V>> = chunk
                .iter()
                .map(|&i| Cursor::new(i, Mode::Put, keys[i], self))
                .collect();
            run_group(self, &mut cursors, &mut factory, guard);
            self.stats
                .batched_ops
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            for c in cursors {
                // SAFETY: the previous value, kept live for `'g` by epoch
                // reclamation (it was retired under this guard).
                out[c.idx] = c.result.map(|p| unsafe { &*p.cast::<V>() });
                fate(c.idx, false, c.hint);
            }
        }
        out
    }

    /// Inserts or updates a batch of keys with interleaved descents.
    /// `keys[i]` receives `values[i]`; returns the previous value per key
    /// (as [`Masstree::put`] does), in input order.
    ///
    /// Keys may repeat within a batch, but the order in which duplicate
    /// keys' writes apply is unspecified — callers needing per-key
    /// ordering must split such batches (the network server does).
    pub fn multi_put<'g>(
        &self,
        keys: &[&[u8]],
        values: Vec<V>,
        guard: &'g Guard,
    ) -> Vec<Option<&'g V>> {
        assert_eq!(keys.len(), values.len(), "one value per key");
        let mut slots: Vec<Option<V>> = values.into_iter().map(Some).collect();
        self.multi_put_with(
            keys,
            |i, _old| slots[i].take().expect("value factory called once per op"),
            guard,
        )
    }

    /// Batch analogue of [`Masstree::put_with`]: for each key, `factory`
    /// is called exactly once — with the key's index and current value —
    /// under the owning border node's lock, and its result is installed
    /// atomically. Returns the previous value per key, in input order.
    pub fn multi_put_with<'g, F>(
        &self,
        keys: &[&[u8]],
        mut factory: F,
        guard: &'g Guard,
    ) -> Vec<Option<&'g V>>
    where
        F: FnMut(usize, Option<&V>) -> V,
    {
        let mut out = Vec::with_capacity(keys.len());
        if keys.len() < 2 {
            if let Some(k) = keys.first() {
                out.push(self.put_with(k, |old| factory(0, old), guard));
            }
            return out;
        }
        for (base, chunk) in keys.chunks(MAX_GROUP).enumerate() {
            let offset = base * MAX_GROUP;
            let mut cursors: Vec<Cursor<'_, V>> = chunk
                .iter()
                .enumerate()
                .map(|(i, k)| Cursor::new(offset + i, Mode::Put, k, self))
                .collect();
            run_group(self, &mut cursors, &mut factory, guard);
            self.stats
                .batched_ops
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            for c in cursors {
                // SAFETY: the previous value, kept live for `'g` by epoch
                // reclamation (it was retired under this guard).
                out.push(c.result.map(|p| unsafe { &*p.cast::<V>() }));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_get_matches_get() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..500u64 {
            tree.put(format!("key{i:05}").as_bytes(), i, &g);
        }
        let keys: Vec<Vec<u8>> = (0..600u64)
            .map(|i| format!("key{:05}", i * 7 % 600).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let batch = tree.multi_get(&refs, &g);
        for (k, got) in refs.iter().zip(&batch) {
            assert_eq!(*got, tree.get(k, &g));
        }
        assert!(tree.stats().snapshot().batched_ops >= 600);
    }

    #[test]
    fn multi_get_with_visits_in_order() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..200u64 {
            tree.put(format!("ord{i:04}").as_bytes(), i, &g);
        }
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|i| format!("ord{:04}", i * 3).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let mut seen = Vec::new();
        tree.multi_get_with(&refs, &g, |i, v| seen.push((i, v.copied())));
        assert_eq!(seen.len(), refs.len());
        for (pos, (i, v)) in seen.iter().enumerate() {
            assert_eq!(pos, *i, "visited in input order");
            assert_eq!(*v, tree.get(&keys[pos], &g).copied());
        }
    }

    #[test]
    fn multi_put_inserts_and_updates() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        let keys: Vec<Vec<u8>> = (0..300u64)
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let prev = tree.multi_put(&refs, (0..300u64).collect(), &g);
        assert!(prev.iter().all(|p| p.is_none()), "fresh inserts");
        let prev = tree.multi_put(&refs, (0..300u64).map(|i| i + 1000).collect(), &g);
        for (i, p) in prev.iter().enumerate() {
            assert_eq!(p.copied(), Some(i as u64), "update returns old value");
        }
        for (i, k) in refs.iter().enumerate() {
            assert_eq!(tree.get(k, &g).copied(), Some(i as u64 + 1000));
        }
    }

    #[test]
    fn multi_ops_cross_layers() {
        // Keys sharing a 24-byte prefix force three trie layers.
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        let keys: Vec<Vec<u8>> = (0..200u64)
            .map(|i| format!("prefixprefixprefixprefix{i:06}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        tree.multi_put(&refs, (0..200u64).collect(), &g);
        let got = tree.multi_get(&refs, &g);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.copied(), Some(i as u64));
        }
        // Absent keys under the same prefix return None.
        let miss = b"prefixprefixprefixprefix999999".as_slice();
        assert_eq!(tree.multi_get(&[miss, miss], &g), vec![None, None]);
    }

    #[test]
    fn multi_put_with_sees_old_values() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        let keys = [b"a".as_slice(), b"b".as_slice(), b"c".as_slice()];
        tree.multi_put(&keys, vec![1, 2, 3], &g);
        tree.multi_put_with(
            &keys,
            |i, old| old.copied().unwrap_or(0) * 10 + i as u64,
            &g,
        );
        assert_eq!(tree.get(b"a", &g).copied(), Some(10));
        assert_eq!(tree.get(b"b", &g).copied(), Some(21));
        assert_eq!(tree.get(b"c", &g).copied(), Some(32));
    }
}
