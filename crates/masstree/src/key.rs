//! Key slicing for the trie of B+-trees (§4.1–4.2 of the paper).
//!
//! A Masstree is a trie with fanout 2^64: layer `h` of the trie is indexed
//! by key bytes `[8h, 8h+8)`. Each 8-byte slice is loaded as a **big-endian**
//! `u64` ("ikey") so that native integer comparison produces the same order
//! as lexicographic byte-string comparison — the paper's most valuable
//! coding trick ("IntCmp", §4.2, worth 13–19%). Short slices are padded with
//! zero bytes; the per-slot `keylen` field disambiguates keys whose padded
//! slices collide (e.g. the 8-byte key `"ABCDEFG\0"` vs the 7-byte key
//! `"ABCDEFG"`).

/// Number of key bytes consumed per trie layer.
pub const SLICE_LEN: usize = 8;

/// Per-slot key-length codes stored in a border node's `keylen` array.
///
/// * `0..=8` — the key terminates in this layer and its slice holds that
///   many significant bytes.
/// * [`KEYLEN_SUFFIX`] — the key extends past this slice; the remainder is
///   stored in the slot's suffix block.
/// * [`KEYLEN_UNSTABLE`] — a writer is converting this slot's value into a
///   next-layer link; readers must retry (§4.6.3).
/// * [`KEYLEN_LAYER`] — the slot's `lv` holds a pointer to the next trie
///   layer's root node.
pub const KEYLEN_SUFFIX: u8 = 9;
/// Slot is mid-conversion to a layer link; readers retry.
pub const KEYLEN_UNSTABLE: u8 = 254;
/// Slot's `lv` is a next-layer root pointer.
pub const KEYLEN_LAYER: u8 = 255;

/// Extracts the 8-byte slice of `key` starting at `offset` as a big-endian
/// integer, zero-padded on the right if fewer than 8 bytes remain.
#[inline]
pub fn slice_at(key: &[u8], offset: usize) -> u64 {
    // Offsets at or past the end are legal: the slice is all padding (0).
    let rest = &key[offset.min(key.len())..];
    if rest.len() >= SLICE_LEN {
        // Fast path: a full slice is present.
        u64::from_be_bytes(rest[..SLICE_LEN].try_into().unwrap())
    } else {
        let mut buf = [0u8; SLICE_LEN];
        buf[..rest.len()].copy_from_slice(rest);
        u64::from_be_bytes(buf)
    }
}

/// Reconstructs the significant bytes of an ikey produced by [`slice_at`].
#[inline]
pub fn ikey_bytes(ikey: u64, len: usize) -> [u8; SLICE_LEN] {
    debug_assert!(len <= SLICE_LEN);
    ikey.to_be_bytes()
}

/// A cursor over a full key, tracking the current trie layer.
///
/// `ikey()` yields the current layer's slice; [`KeyCursor::advance`] moves
/// one layer (8 bytes) deeper. The cursor never outlives the borrowed key
/// bytes, so values extracted from the tree cannot dangle into it.
#[derive(Clone, Copy, Debug)]
pub struct KeyCursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> KeyCursor<'a> {
    /// Creates a cursor positioned at layer 0.
    #[inline]
    pub fn new(bytes: &'a [u8]) -> Self {
        KeyCursor { bytes, offset: 0 }
    }

    /// Creates a cursor positioned at an arbitrary byte offset (must be a
    /// multiple of [`SLICE_LEN`]). Used by hinted reads (`hint.rs`) to
    /// resume at the trie layer a leaf hint was captured in; offsets at
    /// or past the end of the key are legal (the slice is all padding).
    #[inline]
    pub fn with_offset(bytes: &'a [u8], offset: usize) -> Self {
        debug_assert_eq!(offset % SLICE_LEN, 0, "offset must be layer-aligned");
        KeyCursor { bytes, offset }
    }

    /// The full key this cursor walks.
    #[inline]
    pub fn full_key(&self) -> &'a [u8] {
        self.bytes
    }

    /// Current byte offset (8 × layer depth).
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Current trie layer (offset / 8).
    #[inline]
    pub fn layer(&self) -> usize {
        self.offset / SLICE_LEN
    }

    /// The current layer's 8-byte slice as a big-endian integer.
    #[inline]
    pub fn ikey(&self) -> u64 {
        slice_at(self.bytes, self.offset)
    }

    /// Number of key bytes remaining at the current layer.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.offset)
    }

    /// Number of significant bytes in the current slice (0..=8).
    #[inline]
    pub fn slice_len(&self) -> usize {
        self.remaining().min(SLICE_LEN)
    }

    /// True if the key extends past the current slice.
    #[inline]
    pub fn has_suffix(&self) -> bool {
        self.remaining() > SLICE_LEN
    }

    /// The bytes of the key past the current slice (empty if none).
    #[inline]
    pub fn suffix(&self) -> &'a [u8] {
        let start = (self.offset + SLICE_LEN).min(self.bytes.len());
        &self.bytes[start..]
    }

    /// The `keylen` code this key would occupy in a border node at the
    /// current layer: its slice length if it terminates here, else
    /// [`KEYLEN_SUFFIX`].
    #[inline]
    pub fn keylen_code(&self) -> u8 {
        if self.has_suffix() {
            KEYLEN_SUFFIX
        } else {
            self.slice_len() as u8
        }
    }

    /// Descends one trie layer (8 bytes deeper into the key).
    ///
    /// Every point-op descent (get, put, remove, conditional update,
    /// batch engine) crosses layers through here, so this is also the
    /// per-layer stage mark for sampled request traces: the first
    /// deeper-layer hop records `descent_deep`, separating layer-0
    /// B+-tree time from trie-recursion time in SLOWOP lines. One
    /// thread-local flag check when no span is armed.
    #[inline]
    pub fn advance(&mut self) {
        mtobs::span::mark(mtobs::Stage::DescentDeep);
        self.offset += SLICE_LEN;
    }
}

/// Collapses the keylen codes that share a slice's ">8 bytes" slot
/// ([`KEYLEN_SUFFIX`], [`KEYLEN_UNSTABLE`], [`KEYLEN_LAYER`]) onto a single
/// comparison rank so border-node search can order same-ikey slots.
///
/// Within one ikey the possible residents are the inline lengths `0..=8`
/// plus exactly one ">8" entry (a suffixed key or a layer link), so ranks
/// `0..=9` totally order them.
#[inline]
pub fn keylen_rank(code: u8) -> u8 {
    if code >= KEYLEN_SUFFIX {
        KEYLEN_SUFFIX
    } else {
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_at_full() {
        let k = b"ABCDEFGHIJ";
        assert_eq!(slice_at(k, 0), u64::from_be_bytes(*b"ABCDEFGH"));
        assert_eq!(slice_at(k, 8), u64::from_be_bytes(*b"IJ\0\0\0\0\0\0"));
    }

    #[test]
    fn slice_at_pads_with_zero() {
        assert_eq!(slice_at(b"A", 0), u64::from_be_bytes(*b"A\0\0\0\0\0\0\0"));
        assert_eq!(slice_at(b"", 0), 0);
        assert_eq!(slice_at(b"ABC", 8), 0);
    }

    #[test]
    fn integer_compare_matches_lexicographic() {
        // The central "IntCmp" property: byte order == integer order.
        let pairs: &[(&[u8], &[u8])] = &[
            (b"A", b"B"),
            (b"A", b"AB"),
            (b"ABCDEFG", b"ABCDEFG\0"),
            (b"\x00", b"\x01"),
            (b"", b"\x00"),
            (b"zzz", b"zzzz"),
        ];
        for (a, b) in pairs {
            assert!(a < b, "test precondition");
            let (ia, ib) = (slice_at(a, 0), slice_at(b, 0));
            // Equal slices are allowed only when keylen disambiguates.
            if ia == ib {
                assert!(a.len().min(8) < b.len().min(8));
            } else {
                assert!(ia < ib, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn cursor_walks_layers() {
        let key = b"0123456789abcdefXY";
        let mut c = KeyCursor::new(key);
        assert_eq!(c.layer(), 0);
        assert_eq!(c.slice_len(), 8);
        assert!(c.has_suffix());
        assert_eq!(c.suffix(), b"89abcdefXY");
        assert_eq!(c.keylen_code(), KEYLEN_SUFFIX);
        c.advance();
        assert_eq!(c.layer(), 1);
        assert_eq!(c.ikey(), u64::from_be_bytes(*b"89abcdef"));
        assert!(c.has_suffix());
        c.advance();
        assert_eq!(c.slice_len(), 2);
        assert!(!c.has_suffix());
        assert_eq!(c.keylen_code(), 2);
        assert_eq!(c.suffix(), b"");
    }

    #[test]
    fn cursor_exact_multiple_of_eight() {
        // A 16-byte key at layer 2 has an empty slice: keylen code 0.
        let key = b"0123456789abcdef";
        let mut c = KeyCursor::new(key);
        c.advance();
        assert_eq!(c.slice_len(), 8);
        assert_eq!(c.keylen_code(), 8);
        c.advance();
        assert_eq!(c.slice_len(), 0);
        assert_eq!(c.keylen_code(), 0);
        assert_eq!(c.ikey(), 0);
    }

    #[test]
    fn keylen_rank_groups_layer_markers() {
        assert_eq!(keylen_rank(0), 0);
        assert_eq!(keylen_rank(8), 8);
        assert_eq!(keylen_rank(KEYLEN_SUFFIX), 9);
        assert_eq!(keylen_rank(KEYLEN_LAYER), 9);
        assert_eq!(keylen_rank(KEYLEN_UNSTABLE), 9);
    }

    #[test]
    fn empty_key_is_representable() {
        let c = KeyCursor::new(b"");
        assert_eq!(c.ikey(), 0);
        assert_eq!(c.keylen_code(), 0);
        assert!(!c.has_suffix());
    }
}
