//! Range queries (`getrange`/"scan", §3 of the paper) and **resumable
//! scans**.
//!
//! Scans are forward, in lexicographic key order, and — per the paper —
//! not atomic with respect to concurrent inserts and removes: each border
//! node is read through one validated snapshot, concurrent splits cause a
//! re-descent from the current position, and a scan never returns a key
//! twice or out of order.
//!
//! Multi-layer traversal recurses through layer links depth-first; the
//! current key prefix is threaded down so emitted keys are reconstructed
//! without storing full keys in the tree.
//!
//! # Resumable scans
//!
//! A chunked range read (`getrange(k, n)` repeated with advancing `k`)
//! pays a full root-to-leaf descent per chunk even though each chunk
//! starts exactly where the last one stopped. A [`ScanCursor`] remembers
//! that stop point — the border node as a validated
//! [`DescentAnchor`](crate::anchor::DescentAnchor) plus the full-key
//! bound — and [`Masstree::scan_resume`] re-enters the tree there with
//! **zero descent** when the anchor still validates
//! (`DescentAnchor::enter_for_scan`: same slab incarnation, no split, no
//! deletion; concurrent inserts are fine because every border node is
//! re-snapshotted under its own version bracket anyway). A failed
//! validation falls back to a normal descent from the recorded bound, so
//! a resumed scan is always exactly equivalent to a fresh scan from that
//! bound — never stale, never duplicated, never out of order.
//!
//! # Allocation discipline
//!
//! The scan hot path performs **no heap allocation in steady state**:
//! border snapshots land in a fixed `[Entry; WIDTH]` on the stack, the
//! key prefix, per-layer lower bound and restart key live in a
//! [`ScanScratch`] whose buffers keep their capacity across calls, and
//! the visitor borrows `(&[u8], &V)` under the epoch guard instead of
//! materializing owned pairs. `scan` draws a thread-local scratch;
//! callers that want explicit reuse (or several scratches) use
//! [`Masstree::scan_with`]. A warm [`ScanCursor`] likewise reuses its
//! bound buffer across resumes.

use core::sync::atomic::Ordering;
use std::cell::RefCell;

use crossbeam::epoch::Guard;

use crate::anchor::DescentAnchor;
use crate::key::{slice_at, KEYLEN_LAYER, KEYLEN_SUFFIX, SLICE_LEN};
use crate::node::{BorderNode, ExtractedLv, NodePtr};
use crate::permutation::WIDTH;
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};
use crate::version::Version;

/// One decoded border-node entry captured in a validated snapshot.
/// Shared with the reverse scanner (`scan_rev.rs`).
#[derive(Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) ikey: u64,
    /// Inline length 0..=8, [`KEYLEN_SUFFIX`] or [`KEYLEN_LAYER`].
    pub(crate) code: u8,
    pub(crate) lv: *mut (),
    pub(crate) suffix: *mut KeySuffix,
}

impl Entry {
    pub(crate) const EMPTY: Entry = Entry {
        ikey: 0,
        code: 0,
        lv: core::ptr::null_mut(),
        suffix: core::ptr::null_mut(),
    };
}

/// Outcome of a (sub-)scan. Shared with the reverse scanner.
pub(crate) enum ScanStatus {
    /// Layer exhausted; continue with the caller's next entry.
    Done,
    /// The callback asked to stop. The resume point (full-key bound in
    /// [`ScanScratch::restart`], plus an optional anchor) has been
    /// written to the scan's [`StopPoint`] slot.
    Stopped,
    /// A deleted node/layer was encountered; the full restart key
    /// (enclosing prefix + layer remainder) has been written to
    /// [`ScanScratch::restart`] and the whole scan restarts there.
    Restart,
}

/// The in-layer node walk hit a split or deletion and the caller must
/// re-descend from its bound. Shared with the reverse scanner.
pub(crate) struct Redescend;

/// Where a stopped scan resumes: written at the innermost stop site and
/// propagated out untouched (the full-key bound travels in
/// [`ScanScratch::restart`]). Shared with the reverse scanner.
pub(crate) enum StopPoint<V> {
    /// Resume at `scratch.restart`, optionally with a validated anchor
    /// for the border node the scan stopped in.
    At { anchor: Option<DescentAnchor<V>> },
    /// Nothing remains past the stop position: the cursor is done.
    Exhausted,
}

/// Reusable scratch state for scans.
///
/// Holds the key-prefix, per-layer bound and restart-key buffers a scan
/// threads through its layer recursion. All buffers retain their
/// capacity across scans, so a warmed-up scratch makes
/// [`Masstree::scan_with`] / [`Masstree::scan_rev_with`] allocation-free
/// in steady state. [`Masstree::scan`] and [`Masstree::scan_rev`] use a
/// thread-local scratch automatically; hold your own only when you want
/// deterministic reuse (benchmarks, allocation tests) or run scans from
/// inside another scan's visitor.
#[derive(Default)]
pub struct ScanScratch {
    /// Key bytes of the enclosing trie layers.
    pub(crate) prefix: Vec<u8>,
    /// Bound for the key *remainder* within the current layer (inclusive
    /// lower bound for forward scans, inclusive upper bound for reverse).
    pub(crate) bound: Vec<u8>,
    /// Full key to restart from after hitting a deleted node/layer, and
    /// the full-key resume bound written when a visitor stops.
    pub(crate) restart: Vec<u8>,
}

impl ScanScratch {
    /// A scratch with empty buffers (they grow on first use and are then
    /// reused).
    pub fn new() -> ScanScratch {
        ScanScratch::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::new());
}

/// Runs `f` with the thread-local scan scratch. Falls back to a fresh
/// scratch when the thread-local one is busy (a scan started from
/// another scan's visitor) or inaccessible (thread teardown).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut ScanScratch) -> R) -> R {
    let mut f = Some(f);
    let attempt = SCRATCH.try_with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => (f.take().expect("closure runs once"))(&mut scratch),
        Err(_) => (f.take().expect("closure runs once"))(&mut ScanScratch::new()),
    });
    match attempt {
        Ok(r) => r,
        Err(_) => (f.take().expect("closure runs once"))(&mut ScanScratch::new()),
    }
}

/// A resumable scan position: the full-key bound the scan continues
/// from, the direction, and (when the scan stopped inside a border node
/// that may still be valid) a [`DescentAnchor`] that lets the next
/// chunk re-enter that node with zero descent. Safe to hold across (and
/// outside) epoch guards, like any anchor.
///
/// Obtain one with [`ScanCursor::forward`]/[`ScanCursor::reverse_from`],
/// feed it to [`Masstree::scan_resume`] repeatedly; `is_done` reports
/// tree exhaustion. The bound buffer is reused across resumes, so a
/// warm cursor allocates nothing.
pub struct ScanCursor<V> {
    pub(crate) anchor: Option<DescentAnchor<V>>,
    pub(crate) bound: Vec<u8>,
    pub(crate) reverse: bool,
    pub(crate) done: bool,
}

impl<V> ScanCursor<V> {
    /// A cursor for an ascending scan starting at `start` (inclusive).
    pub fn forward(start: &[u8]) -> ScanCursor<V> {
        ScanCursor {
            anchor: None,
            bound: start.to_vec(),
            reverse: false,
            done: false,
        }
    }

    /// A cursor for a descending scan starting at `start` (inclusive).
    pub fn reverse_from(start: &[u8]) -> ScanCursor<V> {
        ScanCursor {
            anchor: None,
            bound: start.to_vec(),
            reverse: true,
            done: false,
        }
    }

    /// Re-aims this cursor at a fresh scan (dropping the anchor),
    /// reusing the bound buffer's capacity.
    pub fn reset(&mut self, start: &[u8], reverse: bool) {
        self.anchor = None;
        self.bound.clear();
        self.bound.extend_from_slice(start);
        self.reverse = reverse;
        self.done = false;
    }

    /// The full-key bound the next resume continues from (inclusive).
    pub fn bound(&self) -> &[u8] {
        &self.bound
    }

    /// Whether this cursor scans in descending order.
    pub fn is_reverse(&self) -> bool {
        self.reverse
    }

    /// True once the scan has exhausted the tree; further resumes visit
    /// nothing.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True when the cursor holds a validated-anchor candidate (the
    /// next resume will *attempt* a zero-descent re-entry).
    pub fn has_anchor(&self) -> bool {
        self.anchor.is_some()
    }

    /// Adopts the stop point a scan pass left in the scratch.
    pub(crate) fn adopt_stop(&mut self, scratch: &ScanScratch, stop: Option<StopPoint<V>>) {
        self.bound.clear();
        self.bound.extend_from_slice(&scratch.restart);
        match stop {
            Some(StopPoint::At { anchor }) => self.anchor = anchor,
            Some(StopPoint::Exhausted) => {
                self.anchor = None;
                self.done = true;
            }
            None => self.anchor = None,
        }
    }
}

impl<V> core::fmt::Debug for ScanCursor<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ScanCursor({} {:?}, anchored: {}, done: {})",
            if self.reverse { "rev" } else { "fwd" },
            &self.bound,
            self.anchor.is_some(),
            self.done
        )
    }
}

/// What a [`Masstree::scan_resume`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanResumeOutcome {
    /// Entries visited this pass.
    pub visited: usize,
    /// True when the pass re-entered the tree through the cursor's
    /// validated anchor (zero descent); false when it had no anchor or
    /// the anchor failed validation and a full descent ran instead.
    pub resumed: bool,
}

/// Writes the smallest key strictly greater than every key carrying
/// prefix `p` into `out`; returns `false` (out cleared) when no such
/// key exists (`p` is empty or all `0xff`).
fn increment_prefix(p: &[u8], out: &mut Vec<u8>) -> bool {
    out.clear();
    out.extend_from_slice(p);
    while let Some(last) = out.last_mut() {
        if *last == 0xff {
            out.pop();
        } else {
            *last += 1;
            return true;
        }
    }
    false
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Visits keys at or after `start` in lexicographic order, calling
    /// `f(key, value)` until it returns `false` or the tree is exhausted.
    /// Returns the number of entries visited.
    ///
    /// The scan is not atomic: entries inserted or removed while it runs
    /// may or may not be observed, but order and uniqueness are
    /// guaranteed, and every entry present for the whole scan is visited.
    ///
    /// The key slice passed to `f` is assembled in a scratch buffer and
    /// is only valid for that call; the value reference lives for the
    /// guard's lifetime. Uses the thread-local [`ScanScratch`]; see
    /// [`Masstree::scan_with`] to manage the scratch explicitly.
    pub fn scan<'g, F>(&self, start: &[u8], guard: &'g Guard, mut f: F) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        with_scratch(|scratch| self.scan_with(start, scratch, guard, |k, v| f(k, v)))
    }

    /// [`Masstree::scan`] with an explicit [`ScanScratch`]. With a warm
    /// scratch the scan performs no heap allocation.
    pub fn scan_with<'g, F>(
        &self,
        start: &[u8],
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        mut f: F,
    ) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        let mut count = 0usize;
        let mut stop = None;
        scratch.bound.clear();
        scratch.bound.extend_from_slice(start);
        loop {
            let root = self.load_root();
            scratch.prefix.clear();
            match self.scan_layer(
                root,
                scratch,
                guard,
                &mut |k, v| {
                    count += 1;
                    f(k, v)
                },
                &mut stop,
            ) {
                ScanStatus::Done | ScanStatus::Stopped => return count,
                ScanStatus::Restart => {
                    Stats::bump(&self.stats.op_restarts);
                    core::mem::swap(&mut scratch.bound, &mut scratch.restart);
                }
            }
        }
    }

    /// Runs one pass of a resumable scan: visits entries from the
    /// cursor's bound in the cursor's direction until `f` returns
    /// `false` or the tree is exhausted, then records the new stop point
    /// (bound + anchor) back into the cursor.
    ///
    /// When the cursor's anchor validates
    /// ([`crate::anchor::DescentAnchor::enter_for_scan`]) the pass
    /// starts at the remembered border node with **zero descent**;
    /// otherwise it descends from the bound like a fresh scan. Either
    /// way the visited sequence is exactly what [`Masstree::scan`] /
    /// [`Masstree::scan_rev`] from the cursor's bound would produce.
    ///
    /// Uses the thread-local [`ScanScratch`]; see
    /// [`Masstree::scan_resume_with`].
    pub fn scan_resume<'g, F>(
        &self,
        cursor: &mut ScanCursor<V>,
        guard: &'g Guard,
        mut f: F,
    ) -> ScanResumeOutcome
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        with_scratch(|scratch| self.scan_resume_with(cursor, scratch, guard, |k, v| f(k, v)))
    }

    /// [`Masstree::scan_resume`] with an explicit scratch (warm scratch
    /// + warm cursor ⇒ no heap allocation).
    pub fn scan_resume_with<'g, F>(
        &self,
        cursor: &mut ScanCursor<V>,
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        mut f: F,
    ) -> ScanResumeOutcome
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        if cursor.done {
            return ScanResumeOutcome {
                visited: 0,
                resumed: false,
            };
        }
        let mut count = 0usize;
        let mut stop: Option<StopPoint<V>> = None;
        let mut stopped = false;
        let mut resumed = false;
        let mut counting = |k: &[u8], v: &'g V| {
            count += 1;
            f(k, v)
        };

        // Fast path: re-enter the tree at the anchored border node.
        if let Some(anchor) = cursor.anchor.take() {
            let off = anchor.offset();
            if off <= cursor.bound.len() && off % SLICE_LEN == 0 {
                if let Some(bn) = anchor.enter_for_scan(guard) {
                    resumed = true;
                    scratch.prefix.clear();
                    scratch.prefix.extend_from_slice(&cursor.bound[..off]);
                    scratch.bound.clear();
                    scratch.bound.extend_from_slice(&cursor.bound[off..]);
                    let status = if cursor.reverse {
                        let mut everything = false;
                        self.scan_rev_layer_nodes(
                            bn,
                            &mut everything,
                            scratch,
                            guard,
                            &mut counting,
                            &mut stop,
                        )
                    } else {
                        self.scan_layer_nodes(bn, scratch, guard, &mut counting, &mut stop)
                    };
                    match status {
                        Ok(ScanStatus::Stopped) => {
                            cursor.adopt_stop(scratch, stop);
                            return ScanResumeOutcome {
                                visited: count,
                                resumed,
                            };
                        }
                        Ok(ScanStatus::Done) => {
                            // The anchored layer is exhausted in the scan
                            // direction; continue in the enclosing layers
                            // via a fresh descent past/below the layer's
                            // whole prefix.
                            if off == 0 {
                                cursor.done = true;
                                cursor.anchor = None;
                                return ScanResumeOutcome {
                                    visited: count,
                                    resumed,
                                };
                            }
                            if cursor.reverse {
                                // Everything < the prefixed keys: the
                                // prefix itself is the inclusive ceiling
                                // (any shorter prefix of it sorts below).
                                cursor.bound.truncate(off);
                            } else {
                                if !increment_prefix(&cursor.bound[..off], &mut scratch.restart) {
                                    cursor.done = true;
                                    cursor.anchor = None;
                                    return ScanResumeOutcome {
                                        visited: count,
                                        resumed,
                                    };
                                }
                                cursor.bound.clear();
                                cursor.bound.extend_from_slice(&scratch.restart);
                            }
                        }
                        Ok(ScanStatus::Restart) => {
                            // Deleted node/layer mid-walk: full restart
                            // from the recorded key.
                            cursor.bound.clear();
                            cursor.bound.extend_from_slice(&scratch.restart);
                        }
                        Err(Redescend) => {
                            // Split or deletion at the current node: fall
                            // back to a descent from the current position
                            // (prefix + advanced bound).
                            scratch.restart.clear();
                            scratch.restart.extend_from_slice(&scratch.prefix);
                            scratch.restart.extend_from_slice(&scratch.bound);
                            cursor.bound.clear();
                            cursor.bound.extend_from_slice(&scratch.restart);
                        }
                    }
                }
            }
        }

        // Full path: descend from the cursor's bound, like
        // `scan_with`/`scan_rev_with`, but capturing the stop point.
        loop {
            let root = self.load_root();
            scratch.prefix.clear();
            scratch.bound.clear();
            scratch.bound.extend_from_slice(&cursor.bound);
            let status = if cursor.reverse {
                self.scan_rev_layer(root, false, scratch, guard, &mut counting, &mut stop)
            } else {
                self.scan_layer(root, scratch, guard, &mut counting, &mut stop)
            };
            match status {
                ScanStatus::Done => {
                    cursor.done = true;
                    cursor.anchor = None;
                    break;
                }
                ScanStatus::Stopped => {
                    stopped = true;
                    break;
                }
                ScanStatus::Restart => {
                    Stats::bump(&self.stats.op_restarts);
                    cursor.bound.clear();
                    cursor.bound.extend_from_slice(&scratch.restart);
                }
            }
        }
        if stopped {
            cursor.adopt_stop(scratch, stop);
        }
        ScanResumeOutcome {
            visited: count,
            resumed,
        }
    }

    /// Collects up to `limit` `(key, value)` pairs at or after `start`
    /// (the paper's `getrange(k, n)`).
    pub fn get_range<'g>(
        &self,
        start: &[u8],
        limit: usize,
        guard: &'g Guard,
    ) -> Vec<(Vec<u8>, &'g V)> {
        let mut out = Vec::with_capacity(limit.min(1024));
        if limit == 0 {
            return out;
        }
        self.scan(start, guard, |k, v| {
            out.push((k.to_vec(), v));
            out.len() < limit
        });
        out
    }

    /// Total number of keys (O(n); scans the whole tree).
    pub fn count_keys(&self, guard: &Guard) -> usize {
        self.scan(b"", guard, |_, _| true)
    }

    /// Scans one trie layer rooted at `root`. `scratch.prefix` holds the
    /// key bytes of enclosing layers; `scratch.bound` is the inclusive
    /// lower bound for the key *remainder* within this layer. Restores
    /// `prefix` before returning; `bound` is consumed (the caller
    /// rewrites it from its own resume point).
    pub(crate) fn scan_layer<'g>(
        &self,
        root: NodePtr<V>,
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
        stop: &mut Option<StopPoint<V>>,
    ) -> ScanStatus {
        'redescend: loop {
            let bikey = slice_at(&scratch.bound, 0);
            let mut root = root;
            let (n, _v) = match self.find_border(&mut root, bikey, guard) {
                Ok(x) => x,
                Err(Restart) => {
                    scratch.restart.clear();
                    scratch.restart.extend_from_slice(&scratch.prefix);
                    scratch.restart.extend_from_slice(&scratch.bound);
                    return ScanStatus::Restart;
                }
            };
            match self.scan_layer_nodes(n, scratch, guard, f, stop) {
                Ok(status) => return status,
                Err(Redescend) => continue 'redescend,
            }
        }
    }

    /// The in-layer node walk of [`Masstree::scan_layer`], starting at
    /// border node `n` (reached by a descent **or** through a validated
    /// scan anchor): snapshot each node, emit entries past the bound,
    /// follow the leaf list right. `Err(Redescend)` reports a split or
    /// deletion the caller must re-descend (or fall back) from.
    pub(crate) fn scan_layer_nodes<'g>(
        &self,
        mut n: &'g BorderNode<V>,
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
        stop: &mut Option<StopPoint<V>>,
    ) -> Result<ScanStatus, Redescend> {
        let mut entries = [Entry::EMPTY; WIDTH];
        loop {
            let (filled, next, v) = match Self::snapshot_border(n, &mut entries) {
                Ok(x) => x,
                Err(()) => return Err(Redescend),
            };
            for e in &entries[..filled] {
                // Inclusive lower-bound filter against the remainder.
                let bikey = slice_at(&scratch.bound, 0);
                let brank = if scratch.bound.len() > SLICE_LEN {
                    KEYLEN_SUFFIX
                } else {
                    scratch.bound.len() as u8
                };
                if e.ikey < bikey {
                    continue;
                }
                let erank = crate::key::keylen_rank(e.code);
                if e.ikey == bikey && erank < brank {
                    continue;
                }
                let in_rank9_boundary =
                    e.ikey == bikey && erank == KEYLEN_SUFFIX && brank == KEYLEN_SUFFIX;
                let slice_bytes = e.ikey.to_be_bytes();
                match e.code {
                    KEYLEN_LAYER => {
                        // Sub-layer bound: the remainder past this
                        // slice, or everything from the start.
                        if in_rank9_boundary {
                            scratch.bound.drain(..SLICE_LEN);
                        } else {
                            scratch.bound.clear();
                        }
                        scratch.prefix.extend_from_slice(&slice_bytes);
                        // Per-layer stage mark for sampled traces: the
                        // scan's first recursion into a deeper trie
                        // layer (mirrors `KeyCursor::advance` on the
                        // point-op paths).
                        mtobs::span::mark(mtobs::Stage::DescentDeep);
                        let st = self.scan_layer(
                            NodePtr::from_raw(e.lv.cast()),
                            scratch,
                            guard,
                            f,
                            stop,
                        );
                        let plen = scratch.prefix.len() - SLICE_LEN;
                        scratch.prefix.truncate(plen);
                        match st {
                            ScanStatus::Done => {}
                            other => return Ok(other),
                        }
                        // Resume strictly after the whole sub-layer. A
                        // layer under the maximum slice is the last
                        // possible entry of the whole layer.
                        match e.ikey.checked_add(1) {
                            Some(nk) => {
                                scratch.bound.clear();
                                scratch.bound.extend_from_slice(&nk.to_be_bytes());
                            }
                            None => return Ok(ScanStatus::Done),
                        }
                    }
                    KEYLEN_SUFFIX => {
                        debug_assert!(!e.suffix.is_null());
                        // SAFETY: captured in a validated snapshot;
                        // epoch keeps the block live for the guard.
                        let sb = unsafe { KeySuffix::bytes(e.suffix) };
                        if in_rank9_boundary && sb < &scratch.bound[SLICE_LEN..] {
                            continue;
                        }
                        let plen = scratch.prefix.len();
                        scratch.prefix.extend_from_slice(&slice_bytes);
                        scratch.prefix.extend_from_slice(sb);
                        // SAFETY: validated value pointer, epoch-live.
                        let keep = f(&scratch.prefix, unsafe { &*e.lv.cast::<V>() });
                        scratch.prefix.truncate(plen);
                        // Advance the bound past the emitted key *before*
                        // honoring a stop, so the stop point is always
                        // "strictly after the last emitted entry".
                        scratch.bound.clear();
                        scratch.bound.extend_from_slice(&slice_bytes);
                        scratch.bound.extend_from_slice(sb);
                        scratch.bound.push(0);
                        if !keep {
                            return Ok(self.stopped_at(n, v, scratch, stop));
                        }
                    }
                    len => {
                        let len = len as usize;
                        let plen = scratch.prefix.len();
                        scratch.prefix.extend_from_slice(&slice_bytes[..len]);
                        // SAFETY: validated value pointer, epoch-live.
                        let keep = f(&scratch.prefix, unsafe { &*e.lv.cast::<V>() });
                        scratch.prefix.truncate(plen);
                        scratch.bound.clear();
                        scratch.bound.extend_from_slice(&slice_bytes[..len]);
                        scratch.bound.push(0);
                        if !keep {
                            return Ok(self.stopped_at(n, v, scratch, stop));
                        }
                    }
                }
            }
            if next.is_null() {
                return Ok(ScanStatus::Done);
            }
            // SAFETY: leaf-list pointers stay live under the epoch.
            n = unsafe { &*next };
        }
    }

    /// Records a forward scan's stop point: the full-key resume bound in
    /// `scratch.restart` and a validated anchor for the node the scan
    /// stopped in.
    fn stopped_at(
        &self,
        n: &BorderNode<V>,
        v: Version,
        scratch: &mut ScanScratch,
        stop: &mut Option<StopPoint<V>>,
    ) -> ScanStatus {
        scratch.restart.clear();
        scratch.restart.extend_from_slice(&scratch.prefix);
        scratch.restart.extend_from_slice(&scratch.bound);
        *stop = Some(StopPoint::At {
            anchor: Some(DescentAnchor::capture(n, v, scratch.prefix.len())),
        });
        ScanStatus::Stopped
    }

    /// Captures a consistent snapshot of a border node's live entries
    /// (into the caller's fixed buffer, permutation order), its `next`
    /// pointer and the version that validated the snapshot. Local
    /// inserts retry in place; splits and deletions return `Err` so the
    /// caller re-descends from its bound.
    #[allow(clippy::type_complexity)]
    fn snapshot_border(
        n: &BorderNode<V>,
        entries: &mut [Entry; WIDTH],
    ) -> Result<(usize, *mut BorderNode<V>, Version), ()> {
        loop {
            let v = n.version().stable();
            if v.is_deleted() {
                return Err(());
            }
            let perm = n.permutation();
            let mut filled = 0usize;
            let mut unstable = false;
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let ikey = n.keyslice[slot].load(Ordering::Acquire);
                let (code, ex) = n.extract_lv(slot);
                match ex {
                    ExtractedLv::Unstable => {
                        unstable = true;
                        break;
                    }
                    ExtractedLv::Layer(p) => {
                        entries[filled] = Entry {
                            ikey,
                            code: KEYLEN_LAYER,
                            lv: p.cast::<()>(),
                            suffix: core::ptr::null_mut(),
                        };
                        filled += 1;
                    }
                    ExtractedLv::Value(p) => {
                        let suffix = if code == KEYLEN_SUFFIX {
                            n.suffix[slot].load(Ordering::Acquire)
                        } else {
                            core::ptr::null_mut()
                        };
                        entries[filled] = Entry {
                            ikey,
                            code,
                            lv: p,
                            suffix,
                        };
                        filled += 1;
                    }
                }
            }
            let next = n.next.load(Ordering::Acquire);
            let v2 = n.version().load(Ordering::Acquire);
            if !unstable && !v.has_changed(v2) {
                return Ok((filled, next, v));
            }
            if v.has_split(n.version().stable()) {
                return Err(());
            }
            core::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_retain_capacity_across_scans() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..200u64 {
            tree.put(
                format!("some/long/shared/prefix/key{i:04}").as_bytes(),
                i,
                &g,
            );
        }
        let mut scratch = ScanScratch::new();
        // Warm-up pass: buffers grow to their steady-state capacity.
        assert_eq!(tree.scan_with(b"", &mut scratch, &g, |_, _| true), 200);
        assert_eq!(
            tree.scan_with(b"some/long", &mut scratch, &g, |_, _| true),
            200
        );
        let cap_prefix = scratch.prefix.capacity();
        let cap_bound = scratch.bound.capacity();
        assert!(cap_prefix > 0 && cap_bound > 0, "warmed up");
        // Steady state: identical scans reuse the warm buffers as-is.
        assert_eq!(tree.scan_with(b"", &mut scratch, &g, |_, _| true), 200);
        assert_eq!(
            tree.scan_with(b"some/long", &mut scratch, &g, |_, _| true),
            200
        );
        assert_eq!(scratch.prefix.capacity(), cap_prefix);
        assert_eq!(scratch.bound.capacity(), cap_bound);
    }

    #[test]
    fn reentrant_scan_from_visitor_works() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..50u64 {
            tree.put(format!("k{i:03}").as_bytes(), i, &g);
        }
        // A scan whose visitor runs another scan must not corrupt the
        // outer scan's thread-local scratch.
        let mut inner_total = 0usize;
        let outer = tree.scan(b"", &g, |_, _| {
            inner_total += tree.scan(b"k04", &g, |_, _| true);
            true
        });
        assert_eq!(outer, 50);
        assert_eq!(inner_total, 50 * 10, "each inner scan sees k040..k049");
    }

    #[test]
    fn increment_prefix_carries_and_exhausts() {
        let mut out = Vec::new();
        assert!(increment_prefix(b"abc", &mut out));
        assert_eq!(out, b"abd");
        assert!(increment_prefix(b"ab\xff", &mut out));
        assert_eq!(out, b"ac");
        assert!(!increment_prefix(b"\xff\xff", &mut out));
        assert!(!increment_prefix(b"", &mut out));
    }

    #[test]
    fn chunked_resume_equals_full_scan() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        // Mixed shapes: inline keys, suffixed keys, deep layers.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for i in 0..300u64 {
            keys.push(format!("k{i:04}").into_bytes());
            keys.push(format!("deep/shared/prefix/{i:04}").into_bytes());
        }
        for (i, k) in keys.iter().enumerate() {
            tree.put(k, i as u64, &g);
        }
        let mut full = Vec::new();
        tree.scan(b"", &g, |k, v| {
            full.push((k.to_vec(), *v));
            true
        });
        for chunk in [1usize, 3, 7, 64] {
            let mut cur: ScanCursor<u64> = ScanCursor::forward(b"");
            let mut got = Vec::new();
            let mut resumes = 0;
            while !cur.is_done() {
                let mut left = chunk;
                let out = tree.scan_resume(&mut cur, &g, |k, v| {
                    got.push((k.to_vec(), *v));
                    left -= 1;
                    left > 0
                });
                resumes += out.resumed as usize;
            }
            assert_eq!(got, full, "chunk {chunk}");
            assert!(
                resumes > 0 || chunk >= full.len(),
                "anchored resumes never validated at chunk {chunk}"
            );
        }
    }

    #[test]
    fn chunked_reverse_resume_equals_full_scan_rev() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..300u64 {
            tree.put(format!("r{i:04}").as_bytes(), i, &g);
            tree.put(format!("deep/shared/prefix/{i:04}").as_bytes(), i, &g);
        }
        let mut full = Vec::new();
        tree.scan_rev(b"\xff\xff\xff", &g, |k, v| {
            full.push((k.to_vec(), *v));
            true
        });
        for chunk in [1usize, 5, 50] {
            let mut cur: ScanCursor<u64> = ScanCursor::reverse_from(b"\xff\xff\xff");
            let mut got = Vec::new();
            while !cur.is_done() {
                let mut left = chunk;
                tree.scan_resume(&mut cur, &g, |k, v| {
                    got.push((k.to_vec(), *v));
                    left -= 1;
                    left > 0
                });
            }
            assert_eq!(got, full, "reverse chunk {chunk}");
        }
    }

    #[test]
    fn resume_observes_intervening_writes_without_reordering() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in (0..400u64).step_by(2) {
            tree.put(format!("w{i:04}").as_bytes(), i, &g);
        }
        let mut cur: ScanCursor<u64> = ScanCursor::forward(b"");
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut round = 1u64;
        while !cur.is_done() {
            let mut left = 10usize;
            tree.scan_resume(&mut cur, &g, |k, _| {
                got.push(k.to_vec());
                left -= 1;
                left > 0
            });
            // Churn between chunks: insert odd keys ahead and behind,
            // remove some already-visited keys (forcing splits, freed
            // slots and anchor invalidations).
            let b = round * 20 % 400;
            tree.put(format!("w{:04}", b + 1).as_bytes(), b, &g);
            tree.remove(format!("w{:04}", round * 4 % 200).as_bytes(), &g);
            round += 1;
        }
        // Uniqueness + strict order despite churn.
        for w in got.windows(2) {
            assert!(w[0] < w[1], "resumed scan reordered: {:?} {:?}", w[0], w[1]);
        }
    }
}
