//! Range queries (`getrange`/"scan", §3 of the paper).
//!
//! Scans are forward, in lexicographic key order, and — per the paper —
//! not atomic with respect to concurrent inserts and removes: each border
//! node is read through one validated snapshot, concurrent splits cause a
//! re-descent from the current position, and a scan never returns a key
//! twice or out of order.
//!
//! Multi-layer traversal recurses through layer links depth-first; the
//! current key prefix is threaded down so emitted keys are reconstructed
//! without storing full keys in the tree.
//!
//! # Allocation discipline
//!
//! The scan hot path performs **no heap allocation in steady state**:
//! border snapshots land in a fixed `[Entry; WIDTH]` on the stack, the
//! key prefix, per-layer lower bound and restart key live in a
//! [`ScanScratch`] whose buffers keep their capacity across calls, and
//! the visitor borrows `(&[u8], &V)` under the epoch guard instead of
//! materializing owned pairs. `scan` draws a thread-local scratch;
//! callers that want explicit reuse (or several scratches) use
//! [`Masstree::scan_with`].

use core::sync::atomic::Ordering;
use std::cell::RefCell;

use crossbeam::epoch::Guard;

use crate::key::{slice_at, KEYLEN_LAYER, KEYLEN_SUFFIX, SLICE_LEN};
use crate::node::{BorderNode, ExtractedLv, NodePtr};
use crate::permutation::WIDTH;
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};

/// One decoded border-node entry captured in a validated snapshot.
/// Shared with the reverse scanner (`scan_rev.rs`).
#[derive(Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) ikey: u64,
    /// Inline length 0..=8, [`KEYLEN_SUFFIX`] or [`KEYLEN_LAYER`].
    pub(crate) code: u8,
    pub(crate) lv: *mut (),
    pub(crate) suffix: *mut KeySuffix,
}

impl Entry {
    pub(crate) const EMPTY: Entry = Entry {
        ikey: 0,
        code: 0,
        lv: core::ptr::null_mut(),
        suffix: core::ptr::null_mut(),
    };
}

/// Outcome of a (sub-)scan. Shared with the reverse scanner.
pub(crate) enum ScanStatus {
    /// Layer exhausted; continue with the caller's next entry.
    Done,
    /// The callback asked to stop.
    Stopped,
    /// A deleted node/layer was encountered; the full restart key
    /// (enclosing prefix + layer remainder) has been written to
    /// [`ScanScratch::restart`] and the whole scan restarts there.
    Restart,
}

/// Reusable scratch state for scans.
///
/// Holds the key-prefix, per-layer bound and restart-key buffers a scan
/// threads through its layer recursion. All buffers retain their
/// capacity across scans, so a warmed-up scratch makes
/// [`Masstree::scan_with`] / [`Masstree::scan_rev_with`] allocation-free
/// in steady state. [`Masstree::scan`] and [`Masstree::scan_rev`] use a
/// thread-local scratch automatically; hold your own only when you want
/// deterministic reuse (benchmarks, allocation tests) or run scans from
/// inside another scan's visitor.
#[derive(Default)]
pub struct ScanScratch {
    /// Key bytes of the enclosing trie layers.
    pub(crate) prefix: Vec<u8>,
    /// Bound for the key *remainder* within the current layer (inclusive
    /// lower bound for forward scans, inclusive upper bound for reverse).
    pub(crate) bound: Vec<u8>,
    /// Full key to restart from after hitting a deleted node/layer.
    pub(crate) restart: Vec<u8>,
}

impl ScanScratch {
    /// A scratch with empty buffers (they grow on first use and are then
    /// reused).
    pub fn new() -> ScanScratch {
        ScanScratch::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::new());
}

/// Runs `f` with the thread-local scan scratch. Falls back to a fresh
/// scratch when the thread-local one is busy (a scan started from
/// another scan's visitor) or inaccessible (thread teardown).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut ScanScratch) -> R) -> R {
    let mut f = Some(f);
    let attempt = SCRATCH.try_with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => (f.take().expect("closure runs once"))(&mut scratch),
        Err(_) => (f.take().expect("closure runs once"))(&mut ScanScratch::new()),
    });
    match attempt {
        Ok(r) => r,
        Err(_) => (f.take().expect("closure runs once"))(&mut ScanScratch::new()),
    }
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Visits keys at or after `start` in lexicographic order, calling
    /// `f(key, value)` until it returns `false` or the tree is exhausted.
    /// Returns the number of entries visited.
    ///
    /// The scan is not atomic: entries inserted or removed while it runs
    /// may or may not be observed, but order and uniqueness are
    /// guaranteed, and every entry present for the whole scan is visited.
    ///
    /// The key slice passed to `f` is assembled in a scratch buffer and
    /// is only valid for that call; the value reference lives for the
    /// guard's lifetime. Uses the thread-local [`ScanScratch`]; see
    /// [`Masstree::scan_with`] to manage the scratch explicitly.
    pub fn scan<'g, F>(&self, start: &[u8], guard: &'g Guard, mut f: F) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        with_scratch(|scratch| self.scan_with(start, scratch, guard, |k, v| f(k, v)))
    }

    /// [`Masstree::scan`] with an explicit [`ScanScratch`]. With a warm
    /// scratch the scan performs no heap allocation.
    pub fn scan_with<'g, F>(
        &self,
        start: &[u8],
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        mut f: F,
    ) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        let mut count = 0usize;
        scratch.bound.clear();
        scratch.bound.extend_from_slice(start);
        loop {
            let root = self.load_root();
            scratch.prefix.clear();
            match self.scan_layer(root, scratch, guard, &mut |k, v| {
                count += 1;
                f(k, v)
            }) {
                ScanStatus::Done | ScanStatus::Stopped => return count,
                ScanStatus::Restart => {
                    Stats::bump(&self.stats.op_restarts);
                    core::mem::swap(&mut scratch.bound, &mut scratch.restart);
                }
            }
        }
    }

    /// Collects up to `limit` `(key, value)` pairs at or after `start`
    /// (the paper's `getrange(k, n)`).
    pub fn get_range<'g>(
        &self,
        start: &[u8],
        limit: usize,
        guard: &'g Guard,
    ) -> Vec<(Vec<u8>, &'g V)> {
        let mut out = Vec::with_capacity(limit.min(1024));
        if limit == 0 {
            return out;
        }
        self.scan(start, guard, |k, v| {
            out.push((k.to_vec(), v));
            out.len() < limit
        });
        out
    }

    /// Total number of keys (O(n); scans the whole tree).
    pub fn count_keys(&self, guard: &Guard) -> usize {
        self.scan(b"", guard, |_, _| true)
    }

    /// Scans one trie layer rooted at `root`. `scratch.prefix` holds the
    /// key bytes of enclosing layers; `scratch.bound` is the inclusive
    /// lower bound for the key *remainder* within this layer. Restores
    /// `prefix` before returning; `bound` is consumed (the caller
    /// rewrites it from its own resume point).
    fn scan_layer<'g>(
        &self,
        root: NodePtr<V>,
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
    ) -> ScanStatus {
        let mut entries = [Entry::EMPTY; WIDTH];
        'redescend: loop {
            let bikey = slice_at(&scratch.bound, 0);
            let mut root = root;
            let (mut n, _v) = match self.find_border(&mut root, bikey, guard) {
                Ok(x) => x,
                Err(Restart) => {
                    scratch.restart.clear();
                    scratch.restart.extend_from_slice(&scratch.prefix);
                    scratch.restart.extend_from_slice(&scratch.bound);
                    return ScanStatus::Restart;
                }
            };
            'nodes: loop {
                let (filled, next) = match Self::snapshot_border(n, &mut entries) {
                    Ok(x) => x,
                    Err(()) => continue 'redescend,
                };
                for e in &entries[..filled] {
                    // Inclusive lower-bound filter against the remainder.
                    let bikey = slice_at(&scratch.bound, 0);
                    let brank = if scratch.bound.len() > SLICE_LEN {
                        KEYLEN_SUFFIX
                    } else {
                        scratch.bound.len() as u8
                    };
                    if e.ikey < bikey {
                        continue;
                    }
                    let erank = crate::key::keylen_rank(e.code);
                    if e.ikey == bikey && erank < brank {
                        continue;
                    }
                    let in_rank9_boundary =
                        e.ikey == bikey && erank == KEYLEN_SUFFIX && brank == KEYLEN_SUFFIX;
                    let slice_bytes = e.ikey.to_be_bytes();
                    match e.code {
                        KEYLEN_LAYER => {
                            // Sub-layer bound: the remainder past this
                            // slice, or everything from the start.
                            if in_rank9_boundary {
                                scratch.bound.drain(..SLICE_LEN);
                            } else {
                                scratch.bound.clear();
                            }
                            scratch.prefix.extend_from_slice(&slice_bytes);
                            let st =
                                self.scan_layer(NodePtr::from_raw(e.lv.cast()), scratch, guard, f);
                            let plen = scratch.prefix.len() - SLICE_LEN;
                            scratch.prefix.truncate(plen);
                            match st {
                                ScanStatus::Done => {}
                                other => return other,
                            }
                            // Resume strictly after the whole sub-layer. A
                            // layer under the maximum slice is the last
                            // possible entry of the whole layer.
                            match e.ikey.checked_add(1) {
                                Some(nk) => {
                                    scratch.bound.clear();
                                    scratch.bound.extend_from_slice(&nk.to_be_bytes());
                                }
                                None => return ScanStatus::Done,
                            }
                        }
                        KEYLEN_SUFFIX => {
                            debug_assert!(!e.suffix.is_null());
                            // SAFETY: captured in a validated snapshot;
                            // epoch keeps the block live for the guard.
                            let sb = unsafe { KeySuffix::bytes(e.suffix) };
                            if in_rank9_boundary && sb < &scratch.bound[SLICE_LEN..] {
                                continue;
                            }
                            let plen = scratch.prefix.len();
                            scratch.prefix.extend_from_slice(&slice_bytes);
                            scratch.prefix.extend_from_slice(sb);
                            // SAFETY: validated value pointer, epoch-live.
                            let keep = f(&scratch.prefix, unsafe { &*e.lv.cast::<V>() });
                            scratch.prefix.truncate(plen);
                            if !keep {
                                return ScanStatus::Stopped;
                            }
                            scratch.bound.clear();
                            scratch.bound.extend_from_slice(&slice_bytes);
                            scratch.bound.extend_from_slice(sb);
                            scratch.bound.push(0);
                        }
                        len => {
                            let len = len as usize;
                            let plen = scratch.prefix.len();
                            scratch.prefix.extend_from_slice(&slice_bytes[..len]);
                            // SAFETY: validated value pointer, epoch-live.
                            let keep = f(&scratch.prefix, unsafe { &*e.lv.cast::<V>() });
                            scratch.prefix.truncate(plen);
                            if !keep {
                                return ScanStatus::Stopped;
                            }
                            scratch.bound.clear();
                            scratch.bound.extend_from_slice(&slice_bytes[..len]);
                            scratch.bound.push(0);
                        }
                    }
                }
                if next.is_null() {
                    return ScanStatus::Done;
                }
                // SAFETY: leaf-list pointers stay live under the epoch.
                n = unsafe { &*next };
                continue 'nodes;
            }
        }
    }

    /// Captures a consistent snapshot of a border node's live entries
    /// (into the caller's fixed buffer, permutation order) and its `next`
    /// pointer. Local inserts retry in place; splits and deletions return
    /// `Err` so the caller re-descends from its bound.
    fn snapshot_border(
        n: &BorderNode<V>,
        entries: &mut [Entry; WIDTH],
    ) -> Result<(usize, *mut BorderNode<V>), ()> {
        loop {
            let v = n.version().stable();
            if v.is_deleted() {
                return Err(());
            }
            let perm = n.permutation();
            let mut filled = 0usize;
            let mut unstable = false;
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let ikey = n.keyslice[slot].load(Ordering::Acquire);
                let (code, ex) = n.extract_lv(slot);
                match ex {
                    ExtractedLv::Unstable => {
                        unstable = true;
                        break;
                    }
                    ExtractedLv::Layer(p) => {
                        entries[filled] = Entry {
                            ikey,
                            code: KEYLEN_LAYER,
                            lv: p.cast::<()>(),
                            suffix: core::ptr::null_mut(),
                        };
                        filled += 1;
                    }
                    ExtractedLv::Value(p) => {
                        let suffix = if code == KEYLEN_SUFFIX {
                            n.suffix[slot].load(Ordering::Acquire)
                        } else {
                            core::ptr::null_mut()
                        };
                        entries[filled] = Entry {
                            ikey,
                            code,
                            lv: p,
                            suffix,
                        };
                        filled += 1;
                    }
                }
            }
            let next = n.next.load(Ordering::Acquire);
            let v2 = n.version().load(Ordering::Acquire);
            if !unstable && !v.has_changed(v2) {
                return Ok((filled, next));
            }
            if v.has_split(n.version().stable()) {
                return Err(());
            }
            core::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_retain_capacity_across_scans() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..200u64 {
            tree.put(
                format!("some/long/shared/prefix/key{i:04}").as_bytes(),
                i,
                &g,
            );
        }
        let mut scratch = ScanScratch::new();
        // Warm-up pass: buffers grow to their steady-state capacity.
        assert_eq!(tree.scan_with(b"", &mut scratch, &g, |_, _| true), 200);
        assert_eq!(
            tree.scan_with(b"some/long", &mut scratch, &g, |_, _| true),
            200
        );
        let cap_prefix = scratch.prefix.capacity();
        let cap_bound = scratch.bound.capacity();
        assert!(cap_prefix > 0 && cap_bound > 0, "warmed up");
        // Steady state: identical scans reuse the warm buffers as-is.
        assert_eq!(tree.scan_with(b"", &mut scratch, &g, |_, _| true), 200);
        assert_eq!(
            tree.scan_with(b"some/long", &mut scratch, &g, |_, _| true),
            200
        );
        assert_eq!(scratch.prefix.capacity(), cap_prefix);
        assert_eq!(scratch.bound.capacity(), cap_bound);
    }

    #[test]
    fn reentrant_scan_from_visitor_works() {
        let tree: Masstree<u64> = Masstree::new();
        let g = crate::pin();
        for i in 0..50u64 {
            tree.put(format!("k{i:03}").as_bytes(), i, &g);
        }
        // A scan whose visitor runs another scan must not corrupt the
        // outer scan's thread-local scratch.
        let mut inner_total = 0usize;
        let outer = tree.scan(b"", &g, |_, _| {
            inner_total += tree.scan(b"k04", &g, |_, _| true);
            true
        });
        assert_eq!(outer, 50);
        assert_eq!(inner_total, 50 * 10, "each inner scan sees k040..k049");
    }
}
