//! Range queries (`getrange`/"scan", §3 of the paper).
//!
//! Scans are forward, in lexicographic key order, and — per the paper —
//! not atomic with respect to concurrent inserts and removes: each border
//! node is read through one validated snapshot, concurrent splits cause a
//! re-descent from the current position, and a scan never returns a key
//! twice or out of order.
//!
//! Multi-layer traversal recurses through layer links depth-first; the
//! current key prefix is threaded down so emitted keys are reconstructed
//! without storing full keys in the tree.

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::key::{slice_at, KEYLEN_LAYER, KEYLEN_SUFFIX, SLICE_LEN};
use crate::node::{BorderNode, ExtractedLv, NodePtr};
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};

/// One decoded border-node entry captured in a validated snapshot.
struct Entry {
    ikey: u64,
    /// Inline length 0..=8, [`KEYLEN_SUFFIX`] or [`KEYLEN_LAYER`].
    code: u8,
    lv: *mut (),
    suffix: *mut KeySuffix,
}

/// Outcome of a (sub-)scan.
enum ScanStatus {
    /// Layer exhausted; continue with the caller's next entry.
    Done,
    /// The callback asked to stop.
    Stopped,
    /// A deleted node/layer was encountered; restart the whole scan at
    /// this full key (inclusive).
    RestartAt(Vec<u8>),
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Visits keys at or after `start` in lexicographic order, calling
    /// `f(key, value)` until it returns `false` or the tree is exhausted.
    /// Returns the number of entries visited.
    ///
    /// The scan is not atomic: entries inserted or removed while it runs
    /// may or may not be observed, but order and uniqueness are
    /// guaranteed, and every entry present for the whole scan is visited.
    pub fn scan<'g, F>(&self, start: &[u8], guard: &'g Guard, mut f: F) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        let mut count = 0usize;
        let mut bound = start.to_vec();
        loop {
            let root = self.load_root();
            let mut prefix = Vec::new();
            match self.scan_layer(root, &mut prefix, bound.clone(), guard, &mut |k, v| {
                count += 1;
                f(k, v)
            }) {
                ScanStatus::Done | ScanStatus::Stopped => return count,
                ScanStatus::RestartAt(key) => {
                    Stats::bump(&self.stats.op_restarts);
                    bound = key;
                }
            }
        }
    }

    /// Collects up to `limit` `(key, value)` pairs at or after `start`
    /// (the paper's `getrange(k, n)`).
    pub fn get_range<'g>(
        &self,
        start: &[u8],
        limit: usize,
        guard: &'g Guard,
    ) -> Vec<(Vec<u8>, &'g V)> {
        let mut out = Vec::with_capacity(limit.min(1024));
        if limit == 0 {
            return out;
        }
        self.scan(start, guard, |k, v| {
            out.push((k.to_vec(), v));
            out.len() < limit
        });
        out
    }

    /// Total number of keys (O(n); scans the whole tree).
    pub fn count_keys(&self, guard: &Guard) -> usize {
        self.scan(b"", guard, |_, _| true)
    }

    /// Scans one trie layer rooted at `root`. `prefix` holds the key bytes
    /// of enclosing layers; `bound` is the inclusive lower bound for the
    /// key *remainder* within this layer. Restores `prefix` before
    /// returning.
    fn scan_layer<'g>(
        &self,
        root: NodePtr<V>,
        prefix: &mut Vec<u8>,
        mut bound: Vec<u8>,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
    ) -> ScanStatus {
        'redescend: loop {
            let bikey = slice_at(&bound, 0);
            let mut root = root;
            let (mut n, _v) = match self.find_border(&mut root, bikey, guard) {
                Ok(x) => x,
                Err(Restart) => {
                    let mut key = prefix.clone();
                    key.extend_from_slice(&bound);
                    return ScanStatus::RestartAt(key);
                }
            };
            'nodes: loop {
                let (entries, next) = match Self::snapshot_border(n) {
                    Ok(x) => x,
                    Err(()) => continue 'redescend,
                };
                for e in &entries {
                    // Inclusive lower-bound filter against the remainder.
                    let bikey = slice_at(&bound, 0);
                    let brank = if bound.len() > SLICE_LEN {
                        KEYLEN_SUFFIX
                    } else {
                        bound.len() as u8
                    };
                    if e.ikey < bikey {
                        continue;
                    }
                    let erank = crate::key::keylen_rank(e.code);
                    if e.ikey == bikey && erank < brank {
                        continue;
                    }
                    let in_rank9_boundary =
                        e.ikey == bikey && erank == KEYLEN_SUFFIX && brank == KEYLEN_SUFFIX;
                    let slice_bytes = e.ikey.to_be_bytes();
                    match e.code {
                        KEYLEN_LAYER => {
                            let sub_bound = if in_rank9_boundary {
                                bound[SLICE_LEN..].to_vec()
                            } else {
                                Vec::new()
                            };
                            prefix.extend_from_slice(&slice_bytes);
                            let st = self.scan_layer(
                                NodePtr::from_raw(e.lv.cast()),
                                prefix,
                                sub_bound,
                                guard,
                                f,
                            );
                            prefix.truncate(prefix.len() - SLICE_LEN);
                            match st {
                                ScanStatus::Done => {}
                                other => return other,
                            }
                            // Resume strictly after the whole sub-layer. A
                            // layer under the maximum slice is the last
                            // possible entry of the whole layer.
                            match next_slice_bound(e.ikey) {
                                Some(b) => bound = b,
                                None => return ScanStatus::Done,
                            }
                        }
                        KEYLEN_SUFFIX => {
                            debug_assert!(!e.suffix.is_null());
                            // SAFETY: captured in a validated snapshot;
                            // epoch keeps the block live for the guard.
                            let sb = unsafe { KeySuffix::bytes(e.suffix) };
                            if in_rank9_boundary && sb < &bound[SLICE_LEN..] {
                                continue;
                            }
                            let plen = prefix.len();
                            prefix.extend_from_slice(&slice_bytes);
                            prefix.extend_from_slice(sb);
                            // SAFETY: validated value pointer, epoch-live.
                            let keep = f(prefix, unsafe { &*e.lv.cast::<V>() });
                            prefix.truncate(plen);
                            if !keep {
                                return ScanStatus::Stopped;
                            }
                            bound = slice_bytes.to_vec();
                            bound.extend_from_slice(sb);
                            bound.push(0);
                        }
                        len => {
                            let len = len as usize;
                            let plen = prefix.len();
                            prefix.extend_from_slice(&slice_bytes[..len]);
                            // SAFETY: validated value pointer, epoch-live.
                            let keep = f(prefix, unsafe { &*e.lv.cast::<V>() });
                            prefix.truncate(plen);
                            if !keep {
                                return ScanStatus::Stopped;
                            }
                            bound = slice_bytes[..len].to_vec();
                            bound.push(0);
                        }
                    }
                }
                if next.is_null() {
                    return ScanStatus::Done;
                }
                // SAFETY: leaf-list pointers stay live under the epoch.
                n = unsafe { &*next };
                continue 'nodes;
            }
        }
    }

    /// Captures a consistent snapshot of a border node's live entries and
    /// its `next` pointer. Local inserts retry in place; splits and
    /// deletions return `Err` so the caller re-descends from its bound.
    fn snapshot_border(n: &BorderNode<V>) -> Result<(Vec<Entry>, *mut BorderNode<V>), ()> {
        loop {
            let v = n.version().stable();
            if v.is_deleted() {
                return Err(());
            }
            let perm = n.permutation();
            let mut entries = Vec::with_capacity(perm.nkeys());
            let mut unstable = false;
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let ikey = n.keyslice[slot].load(Ordering::Acquire);
                let (code, ex) = n.extract_lv(slot);
                match ex {
                    ExtractedLv::Unstable => {
                        unstable = true;
                        break;
                    }
                    ExtractedLv::Layer(p) => entries.push(Entry {
                        ikey,
                        code: KEYLEN_LAYER,
                        lv: p.cast::<()>(),
                        suffix: core::ptr::null_mut(),
                    }),
                    ExtractedLv::Value(p) => {
                        let suffix = if code == KEYLEN_SUFFIX {
                            n.suffix[slot].load(Ordering::Acquire)
                        } else {
                            core::ptr::null_mut()
                        };
                        entries.push(Entry {
                            ikey,
                            code,
                            lv: p,
                            suffix,
                        });
                    }
                }
            }
            let next = n.next.load(Ordering::Acquire);
            let v2 = n.version().load(Ordering::Acquire);
            if !unstable && !v.has_changed(v2) {
                return Ok((entries, next));
            }
            if v.has_split(n.version().stable()) {
                return Err(());
            }
            core::hint::spin_loop();
        }
    }
}

/// The smallest remainder strictly after every key whose slice is `ikey`:
/// the next slice value with rank 0. `None` if `ikey` is the maximum.
fn next_slice_bound(ikey: u64) -> Option<Vec<u8>> {
    ikey.checked_add(1).map(|nk| nk.to_be_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_slice_bound_increments() {
        assert_eq!(next_slice_bound(0), Some(1u64.to_be_bytes().to_vec()));
        assert_eq!(next_slice_bound(u64::MAX), None);
    }
}
