//! The validated-anchor core: **one** validation story for every hinted
//! entry into the tree.
//!
//! A [`DescentAnchor`] is a remembered descent endpoint — a border node,
//! the slab generation and OCC version it was observed under, and the
//! trie-layer byte offset the node indexes. Every operation that wants
//! to skip the root-to-leaf descent routes through this type:
//!
//! * **reads** ([`crate::hint::LeafHint`], which wraps an anchor plus a
//!   permutation snapshot for its exact-match fast path) validate with
//!   [`DescentAnchor::enter`] / [`DescentAnchor::still_valid`] — the
//!   Figure 7 bracket, generalized;
//! * **writes** ([`Masstree::put_at_hint`] / [`Masstree::remove_at_hint`])
//!   enter with [`DescentAnchor::lock_for_write`], which proves the
//!   anchored memory is still the *same live incarnation* before the
//!   caller starts `lock_border_for_ikey`'s walk at it;
//! * **scans** ([`crate::scan::ScanCursor`]) re-enter their last border
//!   node with [`DescentAnchor::enter_for_scan`], which tolerates
//!   concurrent *inserts* (the per-node snapshot re-validates anyway)
//!   but rejects splits and deletions, the changes that move key ranges.
//!
//! Validation failure is always safe: the caller falls back to a normal
//! descent, which refreshes the anchor. See `hint.rs` for the original
//! read-side soundness argument; the write- and scan-side arguments are
//! documented on their methods below.
//!
//! [`Masstree::put_at_hint`]: crate::tree::Masstree::put_at_hint
//! [`Masstree::remove_at_hint`]: crate::tree::Masstree::remove_at_hint

use core::marker::PhantomData;
use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::node::BorderNode;
use crate::version::Version;

/// A generation-stamped reference to a border node, safe to hold across
/// (and outside) epoch guards. Dereferenced only through the validation
/// protocol in this module; see the `hint.rs` module docs for why the
/// raw pointer can never be *used* after free.
///
/// The generation snapshot is truncated to 32 bits (a stale anchor
/// validates against recycled memory only if the node's memory was
/// freed exactly a multiple of 2³² times between capture and use —
/// the same flavor of assumption the version counters already make,
/// with a far wider margin), which keeps a [`crate::hint::LeafHint`]
/// at 32 bytes.
pub struct NodeRef<V> {
    pub(crate) ptr: *const BorderNode<V>,
    pub(crate) gen: u32,
    _marker: PhantomData<fn(V) -> V>,
}

impl<V> NodeRef<V> {
    #[inline]
    pub(crate) fn new(ptr: *const BorderNode<V>, gen: u32) -> Self {
        NodeRef {
            ptr,
            gen,
            _marker: PhantomData,
        }
    }

    /// Prefetches the node's cache lines (useful before validating a
    /// batch of anchors).
    #[inline]
    pub fn prefetch(&self) {
        crate::prefetch::prefetch(self.ptr);
    }
}

impl<V> Clone for NodeRef<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for NodeRef<V> {}
impl<V> core::fmt::Debug for NodeRef<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "NodeRef({:p}@g{})", self.ptr, self.gen)
    }
}

// SAFETY: a NodeRef is an opaque token; the pointer is only dereferenced
// under the validation protocol, which is sound from any thread (all
// node fields are atomics in type-stable memory).
unsafe impl<V: Send + Sync> Send for NodeRef<V> {}
// SAFETY: as above.
unsafe impl<V: Send + Sync> Sync for NodeRef<V> {}

/// A validated descent endpoint: border node + slab generation + the
/// version it was observed under + the trie-layer byte offset the node
/// indexes. The unit of "conjecture, then validate" shared by hinted
/// reads, hinted writes and resumable scans.
pub struct DescentAnchor<V> {
    pub(crate) ptr: *const BorderNode<V>,
    pub(crate) gen: u32,
    pub(crate) version: Version,
    pub(crate) offset: u32,
    pub(crate) _marker: PhantomData<fn(V) -> V>,
}

impl<V> Clone for DescentAnchor<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for DescentAnchor<V> {}
impl<V> core::fmt::Debug for DescentAnchor<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DescentAnchor({:p}@g{}, v{:#x}, off {})",
            self.ptr, self.gen, self.version.0, self.offset
        )
    }
}

// SAFETY: as for NodeRef — an opaque token, dereferenced only under the
// validation protocol.
unsafe impl<V: Send + Sync> Send for DescentAnchor<V> {}
// SAFETY: as above.
unsafe impl<V: Send + Sync> Sync for DescentAnchor<V> {}

impl<V> DescentAnchor<V> {
    /// Captures an anchor at a border node observed under `version`
    /// (which must be a validated, non-deleted snapshot) while indexing
    /// the trie layer at byte `offset`.
    #[inline]
    pub(crate) fn capture(bn: &BorderNode<V>, version: Version, offset: usize) -> Self {
        debug_assert!(!version.is_deleted(), "anchors capture live endpoints");
        DescentAnchor {
            ptr: bn as *const BorderNode<V>,
            gen: bn.generation() as u32,
            version,
            offset: offset as u32,
            _marker: PhantomData,
        }
    }

    /// The generation-stamped node this anchor remembers.
    #[inline]
    pub fn node(&self) -> NodeRef<V> {
        NodeRef::new(self.ptr, self.gen)
    }

    /// The trie-layer byte offset the anchored node indexes (8 × layer
    /// depth).
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset as usize
    }

    /// **Read-side leading validation**: dereference the conjecture and
    /// prove the node is *exactly* as captured — same slab incarnation
    /// (generation) and unchanged version (modulo the lock bit). An
    /// unchanged version proves no split, no deletion, no freed-slot
    /// reuse: the node still covers the same key range in the same trie
    /// layer, so reads against it are indistinguishable from a fresh
    /// descent. Also issues the whole-node prefetch a descent would.
    ///
    /// The guard does not protect the validation itself (type-stable
    /// atomics do); it scopes the returned reference and everything the
    /// caller reads through it, exactly as in `get`.
    #[inline]
    pub(crate) fn enter<'g>(&self, _guard: &'g Guard) -> Option<&'g BorderNode<V>> {
        // SAFETY: slab node memory is type-stable and only ever mutated
        // with atomic stores after first initialization, so forming a
        // shared reference and loading atomics is race-free even if the
        // node was freed or its memory recycled; the generation/version
        // checks below detect those cases before anything is trusted.
        let bn = unsafe { &*self.ptr };
        // Fetch the whole node now: validation reads line 0 while the
        // `lv`/suffix lines arrive in parallel — a hinted read must not
        // pay the serial line-by-line stalls a prefetched descent never
        // pays.
        crate::prefetch::prefetch(self.ptr);
        let v = bn.version().load(Ordering::Acquire);
        if self.version.has_changed(v) || bn.generation() as u32 != self.gen {
            return None;
        }
        Some(bn)
    }

    /// **Trailing re-validation** (Figure 7's `n.version ⊕ v > locked`,
    /// plus the reuse generation): an exact match brackets every read
    /// the caller performed since [`DescentAnchor::enter`] — in
    /// particular, a freed-slot reuse racing a fast-path `lv` read marks
    /// INSERTING before touching the slot, which this check observes.
    #[inline]
    pub(crate) fn still_valid(&self, bn: &BorderNode<V>) -> bool {
        let v2 = bn.version().load(Ordering::Acquire);
        !self.version.has_changed(v2) && bn.generation() as u32 == self.gen
    }

    /// **Scan-side leading validation**: like [`DescentAnchor::enter`]
    /// but tolerant of concurrent *inserts and removes* — a scan's
    /// per-node snapshot re-validates its own reads, so resumption only
    /// needs the node to still cover the same key range in the same
    /// layer. That holds exactly when the memory is the same incarnation
    /// (generation) and the node has neither split nor been deleted
    /// since capture (`lowkey` is constant for a node's lifetime; only
    /// splits move its upper bound, and both bump `vsplit`/DELETED).
    ///
    /// Ordering: the version is loaded *before* the generation — a
    /// matching generation read second proves no free happened up to
    /// that point, so the version value belongs to the captured
    /// incarnation. And a non-deleted version observed after the
    /// caller's pin proves the node was not yet retired, so the epoch
    /// protects the whole resumed walk.
    #[inline]
    pub(crate) fn enter_for_scan<'g>(&self, _guard: &'g Guard) -> Option<&'g BorderNode<V>> {
        // SAFETY: as in `enter`.
        let bn = unsafe { &*self.ptr };
        crate::prefetch::prefetch(self.ptr);
        let v = bn.version().load(Ordering::Acquire);
        if self.version.has_split(v) || bn.generation() as u32 != self.gen {
            return None;
        }
        Some(bn)
    }

    /// **Write-side entry**: lock the anchored node if — and only if —
    /// it is provably the same live incarnation that was captured.
    /// Returns the node *locked*; the caller continues with the
    /// walk-right of `lock_border_for_ikey` exactly as if a descent had
    /// delivered the node, and owns the lock either way.
    ///
    /// # Why this cannot lock the wrong node
    ///
    /// The lock acquisition is [`crate::version::VersionCell::lock_unless_deleted`]:
    /// a CAS, which (being an RMW) always observes the **latest** value
    /// of the version word — unlike the optimistic loads of the read
    /// path, it cannot act on a stale snapshot. Three cases:
    ///
    /// 1. *Same incarnation, live*: the CAS saw no DELETED bit, so the
    ///    node was not even retired at that instant (deletion marks
    ///    DELETED before retiring). Holding the lock now pins it: a
    ///    deleter needs this lock to mark DELETED, and freeing requires
    ///    retirement. The post-lock generation check passes and the
    ///    caller proceeds on a node that is exactly as safe as one a
    ///    descent just delivered.
    /// 2. *Freed but not yet recycled*: the version word still carries
    ///    the DELETED bit the deleter left (node reinit is the only
    ///    thing that clears it, and it hasn't run) — the CAS refuses.
    /// 3. *Recycled into a different node*: we may lock the **new**
    ///    incarnation (briefly, harmlessly — we modify nothing). The
    ///    CAS's acquire on the reinitialized version word synchronizes
    ///    with the reinit's release store, which the slab free-list
    ///    hand-off orders after the generation bump — so the post-lock
    ///    generation load observes the bump, and we unlock and bail.
    ///
    /// The post-lock generation re-check is therefore the linchpin: a
    /// pass proves no free since capture, collapsing every outcome into
    /// case 1.
    #[inline]
    pub(crate) fn lock_for_write<'g>(&self, _guard: &'g Guard) -> Option<&'g BorderNode<V>> {
        // SAFETY: as in `enter` — type-stable memory, atomic accesses
        // only, trusted only after validation.
        let bn = unsafe { &*self.ptr };
        crate::prefetch::prefetch(self.ptr);
        // Cheap pre-filter: don't spin on somebody else's lock if the
        // memory was already recycled.
        if bn.generation() as u32 != self.gen {
            return None;
        }
        bn.version().lock_unless_deleted()?;
        if bn.generation() as u32 != self.gen {
            // Case 3 above: we locked a recycled incarnation. Undo.
            bn.version().unlock();
            return None;
        }
        Some(bn)
    }
}
