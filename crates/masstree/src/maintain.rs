//! Maintenance and introspection: empty-layer collection, root collapse,
//! whole-tree validation, and teardown.
//!
//! The paper (§4.6.5) schedules epoch-based reclamation tasks to clean up
//! empty and pathologically-shaped layer trees, since normal operations
//! lock at most one layer at a time. [`Masstree::maintain`] is that task:
//! call it periodically (the `mtkv` store does) or after bulk deletions.
//!
//! [`Masstree::validate`] is the test harness's whole-tree invariant
//! checker; it requires `&mut self` (quiescence) and verifies the
//! structural invariants from §4 (see DESIGN.md §8).

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::gc;
use crate::key::{keylen_rank, KEYLEN_LAYER, KEYLEN_SUFFIX, KEYLEN_UNSTABLE};
use crate::node::{BorderNode, BorderSearch, NodePtr, RootSlot};
use crate::permutation::WIDTH;
use crate::stats::Stats;
use crate::tree::Masstree;

/// Summary returned by [`Masstree::validate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeReport {
    /// Live keys (values), across all layers.
    pub keys: usize,
    /// Border nodes.
    pub borders: usize,
    /// Interior nodes.
    pub interiors: usize,
    /// Trie layers (1 = no shared-prefix layering happened).
    pub layers: usize,
    /// Maximum B+-tree depth over all layers.
    pub max_depth: usize,
}

/// A candidate produced by the maintenance scan.
enum Candidate<V> {
    /// An empty layer hanging off `parent[?]`; remove the link.
    EmptyLayer {
        parent: *const BorderNode<V>,
        ikey: u64,
        sub_root: *mut crate::node::NodeHeader,
    },
    /// A layer root interior with a single child; collapse one level.
    SingleChildRoot {
        slot: LayerSlot<V>,
        root: *mut crate::node::NodeHeader,
    },
}

/// Identifies where a layer's root pointer is stored.
enum LayerSlot<V> {
    Tree,
    Link(*const BorderNode<V>, u64),
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Performs one maintenance pass: collects empty layer-≥1 trees and
    /// collapses single-child layer roots (§4.6.5). Returns the number of
    /// structural repairs made. Best-effort: candidates that race with
    /// concurrent writers are skipped and picked up by a later pass.
    pub fn maintain(&self, guard: &Guard) -> usize {
        let mut candidates = Vec::new();
        let root = self.load_root();
        self.gather_candidates(root, LayerSlot::Tree, &mut candidates, guard);
        let mut repaired = 0;
        for c in candidates {
            match c {
                Candidate::EmptyLayer {
                    parent,
                    ikey,
                    sub_root,
                } => {
                    if self.try_remove_empty_layer(parent, ikey, sub_root, guard) {
                        repaired += 1;
                    }
                }
                Candidate::SingleChildRoot { slot, root } => {
                    if self.try_collapse_root(&slot, root, guard) {
                        repaired += 1;
                    }
                }
            }
        }
        repaired
    }

    /// Optimistically walks a layer looking for repair candidates.
    fn gather_candidates(
        &self,
        root: NodePtr<V>,
        slot: LayerSlot<V>,
        out: &mut Vec<Candidate<V>>,
        guard: &Guard,
    ) {
        // Root-collapse candidate?
        // SAFETY: live node under the pinned guard.
        let v = unsafe { root.version() }.stable();
        if !v.is_border() && !v.is_deleted() {
            // SAFETY: interior per the shape bit.
            let inter = unsafe { root.as_interior() };
            if inter.nkeys() == 0 {
                out.push(Candidate::SingleChildRoot {
                    slot,
                    root: root.raw(),
                });
                // Still walk below for nested candidates.
            }
        }
        self.gather_in_subtree(root, out, guard);
    }

    fn gather_in_subtree(&self, n: NodePtr<V>, out: &mut Vec<Candidate<V>>, guard: &Guard) {
        if n.is_null() {
            return;
        }
        // SAFETY: live node under the pinned guard.
        let v = unsafe { n.version() }.stable();
        if v.is_deleted() {
            return;
        }
        if v.is_border() {
            // SAFETY: border per the shape bit.
            let b = unsafe { n.as_border() };
            let perm = b.permutation();
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                if b.keylen[slot].load(Ordering::Acquire) != KEYLEN_LAYER {
                    continue;
                }
                let ikey = b.keyslice[slot].load(Ordering::Acquire);
                let sub = b.lv[slot]
                    .load(Ordering::Acquire)
                    .cast::<crate::node::NodeHeader>();
                if sub.is_null() {
                    continue;
                }
                let subp = NodePtr::<V>::from_raw(sub);
                // SAFETY: published layer roots are live under the epoch.
                let sv = unsafe { subp.version() }.stable();
                if sv.is_border() && !sv.is_deleted() {
                    // SAFETY: border per shape bit.
                    let sb = unsafe { subp.as_border() };
                    if sb.permutation().nkeys() == 0 && sb.next.load(Ordering::Acquire).is_null() {
                        out.push(Candidate::EmptyLayer {
                            parent: b,
                            ikey,
                            sub_root: sub,
                        });
                        continue;
                    }
                }
                self.gather_candidates(subp, LayerSlot::Link(b, ikey), out, guard);
            }
        } else {
            // SAFETY: interior per the shape bit.
            let inter = unsafe { n.as_interior() };
            let nk = inter.nkeys();
            for i in 0..=nk {
                let c = inter.child[i].load(Ordering::Acquire);
                if !c.is_null() {
                    self.gather_in_subtree(NodePtr::from_raw(c), out, guard);
                }
            }
        }
    }

    /// Removes the link to an empty layer: locks the parent border node,
    /// re-verifies the slot, locks the empty root, re-verifies emptiness,
    /// then unpublishes the entry and retires the root. Locks are taken
    /// parent-then-child (the same top-down order as descent), so this
    /// cannot deadlock against ascending writers, which never hold a layer
    /// root while locking across layers.
    fn try_remove_empty_layer(
        &self,
        parent: *const BorderNode<V>,
        ikey: u64,
        sub_root: *mut crate::node::NodeHeader,
        guard: &Guard,
    ) -> bool {
        // SAFETY: gathered from a live walk under this guard.
        let b = unsafe { &*parent };
        b.version().lock();
        if b.version().load(Ordering::Relaxed).is_deleted() {
            b.version().unlock();
            return false;
        }
        let perm = b.permutation();
        let found = b.search(perm, ikey, keylen_rank(KEYLEN_LAYER));
        let BorderSearch::Found { pos, slot } = found else {
            b.version().unlock();
            return false;
        };
        if b.keylen[slot].load(Ordering::Acquire) != KEYLEN_LAYER
            || b.lv[slot].load(Ordering::Acquire) != sub_root.cast::<()>()
        {
            b.version().unlock();
            return false;
        }
        let subp = NodePtr::<V>::from_raw(sub_root);
        // SAFETY: still referenced by the locked slot, hence live.
        let subv = unsafe { subp.version() };
        if subv.try_lock().is_none() {
            b.version().unlock();
            return false;
        }
        // SAFETY: locked; shape cannot change.
        let sb = unsafe { subp.as_border() };
        let still_empty = sb.permutation().nkeys() == 0
            && sb.next.load(Ordering::Acquire).is_null()
            && !subv.load(Ordering::Relaxed).is_deleted()
            && subv.load(Ordering::Relaxed).is_root();
        if !still_empty {
            subv.unlock();
            b.version().unlock();
            return false;
        }
        // Unpublish the layer link from the parent (a plain remove: slot
        // contents stay for in-flight readers; reuse bumps vinsert).
        let (nperm, freed) = perm.remove_at(pos);
        b.publish_permutation(nperm);
        b.mark_freed(freed);
        subv.mark_deleted();
        subv.unlock();
        // SAFETY: the empty root is unreachable once the slot is
        // unpublished; no values/suffixes remain in it.
        unsafe { gc::retire_node(guard, subp) };
        Stats::bump(&self.stats.layers_collected);
        // The parent border may itself have emptied.
        if nperm.nkeys() == 0 && !b.prev.load(Ordering::Acquire).is_null() {
            // SAFETY: locked, empty, not leftmost.
            unsafe { self.delete_border(b, guard) };
        } else {
            b.version().unlock();
        }
        true
    }

    /// Collapses a single-child layer root: the child becomes the layer
    /// root. Child lock is taken with `try_lock` (a downward lock edge
    /// would otherwise risk deadlock against ascending splitters).
    fn try_collapse_root(
        &self,
        slot: &LayerSlot<V>,
        root: *mut crate::node::NodeHeader,
        guard: &Guard,
    ) -> bool {
        let rp = NodePtr::<V>::from_raw(root);
        // SAFETY: gathered from a live walk under this guard.
        let rv = unsafe { rp.version() };
        rv.lock();
        let v = rv.load(Ordering::Relaxed);
        if v.is_deleted() || v.is_border() || !v.is_root() {
            rv.unlock();
            return false;
        }
        // SAFETY: interior per shape bit, locked.
        let inter = unsafe { rp.as_interior() };
        if inter.nkeys() != 0 {
            rv.unlock();
            return false;
        }
        let childp = inter.child[0].load(Ordering::Acquire);
        if childp.is_null() {
            rv.unlock();
            return false;
        }
        let child = NodePtr::<V>::from_raw(childp);
        // SAFETY: live child of a locked parent.
        let cv = unsafe { child.version() };
        let Some(_) = cv.try_lock() else {
            rv.unlock();
            return false;
        };
        // Promote the child.
        // SAFETY: we hold both locks; parent pointers are protected by the
        // parent's lock.
        unsafe {
            child.set_parent(core::ptr::null_mut());
            cv.set_root(true);
        }
        match slot {
            LayerSlot::Tree => {
                RootSlot::<V>::Tree(&self.root).cas(root, childp);
            }
            LayerSlot::Link(parent, ikey) => {
                // Re-find the slot; best effort (a stale link still works
                // through the parent climb).
                // SAFETY: live border node under this guard.
                let b = unsafe { &**parent };
                let perm = b.permutation();
                if let BorderSearch::Found { slot, .. } =
                    b.search(perm, *ikey, keylen_rank(KEYLEN_LAYER))
                {
                    if b.keylen[slot].load(Ordering::Acquire) == KEYLEN_LAYER {
                        RootSlot::LayerLink {
                            node: *parent,
                            slot,
                        }
                        .cas(root, childp);
                    }
                }
            }
        }
        rv.mark_deleted();
        cv.unlock();
        rv.unlock();
        // SAFETY: the old root is unlinked (slot CASed or reachable only
        // through climb-tolerant stale pointers, which epoch keeps live).
        unsafe { gc::retire_node(guard, rp) };
        Stats::bump(&self.stats.layers_collected);
        true
    }
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Validates every structural invariant of the tree (DESIGN.md §8).
    /// Requires exclusive access; returns a summary or a description of
    /// the first violation.
    pub fn validate(&mut self) -> Result<TreeReport, String> {
        let mut report = TreeReport::default();
        let root = NodePtr::<V>::from_raw(*self.root.get_mut());
        // SAFETY: `&mut self` guarantees quiescence; all nodes live.
        unsafe { self.validate_layer(root, 0, &mut report) }?;
        Ok(report)
    }

    /// Validates one layer's B+-tree and recurses into sub-layers.
    ///
    /// # Safety
    ///
    /// Requires a quiescent tree and live nodes throughout.
    unsafe fn validate_layer(
        &self,
        root: NodePtr<V>,
        depth_base: usize,
        report: &mut TreeReport,
    ) -> Result<(), String> {
        report.layers += 1;
        // Root pointers may legitimately be stale (§4.6.4: lazy root
        // update); climb to the true root the way `find_border` does.
        // SAFETY: quiescent per caller.
        let root = unsafe { true_root(root) };
        let v = unsafe { root.version() }.load(Ordering::Relaxed);
        if !v.is_root() {
            return Err("layer root missing ISROOT".into());
        }
        if v.is_dirty() || v.is_locked() {
            return Err("quiescent tree has dirty/locked root".into());
        }
        let mut leaves: Vec<*const BorderNode<V>> = Vec::new();
        // SAFETY: quiescent per caller.
        unsafe { self.validate_subtree(root, None, None, 1, depth_base, report, &mut leaves)? };
        // Leaf-list must match in-order leaf sequence.
        for w in leaves.windows(2) {
            let (a, b) = (w[0], w[1]);
            // SAFETY: quiescent.
            let (ar, br) = unsafe { (&*a, &*b) };
            if !std::ptr::eq(ar.next.load(Ordering::Relaxed), b) {
                return Err("leaf list next does not match tree order".into());
            }
            if !std::ptr::eq(br.prev.load(Ordering::Relaxed), a) {
                return Err("leaf list prev does not match tree order".into());
            }
        }
        if let Some(&first) = leaves.first() {
            // SAFETY: quiescent.
            let f = unsafe { &*first };
            if !f.prev.load(Ordering::Relaxed).is_null() {
                return Err("leftmost leaf has a prev pointer".into());
            }
        }
        if let Some(&last) = leaves.last() {
            // SAFETY: quiescent.
            let l = unsafe { &*last };
            if !l.next.load(Ordering::Relaxed).is_null() {
                return Err("rightmost leaf has a next pointer".into());
            }
        }
        Ok(())
    }

    /// # Safety
    ///
    /// Requires a quiescent tree and live nodes throughout.
    #[allow(clippy::too_many_arguments)]
    unsafe fn validate_subtree(
        &self,
        n: NodePtr<V>,
        lo: Option<u64>,
        hi: Option<u64>,
        depth: usize,
        depth_base: usize,
        report: &mut TreeReport,
        leaves: &mut Vec<*const BorderNode<V>>,
    ) -> Result<(), String> {
        if n.is_null() {
            return Err("null child pointer".into());
        }
        // SAFETY: quiescent per caller.
        let v = unsafe { n.version() }.load(Ordering::Relaxed);
        if v.is_deleted() {
            return Err("reachable node marked deleted".into());
        }
        report.max_depth = report.max_depth.max(depth_base + depth);
        if v.is_border() {
            report.borders += 1;
            // SAFETY: shape bit checked.
            let b = unsafe { n.as_border() };
            leaves.push(b);
            let perm = b.permutation();
            if !perm.is_valid() {
                return Err(format!("invalid permutation {perm:?}"));
            }
            let mut prev: Option<(u64, u8)> = None;
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let ikey = b.keyslice[slot].load(Ordering::Relaxed);
                let code = b.keylen[slot].load(Ordering::Relaxed);
                if code == KEYLEN_UNSTABLE {
                    return Err("UNSTABLE slot in quiescent tree".into());
                }
                let rank = keylen_rank(code);
                if let Some((pik, prank)) = prev {
                    if (pik, prank) >= (ikey, rank) {
                        return Err(format!(
                            "border keys out of order: ({pik:#x},{prank}) then ({ikey:#x},{rank})"
                        ));
                    }
                }
                prev = Some((ikey, rank));
                if let Some(lo) = lo {
                    if ikey < lo {
                        return Err("border key below subtree lower bound".into());
                    }
                }
                if let Some(hi) = hi {
                    if ikey >= hi {
                        return Err("border key at/above subtree upper bound".into());
                    }
                }
                match code {
                    KEYLEN_LAYER => {
                        let sub = b.lv[slot].load(Ordering::Relaxed);
                        if sub.is_null() {
                            return Err("layer link is null".into());
                        }
                        // SAFETY: quiescent.
                        unsafe {
                            self.validate_layer(
                                NodePtr::from_raw(sub.cast()),
                                depth_base + depth,
                                report,
                            )?;
                        }
                    }
                    KEYLEN_SUFFIX => {
                        if b.suffix[slot].load(Ordering::Relaxed).is_null() {
                            return Err("suffix entry without suffix block".into());
                        }
                        if b.lv[slot].load(Ordering::Relaxed).is_null() {
                            return Err("null value pointer".into());
                        }
                        report.keys += 1;
                    }
                    l if (l as usize) <= crate::key::SLICE_LEN => {
                        if b.lv[slot].load(Ordering::Relaxed).is_null() {
                            return Err("null value pointer".into());
                        }
                        report.keys += 1;
                    }
                    other => return Err(format!("invalid keylen code {other}")),
                }
            }
            return Ok(());
        }
        report.interiors += 1;
        // SAFETY: shape bit checked.
        let inter = unsafe { n.as_interior() };
        let nk = inter.nkeys();
        if nk > WIDTH {
            return Err("interior nkeys out of range".into());
        }
        for i in 1..nk {
            if inter.keyslice[i - 1].load(Ordering::Relaxed)
                >= inter.keyslice[i].load(Ordering::Relaxed)
            {
                return Err("interior separators out of order".into());
            }
        }
        for i in 0..=nk {
            let child = inter.child[i].load(Ordering::Relaxed);
            if child.is_null() {
                return Err("interior child is null".into());
            }
            let cp = NodePtr::<V>::from_raw(child);
            // SAFETY: quiescent.
            let parent = unsafe { cp.parent() };
            if !std::ptr::eq(parent, inter) {
                return Err("child's parent pointer does not match".into());
            }
            let clo = if i == 0 {
                lo
            } else {
                Some(inter.keyslice[i - 1].load(Ordering::Relaxed))
            };
            let chi = if i == nk {
                hi
            } else {
                Some(inter.keyslice[i].load(Ordering::Relaxed))
            };
            // SAFETY: quiescent.
            unsafe {
                self.validate_subtree(cp, clo, chi, depth + 1, depth_base, report, leaves)?;
            }
        }
        Ok(())
    }
}

impl<V> Drop for Masstree<V> {
    fn drop(&mut self) {
        let root = NodePtr::<V>::from_raw(*self.root.get_mut());
        // SAFETY: `&mut self` means no concurrent users; every reachable
        // node, value and suffix is freed exactly once (retired objects
        // are unreachable and handled by their deferred destructors). The
        // stored root may be stale (lazy root update), so climb first.
        unsafe { drop_subtree(true_root(root)) };
    }
}

/// Climbs parent pointers to the true root of a layer, mirroring
/// `find_border`'s handling of stale (lazily updated) root pointers.
///
/// # Safety
///
/// Requires a quiescent tree (or nodes pinned live by an epoch guard).
unsafe fn true_root<V>(mut n: NodePtr<V>) -> NodePtr<V> {
    loop {
        // SAFETY: per caller contract.
        let v = unsafe { n.version() }.load(Ordering::Relaxed);
        if v.is_root() {
            return n;
        }
        // SAFETY: per caller contract.
        let p = unsafe { n.parent() };
        if p.is_null() {
            return n;
        }
        n = NodePtr::from_interior(p);
    }
}

/// Frees a subtree: values, suffix blocks, sub-layers, then nodes.
///
/// # Safety
///
/// Exclusive access; nodes live; called once per reachable node.
unsafe fn drop_subtree<V>(n: NodePtr<V>) {
    if n.is_null() {
        return;
    }
    // SAFETY: per caller contract.
    unsafe {
        if n.is_border() {
            let b = n.as_border();
            let perm = b.permutation();
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let code = b.keylen[slot].load(Ordering::Relaxed);
                match code {
                    KEYLEN_LAYER => {
                        let sub = b.lv[slot].load(Ordering::Relaxed);
                        drop_subtree::<V>(true_root(NodePtr::from_raw(sub.cast())));
                    }
                    KEYLEN_SUFFIX => {
                        let s = b.suffix[slot].load(Ordering::Relaxed);
                        if !s.is_null() {
                            crate::suffix::KeySuffix::free(s);
                        }
                        drop(Box::from_raw(
                            b.lv[slot].load(Ordering::Relaxed).cast::<V>(),
                        ));
                    }
                    _ => {
                        drop(Box::from_raw(
                            b.lv[slot].load(Ordering::Relaxed).cast::<V>(),
                        ));
                    }
                }
            }
            n.free();
        } else {
            let inter = n.as_interior();
            let nk = inter.nkeys();
            for i in 0..=nk {
                drop_subtree::<V>(NodePtr::from_raw(inter.child[i].load(Ordering::Relaxed)));
            }
            n.free();
        }
    }
}
