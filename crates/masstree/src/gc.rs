//! Epoch-based reclamation helpers (§4.6.1 of the paper).
//!
//! Removed values, suffix blocks and nodes stay readable until every
//! reader that could hold a reference has unpinned its epoch guard — the
//! paper's read-copy-update-style garbage collection, implemented with
//! `crossbeam::epoch`.

use crossbeam::epoch::Guard;

use crate::node::NodePtr;
use crate::suffix::KeySuffix;

/// Schedules a value for destruction after the current epoch.
///
/// # Safety
///
/// `p` must have come from `Box::into_raw(Box<V>)`, must be unreachable
/// from the tree, and must not be retired twice.
pub(crate) unsafe fn retire_value<V: 'static>(guard: &Guard, p: *mut ()) {
    let p = p.cast::<V>() as usize;
    // SAFETY: per caller contract; the closure runs once, after all
    // readers that could observe `p` have unpinned.
    unsafe {
        guard.defer_unchecked(move || drop(Box::from_raw(p as *mut V)));
    }
}

/// Schedules a suffix block for destruction after the current epoch.
///
/// # Safety
///
/// `p` must have come from [`KeySuffix::alloc`], must be unreachable, and
/// must not be retired twice. A null pointer is ignored.
pub(crate) unsafe fn retire_suffix(guard: &Guard, p: *mut KeySuffix) {
    if p.is_null() {
        return;
    }
    let p = p as usize;
    // SAFETY: per caller contract.
    unsafe {
        guard.defer_unchecked(move || KeySuffix::free(p as *mut KeySuffix));
    }
}

/// Schedules a tree node for reclamation after the current epoch. The
/// deferred destruction returns the node's memory to the slab free lists
/// (`slab.rs`) rather than the system allocator, so the epoch GC is what
/// refills the per-thread node pools that `put`'s splits draw from.
/// Values, suffixes and children must have been moved or retired
/// separately.
///
/// # Safety
///
/// The node must be unlinked from the tree (marked deleted) and must not
/// be retired twice.
pub(crate) unsafe fn retire_node<V: 'static>(guard: &Guard, n: NodePtr<V>) {
    let raw = n.raw() as usize;
    // SAFETY: per caller contract.
    unsafe {
        guard.defer_unchecked(move || {
            NodePtr::<V>::from_raw(raw as *mut crate::node::NodeHeader).free()
        });
    }
}
