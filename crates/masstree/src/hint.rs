//! Leaf hints: version-validated shortcuts to border nodes.
//!
//! A full `get` pays a root-to-leaf descent — several dependent node
//! visits, each a potential DRAM stall. On skewed workloads the same
//! handful of border nodes is re-traversed millions of times. A
//! [`LeafHint`] remembers where a previous lookup ended — the border
//! node, the version it validated under, and the trie-layer offset — so
//! a later lookup of the same key can jump straight to that node,
//! revalidate, and serve the value with **zero descent**.
//!
//! A `LeafHint` is a [`DescentAnchor`] (the shared validated-anchor
//! core, `anchor.rs`) plus a permutation/slot snapshot powering an
//! exact-match **fast path**. All generation/version validation — the
//! leading check, the trailing Figure 7 bracket, the write-side locked
//! entry — lives in `DescentAnchor`; this module only adds the
//! read-specific slot logic. Hinted writes ([`Masstree::put_at_hint`])
//! and resumable scans ([`crate::scan::ScanCursor`]) consume the same
//! anchor, so a hint captured by any path serves every path.
//!
//! # Why hinted reads can never be stale
//!
//! A hint is a *conjecture*, never an authority. [`Masstree::get_at_hint`]
//! re-proves it on every use:
//!
//! 1. **Reuse check** — the node's slab generation
//!    ([`crate::node::NodeHeader::generation`]) must equal the hint's
//!    snapshot. The generation is bumped when a node's memory is freed,
//!    so a hint can never validate against recycled memory.
//! 2. **Version check** — the node's version word must be unchanged
//!    (modulo the lock bit) since capture. Any split, node deletion,
//!    layer conversion under a freed slot, or freed-slot reuse bumps or
//!    dirties the version, so an unchanged version proves the node still
//!    covers the key's range in its trie layer.
//! 3. **Live search** — the key is looked up in the node's *current*
//!    permutation, exactly as Figure 7 does. Plain inserts and removes
//!    do not bump the version (by design, §4.6), but they publish new
//!    permutations, so the search observes them: a hinted read of a key
//!    inserted after capture finds it, and of a key removed after
//!    capture correctly reports absence. Value updates replace the slot
//!    pointer in place, so a hinted read always returns the *newest*
//!    value.
//! 4. **Re-validation** — version and generation are re-checked after
//!    the reads (the Figure 7 discipline). Any failure returns
//!    [`HintedGet::Stale`] and the caller falls back to a normal
//!    descent, which refreshes the hint.
//!
//! Staleness is therefore impossible by construction: a hinted read
//! either proves it executed against the same unchanged border node a
//! descent would have reached — making it indistinguishable from a
//! plain `get` — or it refuses to answer.
//!
//! # Why dangling hints are safe
//!
//! Node memory is type-stable (the slab never returns it to the OS) and,
//! after first initialization, mutated **only with atomic stores** —
//! including reinitialization when recycled (`node.rs`). Reading through
//! a stale pointer is therefore always race-free; the generation
//! protocol makes it *detectable*. Ordering closes the races: the
//! generation bump (release, in `NodePtr::free`) happens-before any
//! recycled-node store (release) via the slab free-list hand-off, so a
//! hinted reader (acquire loads) that observes any post-reuse value also
//! observes the bump and bails. A reader that observes only pre-free
//! values sees a consistent old node — and every in-tree node is marked
//! DELETED before retirement, a version change the hint detects. Value
//! and suffix dereferences are protected by the epoch guard exactly as
//! in `get`: a pointer loaded from a slot the current permutation
//! publishes cannot be reclaimed before the guard unpins.

use core::marker::PhantomData;
use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::anchor::DescentAnchor;
pub use crate::anchor::NodeRef;
use crate::key::{keylen_rank, KeyCursor, KEYLEN_SUFFIX};
use crate::node::{BorderNode, BorderSearch, ExtractedLv};
use crate::permutation::Permutation;
use crate::suffix::KeySuffix;
use crate::tree::Masstree;
use crate::version::Version;

/// Slot sentinel in a hint captured for an *absent* key (or by a write,
/// which records no slot at all).
const NO_SLOT: u8 = u8::MAX;

/// Permutation sentinel that can never equal a live permutation word
/// (it would mean 15 live keys all in slot 15): hints carrying it never
/// take the fast path. Used when absence was concluded from a *suffix
/// mismatch* — such a slot can later be converted into a layer that
/// contains the key without any version or permutation movement, so the
/// absence must be re-established against live state on every use —
/// and by write-captured hints, which snapshot no slot.
const PERM_NEVER: u64 = u64::MAX;

/// A remembered lookup endpoint: a [`DescentAnchor`] (border node + the
/// version it validated under + the trie-layer byte offset) plus the
/// permutation snapshot, matched slot and keylen code (or [`NO_SLOT`]
/// for an absent key). 32 bytes. Captured by
/// [`Masstree::get_capturing_hint`] / [`Masstree::multi_get_hinted`] and
/// (anchor-only) by the write paths; consumed by
/// [`Masstree::get_at_hint`], [`Masstree::put_at_hint`] and
/// [`Masstree::remove_at_hint`].
///
/// The permutation/slot/keylen snapshot powers the **fast path**: if
/// the node's version *and* permutation are exactly unchanged since
/// capture, the entry set is provably identical — the remembered slot
/// still holds the remembered key (slot contents are immutable while it
/// stays published, and every reuse dirties the version), so the read
/// is just `lv[slot]`, skipping the border search *and* the suffix
/// comparison. Only the value pointer is re-read, so in-place updates
/// are always observed.
pub struct LeafHint<V> {
    pub(crate) ptr: *const BorderNode<V>,
    pub(crate) perm: u64,
    pub(crate) gen: u32,
    pub(crate) version: Version,
    pub(crate) offset: u32,
    pub(crate) slot: u8,
    pub(crate) keylen: u8,
    pub(crate) _marker: PhantomData<fn(V) -> V>,
}

// SAFETY: as for NodeRef — an opaque token, dereferenced only under the
// validation protocol.
unsafe impl<V: Send + Sync> Send for LeafHint<V> {}
// SAFETY: as above.
unsafe impl<V: Send + Sync> Sync for LeafHint<V> {}

impl<V> Clone for LeafHint<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for LeafHint<V> {}
impl<V> core::fmt::Debug for LeafHint<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "LeafHint({:?}, v{:#x}, off {})",
            self.node(),
            self.version.0,
            self.offset
        )
    }
}

impl<V> LeafHint<V> {
    /// Captures a hint for a key found at `slot` (with keylen `code`).
    #[inline]
    pub(crate) fn capture(
        bn: &BorderNode<V>,
        version: Version,
        perm: Permutation,
        slot: usize,
        code: u8,
        offset: usize,
    ) -> Self {
        LeafHint {
            ptr: bn as *const BorderNode<V>,
            perm: perm.raw(),
            gen: bn.generation() as u32,
            version,
            offset: offset as u32,
            slot: slot as u8,
            keylen: code,
            _marker: PhantomData,
        }
    }

    /// Captures a hint recording that the key is absent from `bn`.
    ///
    /// `conclusive` distinguishes *how* absence was established: a
    /// search miss (no slot with the key's rank at all) is stable under
    /// an unchanged permutation and may use the fast path; a suffix
    /// *mismatch* (the rank-9 slot holds a different key) is not — a
    /// layer conversion can add the key below that slot without moving
    /// the version or permutation — so it gets [`PERM_NEVER`] and
    /// always revalidates through the live search.
    #[inline]
    pub(crate) fn capture_absent(
        bn: &BorderNode<V>,
        version: Version,
        perm: Permutation,
        offset: usize,
        conclusive: bool,
    ) -> Self {
        LeafHint {
            ptr: bn as *const BorderNode<V>,
            perm: if conclusive { perm.raw() } else { PERM_NEVER },
            gen: bn.generation() as u32,
            version,
            offset: offset as u32,
            slot: NO_SLOT,
            keylen: 0,
            _marker: PhantomData,
        }
    }

    /// Captures an **anchor-only** hint at the border node a write is
    /// completing on, *while the write still holds the node's lock*: no
    /// slot snapshot, so hinted reads through it always take the
    /// live-search path — but both reads and writes still skip the
    /// whole descent.
    ///
    /// The recorded version is the one the imminent `unlock` will
    /// publish ([`crate::version::VersionCell::unlocked_value`]). This
    /// must happen under the lock: it is the only moment the node
    /// provably covers the written key, so "version unchanged since
    /// capture" keeps meaning "the node still covers this key" — a
    /// post-unlock snapshot could race another writer's split and stamp
    /// a version under which the node never covered the key at all.
    #[inline]
    pub(crate) fn capture_locked_anchor(bn: &BorderNode<V>, offset: usize) -> Self {
        LeafHint {
            ptr: bn as *const BorderNode<V>,
            perm: PERM_NEVER,
            gen: bn.generation() as u32,
            version: bn.version().unlocked_value(),
            offset: offset as u32,
            slot: NO_SLOT,
            keylen: 0,
            _marker: PhantomData,
        }
    }

    /// The generation-stamped node this hint remembers.
    #[inline]
    pub fn node(&self) -> NodeRef<V> {
        NodeRef::new(self.ptr, self.gen)
    }

    /// The shared validated-anchor view of this hint — what the write
    /// paths and any other anchor consumer validate against.
    #[inline]
    pub fn anchor(&self) -> DescentAnchor<V> {
        DescentAnchor {
            ptr: self.ptr,
            gen: self.gen,
            version: self.version,
            offset: self.offset,
            _marker: PhantomData,
        }
    }
}

/// Outcome of a hinted lookup.
pub enum HintedGet<'g, V> {
    /// The hint validated; this is the answer a full descent would give
    /// (`None` = key absent).
    Hit(Option<&'g V>),
    /// Validation failed (split, node deletion, reuse, layer change, or
    /// a racing writer): the caller must fall back to a normal descent.
    Stale,
}

/// What happened to the hint during [`Masstree::get_with_hint`] /
/// [`Masstree::multi_get_hinted`] (and their write-path analogues).
pub enum HintResult<V> {
    /// The provided hint validated and served the operation.
    Hit,
    /// The operation fell back to a full descent (no hint, or a stale
    /// one); here is a fresh hint for this key, captured at the
    /// descent's validated endpoint.
    Refreshed(LeafHint<V>),
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Attempts to serve `get(key)` from a leaf hint with **zero
    /// descent**: jump to the remembered border node, prove it unchanged
    /// (generation + version, via the shared [`DescentAnchor`] core),
    /// search its live permutation, re-validate. Returns
    /// [`HintedGet::Stale`] if the proof fails; the result is never
    /// silently stale (see the module docs).
    ///
    /// The guard keeps any returned value alive; validation itself does
    /// not rely on it.
    pub fn get_at_hint<'g>(
        &self,
        key: &[u8],
        hint: &LeafHint<V>,
        guard: &'g Guard,
    ) -> HintedGet<'g, V> {
        let anchor = hint.anchor();
        // Leading validation (shared anchor core): same incarnation,
        // version unchanged since capture.
        let Some(bn) = anchor.enter(guard) else {
            return HintedGet::Stale;
        };
        // The node is (still) the border node responsible for this key's
        // slice in its trie layer: unchanged version ⇒ no split, no
        // deletion (`lowkey` is constant for a node's lifetime, and only
        // splits move its upper bound).
        let perm_now = bn.permutation();
        let out: Option<*mut ()>;
        if perm_now.raw() == hint.perm {
            // Fast path: version AND permutation exactly match capture,
            // so the entry set is identical to capture time — any route
            // back to the same permutation passes through a freed-slot
            // reuse, which dirties the version. The remembered slot
            // (verified against the whole key at capture) therefore
            // still holds this key: read its value pointer directly, no
            // search, no suffix comparison. In-place value updates are
            // observed because only `lv` is re-read.
            if hint.slot == NO_SLOT {
                out = None;
            } else {
                let slot = hint.slot as usize;
                // `lv` before `keylen` (the `extract_lv` ordering): if
                // the keylen still shows the captured code, the `lv`
                // read happened before any layer conversion overwrote
                // it.
                let lv1 = bn.lv[slot].load(Ordering::Acquire);
                let code = bn.keylen[slot].load(Ordering::Acquire);
                if code != hint.keylen {
                    // Layer conversion (UNSTABLE/LAYER) in flight — it
                    // mutates the slot without a version bump. Fall
                    // back to the descent.
                    return HintedGet::Stale;
                }
                // Start the value fetch under the trailing validation.
                crate::prefetch::prefetch(lv1.cast::<u8>());
                out = Some(lv1);
            }
        } else {
            // Slow path: the permutation moved (inserts/removes don't
            // bump the version). The node still covers the key's range,
            // so search the *live* permutation exactly as a descent
            // would — a key inserted after capture is found, a removed
            // one correctly reports absent.
            let k = KeyCursor::with_offset(key, hint.offset as usize);
            let ikey = k.ikey();
            let rank = keylen_rank(k.keylen_code());
            match bn.search(perm_now, ikey, rank) {
                BorderSearch::Missing { .. } => out = None,
                BorderSearch::Found { slot, .. } => {
                    let (code, ex) = bn.extract_lv(slot);
                    match ex {
                        // Mid-conversion or a layer link: the answer
                        // lives a layer deeper — let the full descent
                        // handle it.
                        ExtractedLv::Unstable | ExtractedLv::Layer(_) => return HintedGet::Stale,
                        ExtractedLv::Value(p) => {
                            if code == KEYLEN_SUFFIX {
                                let sp = bn.suffix[slot].load(Ordering::Acquire);
                                if sp.is_null() {
                                    // Torn with a concurrent reuse.
                                    return HintedGet::Stale;
                                }
                                // SAFETY: suffix blocks are immutable
                                // and epoch-reclaimed; one reachable
                                // from the live permutation is live
                                // under the pinned guard (same argument
                                // as Figure 7's read).
                                let sb = unsafe { KeySuffix::bytes(sp) };
                                if sb == k.suffix() {
                                    out = Some(p);
                                } else {
                                    out = None;
                                }
                            } else if code as usize == k.slice_len() && !k.has_suffix() {
                                out = Some(p);
                            } else {
                                // keylen changed under us (slot reuse in
                                // flight); don't spin — fall back.
                                return HintedGet::Stale;
                            }
                        }
                    }
                }
            }
        }
        // Trailing re-validation (shared anchor core): brackets every
        // read above.
        if !anchor.still_valid(bn) {
            return HintedGet::Stale;
        }
        // SAFETY: a validated value pointer read from a slot the live
        // permutation publishes; its retirement cannot precede our pin
        // (the publishing store did not), so epoch reclamation keeps it
        // live for `'g`.
        HintedGet::Hit(out.map(|p| unsafe { &*p.cast::<V>() }))
    }

    /// `get(key)` through an optional hint: validates the hint first,
    /// falls back to a full capturing descent on miss. Returns the value
    /// and what happened to the hint — [`HintResult::Refreshed`] carries
    /// the replacement hint the caller should remember.
    pub fn get_with_hint<'g>(
        &self,
        key: &[u8],
        hint: Option<&LeafHint<V>>,
        guard: &'g Guard,
    ) -> (Option<&'g V>, HintResult<V>) {
        if let Some(h) = hint {
            if let HintedGet::Hit(v) = self.get_at_hint(key, h, guard) {
                return (v, HintResult::Hit);
            }
        }
        let (v, fresh) = self.get_capturing_hint(key, guard);
        (v, HintResult::Refreshed(fresh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin;

    #[test]
    fn hint_roundtrips_and_serves_updates() {
        let tree: Masstree<u64> = Masstree::new();
        let g = pin();
        tree.put(b"alpha", 1, &g);
        let (v, hint) = tree.get_capturing_hint(b"alpha", &g);
        assert_eq!(v.copied(), Some(1));
        // A value update does not bump the node version: the hint stays
        // valid and serves the NEW value.
        tree.put(b"alpha", 2, &g);
        match tree.get_at_hint(b"alpha", &hint, &g) {
            HintedGet::Hit(v) => assert_eq!(v.copied(), Some(2)),
            HintedGet::Stale => panic!("update must not invalidate the hint"),
        }
    }

    #[test]
    fn hint_observes_remove_and_reinsert() {
        let tree: Masstree<u64> = Masstree::new();
        let g = pin();
        tree.put(b"k1", 10, &g);
        tree.put(b"k2", 20, &g);
        let (_, hint) = tree.get_capturing_hint(b"k1", &g);
        tree.remove(b"k1", &g);
        // Removes publish a new permutation without a version bump; the
        // hinted read searches live state and reports absence.
        match tree.get_at_hint(b"k1", &hint, &g) {
            HintedGet::Hit(v) => assert!(v.is_none()),
            HintedGet::Stale => {} // also acceptable (freed-slot paths)
        }
    }

    #[test]
    fn negative_hint_sees_later_insert() {
        let tree: Masstree<u64> = Masstree::new();
        let g = pin();
        tree.put(b"anchor", 1, &g);
        let (v, hint) = tree.get_capturing_hint(b"newkey", &g);
        assert!(v.is_none());
        tree.put(b"newkey", 42, &g);
        // A plain insert into a fresh slot does not bump the version;
        // the hinted read's live search must find the new key (or the
        // validation must fail) — never a stale "absent".
        match tree.get_at_hint(b"newkey", &hint, &g) {
            HintedGet::Hit(v) => assert_eq!(v.copied(), Some(42)),
            HintedGet::Stale => {
                assert_eq!(tree.get(b"newkey", &g).copied(), Some(42));
            }
        }
    }

    #[test]
    fn split_invalidates_hint() {
        let tree: Masstree<u64> = Masstree::new();
        let g = pin();
        tree.put(b"seed0000", 0, &g);
        let (_, hint) = tree.get_capturing_hint(b"seed0000", &g);
        // Enough inserts to split the (single) border node many times.
        for i in 0..1000u64 {
            tree.put(format!("seed{i:04}").as_bytes(), i, &g);
        }
        match tree.get_at_hint(b"seed0000", &hint, &g) {
            HintedGet::Stale => {}
            HintedGet::Hit(_) => panic!("a split (or dirty insert) must invalidate the hint"),
        }
        // The refresh path works and agrees with get.
        let (v, hint2) = tree.get_capturing_hint(b"seed0000", &g);
        assert_eq!(v.copied(), Some(0));
        match tree.get_at_hint(b"seed0000", &hint2, &g) {
            HintedGet::Hit(v) => assert_eq!(v.copied(), Some(0)),
            HintedGet::Stale => panic!("fresh hint must validate"),
        }
    }

    #[test]
    fn deep_layer_hints_resume_at_their_layer() {
        let tree: Masstree<u64> = Masstree::new();
        let g = pin();
        // 24-byte shared prefix forces three trie layers.
        let keys: Vec<Vec<u8>> = (0..50u64)
            .map(|i| format!("prefixprefixprefixprefix{i:06}").into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            tree.put(k, i as u64, &g);
        }
        for (i, k) in keys.iter().enumerate() {
            let (v, hint) = tree.get_capturing_hint(k, &g);
            assert_eq!(v.copied(), Some(i as u64));
            assert!(hint.offset >= 24, "hint captured in a deep layer");
            assert_eq!(hint.anchor().offset(), hint.offset as usize);
            match tree.get_at_hint(k, &hint, &g) {
                HintedGet::Hit(v) => assert_eq!(v.copied(), Some(i as u64)),
                HintedGet::Stale => panic!("fresh deep-layer hint must validate"),
            }
        }
    }

    #[test]
    fn layer_conversion_under_hint_falls_back() {
        let tree: Masstree<u64> = Masstree::new();
        let g = pin();
        tree.put(b"sharedpfx-A", 1, &g);
        let (_, hint) = tree.get_capturing_hint(b"sharedpfx-A", &g);
        // Same 8-byte slice, different suffix: converts the slot into a
        // layer link.
        tree.put(b"sharedpfx-B", 2, &g);
        match tree.get_at_hint(b"sharedpfx-A", &hint, &g) {
            HintedGet::Stale => {}
            HintedGet::Hit(v) => {
                // Only acceptable if it still proves the live value.
                assert_eq!(v.copied(), Some(1));
            }
        }
        assert_eq!(tree.get(b"sharedpfx-A", &g).copied(), Some(1));
        assert_eq!(tree.get(b"sharedpfx-B", &g).copied(), Some(2));
    }
}
