//! Conditional in-place updates: replace an **existing** key's value
//! atomically, or decline without side effects.
//!
//! `put_with` cannot express "update only if still the value I saw" —
//! its factory must produce a value even for an absent key, so a
//! compare-and-swap built on it would resurrect a concurrently removed
//! key. The value-separation GC relocates payloads out of mostly-dead
//! segments and must install the relocated pointer **only** if the key
//! still holds the exact version it read; these entry points give it
//! that, riding the same locked border completion (and the same
//! validated-anchor fast path) as every other write.

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::gc;
use crate::hint::LeafHint;
use crate::key::{keylen_rank, KeyCursor, KEYLEN_LAYER, KEYLEN_SUFFIX, KEYLEN_UNSTABLE, SLICE_LEN};
use crate::node::{BorderNode, BorderSearch, NodePtr};
use crate::put::AnchorStale;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};

/// Outcome of a conditional update ([`Masstree::update_with`] /
/// [`Masstree::update_at_hint`]).
#[derive(Debug)]
pub enum Update<'g, V> {
    /// The key was present and the closure produced a replacement; the
    /// previous value is borrowed for the guard's lifetime.
    Replaced(&'g V),
    /// The key was present but the closure declined (returned `None`);
    /// the resident value is untouched.
    Kept,
    /// The key is absent; the closure never ran and nothing changed.
    Absent,
}

/// Border-level result: either the update finished here, or the key
/// continues in a deeper trie layer.
enum BorderUpdate<'g, V> {
    Done(Update<'g, V>, Option<LeafHint<V>>),
    Layer { root: NodePtr<V> },
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Atomically replaces `key`'s value with `f(current)` **iff the
    /// key is present and `f` returns `Some`**. Unlike
    /// [`Masstree::put_with`], an absent key is left absent — `f` runs
    /// under the owning border node's lock at most once, so
    /// `f(old)`-returns-`None` is a race-free way to express "only
    /// update if the value is still the one I expect".
    pub fn update_with<'g, F>(&self, key: &[u8], mut f: F, guard: &'g Guard) -> Update<'g, V>
    where
        F: FnMut(&V) -> Option<V>,
    {
        loop {
            let mut k = KeyCursor::new(key);
            match self.update_descend(&mut k, self.load_root(), &mut f, guard) {
                Ok((u, _hint)) => return u,
                Err(Restart) => continue,
            }
        }
    }

    /// [`Masstree::update_with`] entered at a hint's validated anchor
    /// instead of a root-to-leaf descent (see
    /// [`Masstree::put_at_hint`] for the anchor protocol). Also returns
    /// the fresh anchor captured under the completion lock, when one
    /// was capturable. Errors with [`AnchorStale`] — without running
    /// `f` — when the anchor fails validation; fall back to
    /// [`Masstree::update_with`].
    #[allow(clippy::type_complexity)]
    pub fn update_at_hint<'g, F>(
        &self,
        key: &[u8],
        hint: &LeafHint<V>,
        mut f: F,
        guard: &'g Guard,
    ) -> Result<(Update<'g, V>, Option<LeafHint<V>>), AnchorStale>
    where
        F: FnMut(&V) -> Option<V>,
    {
        let anchor = hint.anchor();
        let offset = anchor.offset();
        debug_assert!(offset.is_multiple_of(SLICE_LEN));
        let mut k = KeyCursor::with_offset(key, offset);
        let Some(bn) = anchor.lock_for_write(guard) else {
            return Err(AnchorStale);
        };
        let bn = match self.walk_right_locked(bn, k.ikey()) {
            Ok(bn) => bn,
            Err(Restart) => return Err(AnchorStale),
        };
        match self.update_at_border(bn, &k, &mut f, guard) {
            BorderUpdate::Done(u, h) => Ok((u, h)),
            BorderUpdate::Layer { root } => {
                k.advance();
                match self.update_descend_from(&mut k, root, &mut f, guard) {
                    Ok(r) => Ok(r),
                    Err(Restart) => Err(AnchorStale),
                }
            }
        }
    }

    /// Full-descent update loop (restartable from the tree root).
    fn update_descend<'g>(
        &self,
        k: &mut KeyCursor<'_>,
        root: NodePtr<V>,
        f: &mut dyn FnMut(&V) -> Option<V>,
        guard: &'g Guard,
    ) -> Result<(Update<'g, V>, Option<LeafHint<V>>), Restart> {
        self.update_descend_from(k, root, f, guard)
    }

    /// Descends from `root` (a tree or layer root), locking the
    /// responsible border node of each layer and running the update
    /// completion, following layer links down.
    fn update_descend_from<'g>(
        &self,
        k: &mut KeyCursor<'_>,
        mut root: NodePtr<V>,
        f: &mut dyn FnMut(&V) -> Option<V>,
        guard: &'g Guard,
    ) -> Result<(Update<'g, V>, Option<LeafHint<V>>), Restart> {
        loop {
            let ikey = k.ikey();
            let (start, _) = self.find_border(&mut root, ikey, guard)?;
            let bn = self.lock_border_for_ikey(start, ikey)?;
            match self.update_at_border(bn, k, f, guard) {
                BorderUpdate::Done(u, h) => return Ok((u, h)),
                BorderUpdate::Layer { root: link } => {
                    root = link;
                    k.advance();
                }
            }
        }
    }

    /// The locked border-level completion of a conditional update.
    /// `bn` must be locked and cover the cursor's `ikey`; the lock is
    /// consumed. Mirrors `put_at_border` minus every mutation path
    /// that could *create* state (no insert, no new layer, no split).
    fn update_at_border<'g>(
        &self,
        bn: &'g BorderNode<V>,
        k: &KeyCursor<'_>,
        f: &mut dyn FnMut(&V) -> Option<V>,
        guard: &'g Guard,
    ) -> BorderUpdate<'g, V> {
        let ikey = k.ikey();
        let perm = bn.permutation();
        let rank = keylen_rank(k.keylen_code());
        match bn.search(perm, ikey, rank) {
            BorderSearch::Found { slot, .. } => {
                let code = bn.keylen[slot].load(Ordering::Acquire);
                match code {
                    KEYLEN_LAYER => {
                        let nl = bn.lv[slot].load(Ordering::Acquire);
                        bn.version().unlock();
                        BorderUpdate::Layer {
                            root: NodePtr::from_raw(nl.cast()),
                        }
                    }
                    KEYLEN_UNSTABLE => unreachable!("UNSTABLE under the node lock"),
                    KEYLEN_SUFFIX => {
                        debug_assert!(k.has_suffix(), "rank matched 9");
                        let sp = bn.suffix[slot].load(Ordering::Acquire);
                        // SAFETY: a live suffix block for the slot (we
                        // hold the lock; no concurrent retirement).
                        let sb = unsafe { KeySuffix::bytes(sp) };
                        if sb != k.suffix() {
                            // A different key owns the slot: ours is
                            // absent, and unlike a put we create no
                            // layer for it.
                            bn.version().unlock();
                            return BorderUpdate::Done(Update::Absent, None);
                        }
                        self.replace_slot(bn, slot, k, f, guard)
                    }
                    _ => {
                        debug_assert_eq!(code as usize, k.slice_len());
                        debug_assert!(!k.has_suffix());
                        self.replace_slot(bn, slot, k, f, guard)
                    }
                }
            }
            BorderSearch::Missing { .. } => {
                bn.version().unlock();
                BorderUpdate::Done(Update::Absent, None)
            }
        }
    }

    /// Runs `f` against the slot's live value under the lock and
    /// installs the replacement if it produces one. Consumes the lock.
    fn replace_slot<'g>(
        &self,
        bn: &'g BorderNode<V>,
        slot: usize,
        k: &KeyCursor<'_>,
        f: &mut dyn FnMut(&V) -> Option<V>,
        guard: &'g Guard,
    ) -> BorderUpdate<'g, V> {
        let old = bn.lv[slot].load(Ordering::Acquire);
        // SAFETY: the slot's live value (lock held).
        let old_ref = unsafe { &*old.cast::<V>() };
        match f(old_ref) {
            None => {
                let hint = Some(LeafHint::capture_locked_anchor(bn, k.offset()));
                bn.version().unlock();
                BorderUpdate::Done(Update::Kept, hint)
            }
            Some(new) => {
                let vptr = Box::into_raw(Box::new(new)).cast::<()>();
                bn.lv[slot].store(vptr, Ordering::Release);
                let hint = Some(LeafHint::capture_locked_anchor(bn, k.offset()));
                bn.version().unlock();
                // SAFETY: `old` was this key's value and is now
                // unreachable from the tree.
                unsafe {
                    gc::retire_value::<V>(guard, old);
                }
                BorderUpdate::Done(Update::Replaced(old_ref), hint)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin;

    #[test]
    fn update_present_absent_and_declined() {
        let t: Masstree<u64> = Masstree::new();
        let g = pin();
        t.put(b"key-a", 1, &g);
        // Present + accepted.
        match t.update_with(b"key-a", |old| Some(old + 10), &g) {
            Update::Replaced(prev) => assert_eq!(*prev, 1),
            other => panic!("expected Replaced, got {other:?}"),
        }
        assert_eq!(t.get(b"key-a", &g), Some(&11));
        // Present + declined.
        assert!(matches!(
            t.update_with(b"key-a", |_| None, &g),
            Update::Kept
        ));
        assert_eq!(t.get(b"key-a", &g), Some(&11));
        // Absent: never resurrects.
        assert!(matches!(
            t.update_with(b"key-b", |_| Some(99), &g),
            Update::Absent
        ));
        assert_eq!(t.get(b"key-b", &g), None);
        // Absent long key sharing a prefix with a resident suffix key.
        t.put(b"prefix-shared-long-key-one", 5, &g);
        assert!(matches!(
            t.update_with(b"prefix-shared-long-key-two", |_| Some(6), &g),
            Update::Absent
        ));
        assert_eq!(t.get(b"prefix-shared-long-key-two", &g), None);
        assert_eq!(t.get(b"prefix-shared-long-key-one", &g), Some(&5));
    }

    #[test]
    fn update_at_hint_fast_path_and_fallback() {
        let t: Masstree<u64> = Masstree::new();
        let g = pin();
        for i in 0..500u64 {
            t.put(format!("uk{i:04}").as_bytes(), i, &g);
        }
        let (v, hint) = t.get_capturing_hint(b"uk0042", &g);
        assert_eq!(v, Some(&42));
        let (u, fresh) = t
            .update_at_hint(b"uk0042", &hint, |old| Some(old * 2), &g)
            .expect("anchor valid");
        assert!(matches!(u, Update::Replaced(&42)));
        assert!(fresh.is_some());
        assert_eq!(t.get(b"uk0042", &g), Some(&84));
        // A removed key declines through the same anchor.
        t.remove(b"uk0042", &g);
        match t.update_at_hint(b"uk0042", &hint, |_| Some(1), &g) {
            Ok((Update::Absent, _)) => {}
            Ok((other, _)) => panic!("expected Absent, got {other:?}"),
            Err(AnchorStale) => {} // also acceptable: remove staled it
        }
        assert_eq!(t.get(b"uk0042", &g), None);
    }
}
