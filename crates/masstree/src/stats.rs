//! Counters for rare concurrency events (§4.6.4 of the paper).
//!
//! The paper reports that under an 8-thread insert load fewer than 1 get in
//! 10^6 retries from the root because of a concurrent split, while local
//! insert retries are ~15× more common. These counters reproduce that
//! measurement (`bench/src/bin/retry_stats.rs`). Only *retry* events are
//! counted — the common no-retry path never touches them — so the shared
//! cache lines cost nothing at steady state.

use core::sync::atomic::{AtomicU64, Ordering};

/// Global event counters. One instance per tree.
#[derive(Debug, Default)]
pub struct Stats {
    /// `find_border` restarted from the root because a node split or was
    /// deleted underneath it.
    pub descend_retries_root: AtomicU64,
    /// `find_border` retried locally because of a concurrent insert.
    pub descend_retries_local: AtomicU64,
    /// A reader re-extracted a border node after a version change.
    pub read_retries: AtomicU64,
    /// A reader walked right along the leaf list after a split.
    pub read_advances: AtomicU64,
    /// Whole-operation restarts (deleted node or removed layer).
    pub op_restarts: AtomicU64,
    /// Border-node splits performed.
    pub splits: AtomicU64,
    /// Interior-node splits performed.
    pub interior_splits: AtomicU64,
    /// New trie layers created (§4.6.3).
    pub layers_created: AtomicU64,
    /// Border nodes deleted by remove.
    pub nodes_deleted: AtomicU64,
    /// Empty layers collected by maintenance.
    pub layers_collected: AtomicU64,
    /// Operations executed through the interleaved batch engine.
    pub batched_ops: AtomicU64,
    /// Cursor yields taken because a node was mid-update (the batch
    /// engine switched to another operation instead of spinning).
    pub batch_dirty_yields: AtomicU64,
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            descend_retries_root: self.descend_retries_root.load(Ordering::Relaxed),
            descend_retries_local: self.descend_retries_local.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            read_advances: self.read_advances.load(Ordering::Relaxed),
            op_restarts: self.op_restarts.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            interior_splits: self.interior_splits.load(Ordering::Relaxed),
            layers_created: self.layers_created.load(Ordering::Relaxed),
            nodes_deleted: self.nodes_deleted.load(Ordering::Relaxed),
            layers_collected: self.layers_collected.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            batch_dirty_yields: self.batch_dirty_yields.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub descend_retries_root: u64,
    pub descend_retries_local: u64,
    pub read_retries: u64,
    pub read_advances: u64,
    pub op_restarts: u64,
    pub splits: u64,
    pub interior_splits: u64,
    pub layers_created: u64,
    pub nodes_deleted: u64,
    pub layers_collected: u64,
    pub batched_ops: u64,
    pub batch_dirty_yields: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::new();
        Stats::bump(&s.splits);
        Stats::bump(&s.splits);
        Stats::bump(&s.layers_created);
        let snap = s.snapshot();
        assert_eq!(snap.splits, 2);
        assert_eq!(snap.layers_created, 1);
        assert_eq!(snap.read_retries, 0);
    }
}
