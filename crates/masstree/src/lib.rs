//! # Masstree: cache-crafty multicore key-value storage
//!
//! A Rust implementation of **Masstree** (Mao, Kohler, Morris, "Cache
//! Craftiness for Fast Multicore Key-Value Storage", EuroSys 2012): a
//! shared-memory, concurrent trie of width-15 B+-trees mapping arbitrary
//! binary keys to values.
//!
//! * **Trie of B+-trees** — layer `h` indexes key bytes `[8h, 8h+8)`, so
//!   long shared prefixes cost `O(ℓ + log n)` instead of `O(ℓ · log n)`.
//! * **Optimistic readers** — `get` and `scan` take no locks and never
//!   write shared memory; per-node split/insert version counters plus
//!   hand-over-hand validation detect concurrent structural changes.
//! * **Locally locked writers** — `put` and `remove` lock only the nodes
//!   they touch; border-node *permutations* publish inserts with a single
//!   atomic store.
//! * **Epoch reclamation** — removed values and nodes stay readable until
//!   concurrent readers finish (`crossbeam::epoch`).
//! * **Cache craftiness** — 8-byte key slices compared as big-endian
//!   integers, wide nodes prefetched whole, hot data packed in few lines.
//!
//! # Examples
//!
//! ```
//! use masstree::Masstree;
//!
//! let tree: Masstree<u64> = Masstree::new();
//! let guard = masstree::pin();
//! tree.put(b"edu.harvard.seas.www/news", 1, &guard);
//! tree.put(b"edu.harvard.seas.www/about", 2, &guard);
//! assert_eq!(tree.get(b"edu.harvard.seas.www/news", &guard), Some(&1));
//!
//! // Range scans over a shared prefix:
//! let hits = tree.get_range(b"edu.harvard", 10, &guard);
//! assert_eq!(hits.len(), 2);
//! assert!(hits[0].0 < hits[1].0, "sorted by key");
//!
//! tree.remove(b"edu.harvard.seas.www/news", &guard);
//! assert!(tree.get(b"edu.harvard.seas.www/news", &guard).is_none());
//! ```

pub mod anchor;
pub mod batch;
pub mod hint;
pub mod key;
pub mod permutation;
pub mod prefetch;
pub mod stats;
pub mod suffix;
pub mod version;

mod gc;
mod maintain;
mod node;
mod put;
mod remove;
mod scan;
mod scan_rev;
mod slab;
mod tree;
mod update;

pub use anchor::{DescentAnchor, NodeRef};
pub use batch::HintBatchScratch;
pub use hint::{HintResult, HintedGet, LeafHint};
pub use maintain::TreeReport;
pub use put::AnchorStale;
pub use scan::{ScanCursor, ScanResumeOutcome, ScanScratch};
pub use stats::{Stats, StatsSnapshot};
pub use tree::Masstree;
pub use update::Update;

pub use crossbeam::epoch::Guard;

/// Pins the current thread's epoch, returning a guard that keeps values
/// and nodes read from the tree alive until dropped.
///
/// Pin once per operation (or batch of operations); long-lived guards
/// delay memory reclamation.
#[inline]
pub fn pin() -> Guard {
    crossbeam::epoch::pin()
}
