//! Node prefetching (§4.2 of the paper).
//!
//! Masstree's performance is dominated by DRAM fetch latency during tree
//! descent. Prefetching every cache line of a node in parallel before using
//! it lets a whole wide node arrive in roughly one DRAM latency, which is
//! why fanout 15 beats narrower trees. On x86_64 this issues `prefetcht0`
//! for each 64-byte line; elsewhere it is a no-op (the algorithms remain
//! correct, only the memory-level parallelism is lost).

/// Cache line size assumed by the layout (§6.1: the evaluation machine has
/// 64-byte lines).
pub const CACHE_LINE: usize = 64;

/// Prefetches every cache line of the `size`-byte object at `p`.
///
/// Prefetch is an architectural hint with no memory effects: it cannot
/// fault and is safe for arbitrary addresses, so this function is safe
/// despite taking a raw pointer.
#[allow(clippy::not_unsafe_ptr_arg_deref)]
#[inline(always)]
pub fn prefetch_object(p: *const u8, size: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        let lines = size.div_ceil(CACHE_LINE);
        for i in 0..lines {
            // SAFETY: prefetch is a hint; it has no memory effects and is
            // architecturally safe even for invalid addresses. `p` is in
            // practice a live node pointer.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    p.add(i * CACHE_LINE).cast::<i8>(),
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (p, size);
    }
}

/// Prefetches a whole typed object (every line it spans).
#[inline(always)]
pub fn prefetch<T>(p: *const T) {
    prefetch_object(p.cast::<u8>(), size_of::<T>());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        let data = [0u8; 512];
        prefetch_object(data.as_ptr(), data.len());
        prefetch(&data);
        assert_eq!(data, [0u8; 512]);
    }
}
