//! Variable-length key-suffix blocks (§4.2 of the paper).
//!
//! A border-node slot whose key extends past the 8-byte slice stores the
//! remainder in a heap block referenced from the node. The paper's
//! `keysuffix_t` adaptively inlines suffixes in the node; we use one
//! immutable, epoch-reclaimed block per slot (see DESIGN.md §4.2 for the
//! trade-off). Blocks are single allocations with an inline length header,
//! so reading a suffix costs at most one extra memory reference — the bound
//! the paper's analysis relies on.

use core::alloc::Layout;
use core::ptr;
use std::alloc::{alloc, dealloc, handle_alloc_error};

/// Header of a suffix block; `len` bytes of key data follow it inline.
#[repr(C)]
pub struct KeySuffix {
    len: u32,
    // Suffix bytes are stored immediately after the header.
    _data: [u8; 0],
}

impl KeySuffix {
    fn layout(len: usize) -> Layout {
        Layout::new::<KeySuffix>()
            .extend(Layout::array::<u8>(len).expect("suffix too large"))
            .expect("suffix layout overflow")
            .0
            .pad_to_align()
    }

    /// Allocates a suffix block holding a copy of `bytes`.
    ///
    /// The returned pointer is freed with [`KeySuffix::free`]. The block's
    /// contents never change after this call, so concurrent readers need no
    /// synchronization beyond an acquire load of the pointer itself.
    pub fn alloc(bytes: &[u8]) -> *mut KeySuffix {
        let len = u32::try_from(bytes.len()).expect("suffix longer than u32::MAX");
        let layout = Self::layout(bytes.len());
        // SAFETY: `layout` has non-zero size (the header is non-empty).
        let raw = unsafe { alloc(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        let p = raw.cast::<KeySuffix>();
        // SAFETY: `p` is valid for writes of a `KeySuffix` header plus
        // `bytes.len()` trailing bytes per the layout above.
        unsafe {
            ptr::addr_of_mut!((*p).len).write(len);
            ptr::copy_nonoverlapping(bytes.as_ptr(), raw.add(size_of::<KeySuffix>()), bytes.len());
        }
        p
    }

    /// Returns the suffix bytes.
    ///
    /// # Safety
    ///
    /// `p` must point to a live block returned by [`KeySuffix::alloc`] that
    /// has not been freed, and must remain live for `'a` (in the tree this
    /// is guaranteed by epoch reclamation while a `Guard` is held).
    #[inline]
    pub unsafe fn bytes<'a>(p: *const KeySuffix) -> &'a [u8] {
        // SAFETY: caller guarantees `p` is live; the data bytes follow the
        // header per `alloc`.
        unsafe {
            let len = (*p).len as usize;
            core::slice::from_raw_parts(p.cast::<u8>().add(size_of::<KeySuffix>()), len)
        }
    }

    /// Frees a block returned by [`KeySuffix::alloc`].
    ///
    /// # Safety
    ///
    /// `p` must have been returned by [`KeySuffix::alloc`] and must not be
    /// used (or freed) again afterwards.
    pub unsafe fn free(p: *mut KeySuffix) {
        // SAFETY: caller guarantees `p` came from `alloc`, whose layout is
        // reproduced here from the stored length.
        unsafe {
            let len = (*p).len as usize;
            dealloc(p.cast::<u8>(), Self::layout(len));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = KeySuffix::alloc(b"hello suffix");
        // SAFETY: freshly allocated, not yet freed.
        unsafe {
            assert_eq!(KeySuffix::bytes(p), b"hello suffix");
            KeySuffix::free(p);
        }
    }

    #[test]
    fn empty_suffix() {
        let p = KeySuffix::alloc(b"");
        // SAFETY: freshly allocated, not yet freed.
        unsafe {
            assert_eq!(KeySuffix::bytes(p), b"");
            KeySuffix::free(p);
        }
    }

    #[test]
    fn large_suffix() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let p = KeySuffix::alloc(&data);
        // SAFETY: freshly allocated, not yet freed.
        unsafe {
            assert_eq!(KeySuffix::bytes(p), &data[..]);
            KeySuffix::free(p);
        }
    }

    #[test]
    fn many_blocks_do_not_alias() {
        let blocks: Vec<*mut KeySuffix> = (0u32..64)
            .map(|i| KeySuffix::alloc(&i.to_be_bytes()))
            .collect();
        for (i, &p) in blocks.iter().enumerate() {
            // SAFETY: all blocks live.
            unsafe {
                assert_eq!(KeySuffix::bytes(p), &(i as u32).to_be_bytes());
            }
        }
        for p in blocks {
            // SAFETY: freeing each block exactly once.
            unsafe { KeySuffix::free(p) };
        }
    }
}
