//! The per-node version word and its optimistic-concurrency protocol
//! (Figure 3 and §4.4–4.6 of the paper).
//!
//! The 32-bit version packs a spinlock, two "dirty" bits, a deletion flag,
//! two shape bits and two generation counters:
//!
//! ```text
//! bit 0      LOCKED      claimed by update or insert
//! bit 1      INSERTING   dirty: set while keys are being inserted
//! bit 2      SPLITTING   dirty: set while keys are being shifted out
//! bit 3      DELETED     node has been removed from the tree
//! bit 4      ISROOT      node is the root of some B+-tree (trie layer)
//! bit 5      ISBORDER    node is a border (leaf) node
//! bits 6-13  VINSERT     8-bit insert counter
//! bits 14-31 VSPLIT      18-bit split counter
//! ```
//!
//! Writers mark a node dirty before creating reader-visible intermediate
//! state and increment the matching counter when the lock is released — a
//! single release store, as the paper requires. Readers snapshot a *stable*
//! version (no dirty bits), perform their reads, and compare against the
//! version afterwards; any difference other than the lock bit forces a
//! retry.

use core::sync::atomic::{AtomicU32, Ordering};

pub const LOCKED: u32 = 1 << 0;
pub const INSERTING: u32 = 1 << 1;
pub const SPLITTING: u32 = 1 << 2;
pub const DELETED: u32 = 1 << 3;
pub const ISROOT: u32 = 1 << 4;
pub const ISBORDER: u32 = 1 << 5;
/// Either dirty bit: readers must not observe the node while one is set.
pub const DIRTY_MASK: u32 = INSERTING | SPLITTING;

pub const VINSERT_SHIFT: u32 = 6;
pub const VINSERT_MASK: u32 = 0xff << VINSERT_SHIFT;
pub const VSPLIT_SHIFT: u32 = 14;
pub const VSPLIT_MASK: u32 = !0u32 << VSPLIT_SHIFT;

/// One unit of the vinsert counter (for wrapping addition in `unlock`).
const VINSERT_UNIT: u32 = 1 << VINSERT_SHIFT;
/// One unit of the vsplit counter.
const VSPLIT_UNIT: u32 = 1 << VSPLIT_SHIFT;

/// An immutable snapshot of a node's version word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Version(pub u32);

impl Version {
    #[inline]
    pub fn is_locked(self) -> bool {
        self.0 & LOCKED != 0
    }
    #[inline]
    pub fn is_inserting(self) -> bool {
        self.0 & INSERTING != 0
    }
    #[inline]
    pub fn is_splitting(self) -> bool {
        self.0 & SPLITTING != 0
    }
    #[inline]
    pub fn is_dirty(self) -> bool {
        self.0 & DIRTY_MASK != 0
    }
    #[inline]
    pub fn is_deleted(self) -> bool {
        self.0 & DELETED != 0
    }
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 & ISROOT != 0
    }
    #[inline]
    pub fn is_border(self) -> bool {
        self.0 & ISBORDER != 0
    }
    #[inline]
    pub fn vinsert(self) -> u32 {
        (self.0 & VINSERT_MASK) >> VINSERT_SHIFT
    }
    #[inline]
    pub fn vsplit(self) -> u32 {
        (self.0 & VSPLIT_MASK) >> VSPLIT_SHIFT
    }

    /// True if a reader holding snapshot `self` must retry given the node's
    /// current version `cur`: they differ in anything but the lock bit
    /// (Figure 7's `n.version ⊕ v > "locked"`).
    #[inline]
    pub fn has_changed(self, cur: Version) -> bool {
        (self.0 ^ cur.0) & !LOCKED != 0
    }

    /// True if the node split (or was deleted) between the two snapshots,
    /// which forces a retry from the tree root rather than a local retry
    /// (§4.6.4).
    #[inline]
    pub fn has_split(self, cur: Version) -> bool {
        (self.0 ^ cur.0) & (VSPLIT_MASK | DELETED) != 0
    }
}

/// The atomic version word embedded at the head of every tree node.
#[derive(Debug)]
pub struct VersionCell(AtomicU32);

impl VersionCell {
    /// The initial version bits for a node with the given shape.
    #[inline]
    pub fn initial_bits(is_border: bool, is_root: bool, locked: bool) -> u32 {
        let mut bits = 0;
        if is_border {
            bits |= ISBORDER;
        }
        if is_root {
            bits |= ISROOT;
        }
        if locked {
            bits |= LOCKED;
        }
        bits
    }

    /// Creates a version word for a fresh node.
    #[inline]
    pub fn new(is_border: bool, is_root: bool, locked: bool) -> Self {
        VersionCell(AtomicU32::new(Self::initial_bits(
            is_border, is_root, locked,
        )))
    }

    /// Reinitializes a **recycled** node's version word with an atomic
    /// release store. Recycled slab memory may still be read through a
    /// stale leaf hint (`hint.rs`); the release ordering pairs with the
    /// hinted reader's acquire loads so that any reader observing this
    /// (or any later) value also observes the generation bump performed
    /// when the memory was freed, and bails out.
    #[inline]
    pub fn reinit(&self, is_border: bool, is_root: bool, locked: bool) {
        self.0.store(
            Self::initial_bits(is_border, is_root, locked),
            Ordering::Release,
        );
    }

    /// The split analogue of [`VersionCell::reinit`]: atomically adopts
    /// the splitting source's version (Figure 5's `n'.version ←
    /// n.version`), minus ISROOT (a split's new sibling is never a
    /// root). Used on recycled memory where a plain struct overwrite
    /// would race stale hinted readers.
    #[inline]
    pub fn reinit_for_split(&self, src: &VersionCell) {
        let bits = src.0.load(Ordering::Relaxed) & !ISROOT;
        self.0.store(bits, Ordering::Release);
    }

    /// Raw load with the given ordering.
    #[inline]
    pub fn load(&self, order: Ordering) -> Version {
        Version(self.0.load(order))
    }

    /// `stableversion` (Figure 4): spins until neither dirty bit is set.
    ///
    /// The returned snapshot may still have the lock bit set — the lock
    /// alone does not block readers.
    #[inline]
    pub fn stable(&self) -> Version {
        loop {
            let v = Version(self.0.load(Ordering::Acquire));
            if !v.is_dirty() {
                return v;
            }
            core::hint::spin_loop();
        }
    }

    /// Non-blocking `stableversion`: returns the version if neither dirty
    /// bit is set, `None` otherwise. The batch traversal engine uses this
    /// to switch to another operation's cursor instead of spinning when a
    /// node is mid-update.
    #[inline]
    pub fn try_stable(&self) -> Option<Version> {
        let v = Version(self.0.load(Ordering::Acquire));
        if v.is_dirty() {
            None
        } else {
            Some(v)
        }
    }

    /// `lock` (Figure 4): spins until the lock bit is claimed.
    ///
    /// Returns the version observed at acquisition (with LOCKED set).
    #[inline]
    pub fn lock(&self) -> Version {
        loop {
            let cur = self.0.load(Ordering::Relaxed);
            if cur & LOCKED == 0
                && self
                    .0
                    .compare_exchange_weak(cur, cur | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return Version(cur | LOCKED);
            }
            core::hint::spin_loop();
        }
    }

    /// `lock`, refusing nodes marked DELETED: spins while the lock is
    /// held, returns `None` the moment the latest version word carries
    /// the DELETED bit.
    ///
    /// This is the write-side anchor-validation primitive
    /// (`anchor.rs`): because the CAS is an RMW it always acts on the
    /// **latest** value of the word, so a success proves the node was
    /// not deleted at acquisition time — a property optimistic loads
    /// cannot give on memory that may have been freed.
    #[inline]
    pub fn lock_unless_deleted(&self) -> Option<Version> {
        loop {
            let cur = self.0.load(Ordering::Relaxed);
            if cur & DELETED != 0 {
                return None;
            }
            if cur & LOCKED == 0
                && self
                    .0
                    .compare_exchange_weak(cur, cur | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(Version(cur | LOCKED));
            }
            core::hint::spin_loop();
        }
    }

    /// Attempts to claim the lock without spinning.
    #[inline]
    pub fn try_lock(&self) -> Option<Version> {
        let cur = self.0.load(Ordering::Relaxed);
        if cur & LOCKED != 0 {
            return None;
        }
        self.0
            .compare_exchange(cur, cur | LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|v| Version(v | LOCKED))
    }

    /// Sets the INSERTING dirty bit. Caller must hold the lock.
    #[inline]
    pub fn mark_inserting(&self) {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(v & LOCKED != 0);
        self.0.store(v | INSERTING, Ordering::Release);
    }

    /// Sets the SPLITTING dirty bit. Caller must hold the lock.
    #[inline]
    pub fn mark_splitting(&self) {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(v & LOCKED != 0);
        self.0.store(v | SPLITTING, Ordering::Release);
    }

    /// Sets the DELETED bit (and SPLITTING, so cross-node walkers treat the
    /// change like a split and retry from the root). Caller must hold the
    /// lock; the bit survives unlock.
    #[inline]
    pub fn mark_deleted(&self) {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(v & LOCKED != 0);
        self.0.store(v | DELETED | SPLITTING, Ordering::Release);
    }

    /// Sets or clears the ISROOT bit. Caller must hold the lock (or have
    /// exclusive access to a node not yet published).
    #[inline]
    pub fn set_root(&self, is_root: bool) {
        let v = self.0.load(Ordering::Relaxed);
        let nv = if is_root { v | ISROOT } else { v & !ISROOT };
        self.0.store(nv, Ordering::Release);
    }

    /// The version word [`VersionCell::unlock`] will publish, given the
    /// current (locked) value. Writers use this to capture an anchor's
    /// version snapshot **under the lock** — the only moment the node
    /// provably covers the key just written: an anchor stamped with this
    /// value validates exactly when nothing at all happened to the node
    /// after the write's unlock.
    #[inline]
    pub fn unlocked_value(&self) -> Version {
        let v = self.0.load(Ordering::Relaxed);
        debug_assert!(v & LOCKED != 0, "caller must hold the lock");
        let mut nv = v;
        if v & INSERTING != 0 {
            // Wrapping add within the 8-bit field.
            nv = (nv & !VINSERT_MASK) | (nv.wrapping_add(VINSERT_UNIT) & VINSERT_MASK);
        }
        if v & SPLITTING != 0 {
            // The 18-bit vsplit field occupies the top bits, so a wrapping
            // add cannot leak into other fields.
            nv = (nv & !VSPLIT_MASK) | (nv.wrapping_add(VSPLIT_UNIT) & VSPLIT_MASK);
        }
        Version(nv & !(LOCKED | INSERTING | SPLITTING))
    }

    /// `unlock` (Figure 4): bumps vinsert/vsplit according to the dirty
    /// bits, then clears LOCKED, INSERTING and SPLITTING in a single
    /// release store.
    #[inline]
    pub fn unlock(&self) {
        debug_assert!(
            self.0.load(Ordering::Relaxed) & LOCKED != 0,
            "unlock of unlocked node"
        );
        self.0.store(self.unlocked_value().0, Ordering::Release);
    }

    /// Copies lock-independent state (dirty/shape bits and counters) from
    /// another cell into a freshly created, still-private node (Figure 5's
    /// `n'.version ← n.version`).
    #[inline]
    pub fn clone_for_split(&self) -> VersionCell {
        let v = self.0.load(Ordering::Relaxed);
        VersionCell(AtomicU32::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_shape_bits() {
        let v = VersionCell::new(true, true, false).load(Ordering::Relaxed);
        assert!(v.is_border() && v.is_root() && !v.is_locked());
        let v = VersionCell::new(false, false, true).load(Ordering::Relaxed);
        assert!(!v.is_border() && !v.is_root() && v.is_locked());
    }

    #[test]
    fn lock_unlock_roundtrip() {
        let c = VersionCell::new(true, false, false);
        let v = c.lock();
        assert!(v.is_locked());
        assert!(c.try_lock().is_none());
        c.unlock();
        let v2 = c.load(Ordering::Relaxed);
        assert!(!v2.is_locked());
        // No dirty marks: counters unchanged.
        assert_eq!(v2.vinsert(), 0);
        assert_eq!(v2.vsplit(), 0);
    }

    #[test]
    fn unlock_bumps_vinsert_after_mark_inserting() {
        let c = VersionCell::new(true, false, false);
        c.lock();
        c.mark_inserting();
        c.unlock();
        let v = c.load(Ordering::Relaxed);
        assert_eq!(v.vinsert(), 1);
        assert_eq!(v.vsplit(), 0);
        assert!(!v.is_dirty() && !v.is_locked());
    }

    #[test]
    fn unlock_bumps_vsplit_after_mark_splitting() {
        let c = VersionCell::new(false, false, false);
        c.lock();
        c.mark_splitting();
        c.unlock();
        let v = c.load(Ordering::Relaxed);
        assert_eq!(v.vsplit(), 1);
        assert_eq!(v.vinsert(), 0);
    }

    #[test]
    fn vinsert_wraps_within_field() {
        let c = VersionCell::new(true, false, false);
        for _ in 0..256 {
            c.lock();
            c.mark_inserting();
            c.unlock();
        }
        let v = c.load(Ordering::Relaxed);
        assert_eq!(v.vinsert(), 0, "8-bit counter wraps to zero");
        assert_eq!(v.vsplit(), 0, "wrap must not carry into vsplit");
        assert!(v.is_border());
    }

    #[test]
    fn vsplit_wraps_within_field() {
        let c = VersionCell::new(false, false, false);
        // Force the counter to its maximum then wrap once.
        for _ in 0..3 {
            c.lock();
            c.mark_splitting();
            c.unlock();
        }
        assert_eq!(c.load(Ordering::Relaxed).vsplit(), 3);
    }

    #[test]
    fn has_changed_ignores_lock_bit() {
        let a = Version(ISBORDER);
        let b = Version(ISBORDER | LOCKED);
        assert!(!a.has_changed(b));
        let c = Version(ISBORDER | VINSERT_UNIT);
        assert!(a.has_changed(c));
        let d = Version(ISBORDER | INSERTING);
        assert!(a.has_changed(d));
    }

    #[test]
    fn has_split_detects_vsplit_and_delete() {
        let a = Version(ISBORDER);
        assert!(a.has_split(Version(ISBORDER | VSPLIT_UNIT)));
        assert!(a.has_split(Version(ISBORDER | DELETED)));
        assert!(!a.has_split(Version(ISBORDER | VINSERT_UNIT)));
    }

    #[test]
    fn mark_deleted_persists_past_unlock() {
        let c = VersionCell::new(true, false, false);
        c.lock();
        c.mark_deleted();
        c.unlock();
        let v = c.load(Ordering::Relaxed);
        assert!(v.is_deleted());
        assert!(!v.is_dirty());
        assert_eq!(v.vsplit(), 1, "delete counts as a split for walkers");
    }

    #[test]
    fn stable_returns_nondirty() {
        let c = VersionCell::new(true, false, false);
        c.lock();
        let v = c.stable();
        assert!(v.is_locked() && !v.is_dirty());
        c.unlock();
    }

    #[test]
    fn stable_spins_until_dirty_clears() {
        use std::sync::Arc;
        let c = Arc::new(VersionCell::new(true, false, false));
        c.lock();
        c.mark_inserting();
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            let v = c2.stable();
            assert!(!v.is_dirty());
            v
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.unlock();
        let v = h.join().unwrap();
        assert_eq!(v.vinsert(), 1);
    }
}
