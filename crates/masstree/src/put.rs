//! The write path: `put`, border inserts (§4.6.2), new-layer creation
//! (§4.6.3) and splits (Figure 5, §4.6.4).

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::gc;
use crate::hint::LeafHint;
use crate::key::{keylen_rank, KeyCursor, KEYLEN_LAYER, KEYLEN_SUFFIX, KEYLEN_UNSTABLE, SLICE_LEN};
use crate::node::{BorderNode, BorderSearch, InteriorNode, NodePtr, RootSlot};
use crate::permutation::{Permutation, WIDTH};
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};

/// Returned by the hinted write entries ([`Masstree::put_at_hint`],
/// [`Masstree::remove_at_hint`]) when the anchor failed validation (the
/// node was freed, deleted, or the chain restarted): the caller must
/// fall back to a full descent, which refreshes the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorStale;

/// Outcome of completing a write at one locked border node (the lock is
/// consumed either way).
pub(crate) enum BorderWrite<'g, V> {
    /// The put completed; `prev` is the previous value and `hint` an
    /// anchor-only hint captured **under the lock** at the completion
    /// node (absent for splits, where the key's final node's lock is
    /// consumed deep in the ascent).
    Done {
        prev: Option<&'g V>,
        hint: Option<LeafHint<V>>,
    },
    /// The key continues in a deeper trie layer rooted at `root`,
    /// reached through `node[slot]` (which heals lazily).
    Layer {
        root: NodePtr<V>,
        node: *const BorderNode<V>,
        slot: usize,
    },
}

/// Where the new key landed during a split-with-insert.
enum SplitSide {
    Left,
    Right,
}

/// Produces the value to store, exactly once, at the linearization point
/// of a put — under the owning border node's lock, with the current value
/// (if any) visible. This is what makes multi-column read-copy-update
/// values (§4.7) atomic: no other writer can interleave between reading
/// the old value and publishing the new one.
pub(crate) trait ValueFactory<V> {
    /// Returns a `Box<V>` raw pointer. Called exactly once per put.
    fn make(&mut self, old: Option<&V>) -> *mut ();
}

/// A value boxed ahead of time (plain `put`).
struct Ready(*mut ());

impl<V> ValueFactory<V> for Ready {
    fn make(&mut self, _old: Option<&V>) -> *mut () {
        debug_assert!(!self.0.is_null(), "value factory called twice");
        std::mem::replace(&mut self.0, core::ptr::null_mut())
    }
}

/// A value computed from the old one under the lock (`put_with`).
struct FromFn<'a, V>(&'a mut dyn FnMut(Option<&V>) -> V);

impl<V> ValueFactory<V> for FromFn<'_, V> {
    fn make(&mut self, old: Option<&V>) -> *mut () {
        Box::into_raw(Box::new((self.0)(old))).cast::<()>()
    }
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Inserts or updates `key → value`.
    ///
    /// Returns the previous value if the key was present; the reference is
    /// valid for the guard's lifetime (the old value is reclaimed after
    /// all current readers unpin).
    pub fn put<'g>(&self, key: &[u8], value: V, guard: &'g Guard) -> Option<&'g V> {
        let vptr = Box::into_raw(Box::new(value)).cast::<()>();
        self.put_inner(key, &mut Ready(vptr), guard)
    }

    /// Atomically installs `f(current)` for `key`.
    ///
    /// `f` runs under the owning border node's lock, so the read of the
    /// current value and the publication of the new one form one atomic
    /// step — concurrent `put_with` calls to the same key serialize. This
    /// is the paper's §4.7 value protocol: a put builds a fresh value
    /// object, copying unmodified columns from the old one. Keep `f`
    /// short; it executes inside a spinlock critical section.
    ///
    /// Returns the previous value, if any.
    pub fn put_with<'g, F>(&self, key: &[u8], mut f: F, guard: &'g Guard) -> Option<&'g V>
    where
        F: FnMut(Option<&V>) -> V,
    {
        self.put_inner(key, &mut FromFn(&mut f), guard)
    }

    /// Core insertion, generic over how the value is produced.
    fn put_inner<'g>(
        &self,
        key: &[u8],
        factory: &mut dyn ValueFactory<V>,
        guard: &'g Guard,
    ) -> Option<&'g V> {
        loop {
            let mut k = KeyCursor::new(key);
            match self.put_descend(
                &mut k,
                self.load_root(),
                RootSlot::Tree(&self.root),
                factory,
                guard,
            ) {
                Ok((prev, _hint)) => return prev,
                Err(Restart) => continue,
            }
        }
    }

    /// [`Masstree::put_with`], additionally capturing an anchor-only
    /// [`LeafHint`] at the border node the put completed on (so write
    /// misses can refresh a hint cache). `None` when the node was
    /// deleted before the capture could be taken.
    pub fn put_with_capture<'g, F>(
        &self,
        key: &[u8],
        mut f: F,
        guard: &'g Guard,
    ) -> (Option<&'g V>, Option<LeafHint<V>>)
    where
        F: FnMut(Option<&V>) -> V,
    {
        let factory: &mut dyn ValueFactory<V> = &mut FromFn(&mut f);
        loop {
            let mut k = KeyCursor::new(key);
            match self.put_descend(
                &mut k,
                self.load_root(),
                RootSlot::Tree(&self.root),
                factory,
                guard,
            ) {
                Ok((prev, hint)) => return (prev, hint),
                Err(Restart) => continue,
            }
        }
    }

    /// Hinted write: installs `f(current)` for `key` starting at the
    /// hint's **validated anchor** instead of a root-to-leaf descent.
    ///
    /// The anchor enters through
    /// [`crate::anchor::DescentAnchor::lock_for_write`] (which proves
    /// the remembered node is still the same live incarnation — see its
    /// docs for why a stale anchor can never lock the wrong node), then
    /// completes exactly as a descending put would: walk-right to the
    /// responsible sibling, then the shared locked border completion —
    /// including layer descents, new-layer creation and splits. The
    /// result is indistinguishable from [`Masstree::put_with`].
    ///
    /// Returns the previous value plus the **fresh anchor** captured
    /// under the completion lock (when one was capturable): an insert
    /// into a freed slot or a split can stale the hint that served this
    /// very write, and the replacement is free — callers should record
    /// it so subsequent reads keep their zero-descent entry.
    ///
    /// Errors with [`AnchorStale`] — *without* consuming `f` — when the
    /// anchor fails validation or the chain restarts; the caller falls
    /// back to a full put (e.g. [`Masstree::put_with_capture`]) which
    /// refreshes the hint.
    #[allow(clippy::type_complexity)]
    pub fn put_at_hint<'g, F>(
        &self,
        key: &[u8],
        hint: &LeafHint<V>,
        mut f: F,
        guard: &'g Guard,
    ) -> Result<(Option<&'g V>, Option<LeafHint<V>>), AnchorStale>
    where
        F: FnMut(Option<&V>) -> V,
    {
        let anchor = hint.anchor();
        let offset = anchor.offset();
        debug_assert!(offset.is_multiple_of(SLICE_LEN));
        let mut k = KeyCursor::with_offset(key, offset);
        let Some(bn) = anchor.lock_for_write(guard) else {
            return Err(AnchorStale);
        };
        let bn = match self.walk_right_locked(bn, k.ikey()) {
            Ok(bn) => bn,
            Err(Restart) => return Err(AnchorStale),
        };
        // The anchored layer's root slot: at layer 0 it is the tree
        // root; deeper, the owning layer-link slot is unknown, so root
        // updates there fall back entirely to §4.6.4 lazy healing.
        let root_slot = if offset == 0 {
            RootSlot::Tree(&self.root)
        } else {
            RootSlot::Detached
        };
        let factory: &mut dyn ValueFactory<V> = &mut FromFn(&mut f);
        match self.put_at_border(bn, &k, &root_slot, factory, guard) {
            BorderWrite::Done { prev, hint } => Ok((prev, hint)),
            BorderWrite::Layer { root, node, slot } => {
                // The key continues below the anchored node: from here
                // on this is a normal descent (every node reached under
                // this call's pin), so restarts could retry — but the
                // fallback full put is just as good and keeps one
                // restart story.
                k.advance();
                match self.put_descend(
                    &mut k,
                    root,
                    RootSlot::LayerLink { node, slot },
                    factory,
                    guard,
                ) {
                    Ok((prev, fresh)) => Ok((prev, fresh)),
                    Err(Restart) => Err(AnchorStale),
                }
            }
        }
    }

    /// The descending half of a put: from `root` (whose pointer lives in
    /// `root_slot`), find and lock the responsible border node of each
    /// layer and run the shared locked completion, following layer links
    /// down. Returns the previous value and the completion anchor (when
    /// one was capturable); `Err(Restart)` propagates deleted-node
    /// retries to the caller's restart loop **before** the factory has
    /// run.
    fn put_descend<'g>(
        &self,
        k: &mut KeyCursor<'_>,
        mut root: NodePtr<V>,
        mut root_slot: RootSlot<'_, V>,
        factory: &mut dyn ValueFactory<V>,
        guard: &'g Guard,
    ) -> Result<(Option<&'g V>, Option<LeafHint<V>>), Restart> {
        loop {
            let ikey = k.ikey();
            let entered = root;
            let start = match self.find_border(&mut root, ikey, guard) {
                Ok((n, _)) => n,
                Err(Restart) => {
                    Stats::bump(&self.stats.op_restarts);
                    return Err(Restart);
                }
            };
            if root != entered {
                // Heal the stale root pointer (lazy root update,
                // §4.6.4): best-effort CAS from the pointer we entered
                // through to the true root we climbed to.
                root_slot.cas(entered.raw(), root.raw());
            }
            let bn = self.lock_border_for_ikey(start, ikey)?;
            match self.put_at_border(bn, k, &root_slot, factory, guard) {
                BorderWrite::Done { prev, hint } => return Ok((prev, hint)),
                BorderWrite::Layer {
                    root: link,
                    node,
                    slot,
                } => {
                    root = link;
                    root_slot = RootSlot::LayerLink { node, slot };
                    k.advance();
                }
            }
        }
    }

    /// The locked border-level completion of a put — shared verbatim by
    /// descending puts ([`Masstree::put_descend`]), the batch engine's
    /// write cursors, and anchored writes ([`Masstree::put_at_hint`]).
    /// `bn` must be locked and cover the cursor's current `ikey`; the
    /// lock is consumed.
    pub(crate) fn put_at_border<'g>(
        &self,
        bn: &'g BorderNode<V>,
        k: &KeyCursor<'_>,
        root_slot: &RootSlot<'_, V>,
        factory: &mut dyn ValueFactory<V>,
        guard: &'g Guard,
    ) -> BorderWrite<'g, V> {
        let ikey = k.ikey();
        let perm = bn.permutation();
        let rank = keylen_rank(k.keylen_code());
        match bn.search(perm, ikey, rank) {
            BorderSearch::Found { slot, .. } => {
                let code = bn.keylen[slot].load(Ordering::Acquire);
                match code {
                    KEYLEN_LAYER => {
                        // Descend into the existing layer.
                        let nl = bn.lv[slot].load(Ordering::Acquire);
                        bn.version().unlock();
                        BorderWrite::Layer {
                            root: NodePtr::from_raw(nl.cast()),
                            node: bn,
                            slot,
                        }
                    }
                    KEYLEN_UNSTABLE => {
                        unreachable!("UNSTABLE under the node lock")
                    }
                    KEYLEN_SUFFIX => {
                        debug_assert!(k.has_suffix(), "rank matched 9");
                        let sp = bn.suffix[slot].load(Ordering::Acquire);
                        // SAFETY: a live suffix block for the slot
                        // (we hold the lock; it cannot be retired
                        // concurrently).
                        let sb = unsafe { KeySuffix::bytes(sp) };
                        if sb == k.suffix() {
                            // Update: build the new value under the
                            // lock, publish with one atomic store.
                            let old = bn.lv[slot].load(Ordering::Acquire);
                            // SAFETY: the slot's live value.
                            let vptr = factory.make(Some(unsafe { &*old.cast::<V>() }));
                            bn.lv[slot].store(vptr, Ordering::Release);
                            let hint = Some(LeafHint::capture_locked_anchor(bn, k.offset()));
                            bn.version().unlock();
                            // SAFETY: `old` was this key's value and
                            // is now unreachable from the tree.
                            unsafe {
                                gc::retire_value::<V>(guard, old);
                                return BorderWrite::Done {
                                    prev: Some(&*old.cast::<V>()),
                                    hint,
                                };
                            }
                        }
                        // Two distinct keys share the slice: move
                        // the resident key one layer down, then
                        // keep inserting there (§4.6.3).
                        let new_root = self.make_layer(bn, slot, sb, guard);
                        bn.version().unlock();
                        BorderWrite::Layer {
                            root: NodePtr::from_border(new_root),
                            node: bn,
                            slot,
                        }
                    }
                    _ => {
                        // Exact inline match: update in place.
                        debug_assert_eq!(code as usize, k.slice_len());
                        debug_assert!(!k.has_suffix());
                        let old = bn.lv[slot].load(Ordering::Acquire);
                        // SAFETY: the slot's live value.
                        let vptr = factory.make(Some(unsafe { &*old.cast::<V>() }));
                        bn.lv[slot].store(vptr, Ordering::Release);
                        let hint = Some(LeafHint::capture_locked_anchor(bn, k.offset()));
                        bn.version().unlock();
                        // SAFETY: as in the suffix-update arm.
                        unsafe {
                            gc::retire_value::<V>(guard, old);
                            BorderWrite::Done {
                                prev: Some(&*old.cast::<V>()),
                                hint,
                            }
                        }
                    }
                }
            }
            BorderSearch::Missing { pos } => {
                let vptr = factory.make(None);
                if !perm.is_full() {
                    self.insert_into_border(bn, perm, pos, k, vptr);
                    // Capture under the lock: the node provably covers
                    // the key right now (a post-unlock capture could
                    // race a split that moves it away).
                    let hint = Some(LeafHint::capture_locked_anchor(bn, k.offset()));
                    bn.version().unlock();
                    return BorderWrite::Done { prev: None, hint };
                }
                // SAFETY: `bn` is locked and full; `vptr` ownership
                // moves into the split. No anchor capture: the key may
                // land in the right sibling, whose lock the ascent
                // consumes before we could stamp a version here.
                unsafe {
                    self.split_and_insert(bn, pos, k, vptr, root_slot, guard);
                }
                BorderWrite::Done {
                    prev: None,
                    hint: None,
                }
            }
        }
    }

    /// Inserts `(k, vptr)` into a non-full locked border node at sorted
    /// position `pos` (§4.6.2): fill a free slot, then publish a new
    /// permutation with one release store.
    pub(crate) fn insert_into_border(
        &self,
        bn: &BorderNode<V>,
        perm: Permutation,
        pos: usize,
        k: &KeyCursor<'_>,
        vptr: *mut (),
    ) {
        let (nperm, slot) = perm.insert_from_back(pos);
        if bn.take_freed(slot) {
            // Reusing a slot freed by remove: readers may hold stale
            // references to it, so dirty the node and bump vinsert on
            // unlock (§4.6.5).
            bn.version().mark_inserting();
        }
        let suffix = if k.has_suffix() {
            KeySuffix::alloc(k.suffix())
        } else {
            core::ptr::null_mut()
        };
        bn.write_slot(slot, k.ikey(), k.keylen_code(), suffix, vptr);
        bn.publish_permutation(nperm);
    }

    /// Creates a new trie layer under `bn[slot]` holding the slot's
    /// existing key remainder `resident_suffix` and value (§4.6.3).
    /// Publication order is UNSTABLE → `lv` → LAYER so readers never
    /// misinterpret the slot. Caller holds `bn`'s lock.
    pub(crate) fn make_layer(
        &self,
        bn: &BorderNode<V>,
        slot: usize,
        resident_suffix: &[u8],
        guard: &Guard,
    ) -> *mut BorderNode<V> {
        Stats::bump(&self.stats.layers_created);
        let old_suffix = bn.suffix[slot].load(Ordering::Acquire);
        let old_value = bn.lv[slot].load(Ordering::Acquire);
        // Build the new layer's root: one border node holding the resident
        // key, re-sliced one layer deeper.
        let ik2 = crate::key::slice_at(resident_suffix, 0);
        let (code2, suffix2) = if resident_suffix.len() > SLICE_LEN {
            (
                KEYLEN_SUFFIX,
                KeySuffix::alloc(&resident_suffix[SLICE_LEN..]),
            )
        } else {
            (resident_suffix.len() as u8, core::ptr::null_mut())
        };
        let new_root = BorderNode::<V>::alloc(true, false, 0);
        // SAFETY: fresh private node.
        let nr = unsafe { &*new_root };
        nr.write_slot(0, ik2, code2, suffix2, old_value);
        nr.publish_permutation(Permutation::identity(1));
        // Publish into the parent slot (order per §4.6.3).
        bn.keylen[slot].store(KEYLEN_UNSTABLE, Ordering::Release);
        bn.lv[slot].store(new_root.cast::<()>(), Ordering::Release);
        bn.keylen[slot].store(KEYLEN_LAYER, Ordering::Release);
        // The old suffix block is no longer referenced by new readers;
        // in-flight readers may still dereference it until they unpin.
        // SAFETY: unreachable from the slot once KEYLEN_LAYER is visible.
        unsafe { gc::retire_suffix(guard, old_suffix) };
        new_root
    }

    /// Splits the locked, full border node `bn` while inserting the new
    /// key (Figure 5), then ascends. Consumes `bn`'s lock.
    ///
    /// # Safety
    ///
    /// `bn` must be locked by the caller and full; `vptr` ownership moves
    /// into the tree.
    pub(crate) unsafe fn split_and_insert<'g>(
        &self,
        bn: &'g BorderNode<V>,
        pos: usize,
        k: &KeyCursor<'_>,
        vptr: *mut (),
        root_slot: &RootSlot<'_, V>,
        guard: &'g Guard,
    ) {
        Stats::bump(&self.stats.splits);
        bn.version().mark_splitting();
        let perm = bn.permutation();
        debug_assert!(perm.is_full());

        // Conceptual sorted array of WIDTH+1 entries: the node's keys with
        // the new key at `pos`. `usize::MAX` denotes the new key.
        const NEW: usize = usize::MAX;
        let mut order = [0usize; WIDTH + 1];
        for (i, item) in order.iter_mut().enumerate().take(pos) {
            *item = perm.get(i);
        }
        order[pos] = NEW;
        for i in pos..WIDTH {
            order[i + 1] = perm.get(i);
        }
        let ikey_of = |e: usize| -> u64 {
            if e == NEW {
                k.ikey()
            } else {
                bn.keyslice[e].load(Ordering::Acquire)
            }
        };

        // Split point: sequential-insert optimization keeps the node
        // intact and sends only the new key right; otherwise split near
        // the middle at an ikey boundary (same-slice keys must stay
        // together, §4.2).
        let seq_insert = pos == WIDTH
            && bn.next.load(Ordering::Acquire).is_null()
            && ikey_of(order[WIDTH - 1]) != k.ikey();
        let split_at = if seq_insert {
            WIDTH
        } else {
            let mid = WIDTH.div_ceil(2);
            let mut best = None;
            for b in 1..=WIDTH {
                if ikey_of(order[b]) != ikey_of(order[b - 1]) {
                    let d = b.abs_diff(mid);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, b));
                    }
                }
            }
            // A full node holds at most 10 keys per slice (§4.2), so a
            // boundary always exists among 16 entries.
            best.expect("full border node with a single slice").1
        };

        let right = BorderNode::<V>::alloc_for_split(bn.version(), ikey_of(order[split_at]));
        // SAFETY: fresh private node (locked+splitting).
        let rn = unsafe { &*right };
        let mut side = SplitSide::Left;
        for (j, &e) in order[split_at..].iter().enumerate() {
            if e == NEW {
                let suffix = if k.has_suffix() {
                    KeySuffix::alloc(k.suffix())
                } else {
                    core::ptr::null_mut()
                };
                rn.write_slot(j, k.ikey(), k.keylen_code(), suffix, vptr);
                side = SplitSide::Right;
            } else {
                rn.write_slot(
                    j,
                    bn.keyslice[e].load(Ordering::Acquire),
                    bn.keylen[e].load(Ordering::Acquire),
                    bn.suffix[e].load(Ordering::Acquire),
                    bn.lv[e].load(Ordering::Acquire),
                );
            }
        }
        rn.publish_permutation(Permutation::identity(WIDTH + 1 - split_at));

        // Rebuild the left node's permutation; if the new key stays left,
        // it takes a slot vacated by a moved entry.
        let mut left_slots = [0usize; WIDTH];
        let mut nl = 0;
        let mut new_left_pos = None;
        for &e in order[..split_at].iter() {
            if e == NEW {
                new_left_pos = Some(nl);
                left_slots[nl] = NEW;
            } else {
                left_slots[nl] = e;
            }
            nl += 1;
        }
        if let Some(ipos) = new_left_pos {
            // Any slot moved right is now free in the left node.
            let freed = order[split_at..]
                .iter()
                .copied()
                .find(|&e| e != NEW)
                .expect("split moved at least one resident entry");
            let suffix = if k.has_suffix() {
                KeySuffix::alloc(k.suffix())
            } else {
                core::ptr::null_mut()
            };
            bn.write_slot(freed, k.ikey(), k.keylen_code(), suffix, vptr);
            left_slots[ipos] = freed;
        }
        bn.publish_permutation(Permutation::from_slots(&left_slots[..nl]));

        // Link the new sibling into the leaf list. `old_next.prev` is
        // protected by its previous sibling's lock, which is now `right`
        // (held), per §4.5.
        let old_next = bn.next.load(Ordering::Acquire);
        rn.next.store(old_next, Ordering::Release);
        rn.prev
            .store(bn as *const _ as *mut BorderNode<V>, Ordering::Release);
        if !old_next.is_null() {
            // SAFETY: leaf-list nodes are live under the pinned epoch.
            unsafe { (*old_next).prev.store(right, Ordering::Release) };
        }
        bn.next.store(right, Ordering::Release);
        let _ = side;

        // Ascend (Figure 5), inserting `right` next to `bn` in the parent.
        let left_ptr = NodePtr::from_border(bn as *const _ as *mut BorderNode<V>);
        let right_ptr = NodePtr::from_border(right);
        let split_key = rn.lowkey.load(Ordering::Relaxed);
        // SAFETY: both nodes are locked; ownership of the locks moves in.
        unsafe { self.ascend_after_split(left_ptr, right_ptr, split_key, root_slot, guard) };
    }

    /// Inserts `right` (locked) as `left`'s (locked) new sibling in the
    /// parent chain, splitting parents as needed (Figure 5's `ascend`
    /// loop). Releases all locks it holds before returning.
    ///
    /// # Safety
    ///
    /// `left` and `right` must be locked by the caller; `right` must be
    /// unreachable from any parent yet.
    // Index loops mirror Figure 5's parallel keyslice/child arrays.
    #[allow(clippy::needless_range_loop)]
    pub(crate) unsafe fn ascend_after_split(
        &self,
        mut left: NodePtr<V>,
        mut right: NodePtr<V>,
        mut split_key: u64,
        root_slot: &RootSlot<'_, V>,
        guard: &Guard,
    ) {
        loop {
            match self.locked_parent(left, guard) {
                None => {
                    // `left` was the layer root: create a new interior
                    // root above `left` and `right`.
                    let newp = InteriorNode::<V>::alloc(true, false);
                    // SAFETY: fresh private node.
                    let np = unsafe { &*newp };
                    np.keyslice[0].store(split_key, Ordering::Relaxed);
                    np.child[0].store(left.raw(), Ordering::Relaxed);
                    np.child[1].store(right.raw(), Ordering::Relaxed);
                    np.nkeys.store(1, Ordering::Release);
                    // SAFETY: `left`/`right` are locked by us; setting a
                    // child's parent requires the (new, private) parent's
                    // lock conceptually — no other thread can reach `newp`.
                    unsafe {
                        left.set_parent(newp);
                        right.set_parent(newp);
                        // Parent pointers must be visible before the root
                        // demotion so climbers can ascend.
                        left.version().set_root(false);
                    }
                    root_slot.cas(left.raw(), newp.cast());
                    // SAFETY: we hold both locks.
                    unsafe {
                        left.version().unlock();
                        right.version().unlock();
                    }
                    return;
                }
                Some(p) if p.nkeys() < WIDTH => {
                    p.version().mark_inserting();
                    let ci = p
                        .child_index(left.raw())
                        .expect("locked parent must reference its child");
                    let n = p.nkeys();
                    // Shift separators/children right of the insertion
                    // point; readers retry via the INSERTING mark.
                    let mut j = n;
                    while j > ci {
                        let kv = p.keyslice[j - 1].load(Ordering::Relaxed);
                        p.keyslice[j].store(kv, Ordering::Relaxed);
                        let cv = p.child[j].load(Ordering::Relaxed);
                        p.child[j + 1].store(cv, Ordering::Relaxed);
                        j -= 1;
                    }
                    p.keyslice[ci].store(split_key, Ordering::Relaxed);
                    p.child[ci + 1].store(right.raw(), Ordering::Relaxed);
                    // SAFETY: we hold `p`'s lock, which protects its
                    // children's parent pointers.
                    unsafe { right.set_parent(p as *const _ as *mut InteriorNode<V>) };
                    p.nkeys.store(n as u8 + 1, Ordering::Release);
                    // SAFETY: we hold all three locks (Figure 5).
                    unsafe {
                        left.version().unlock();
                        right.version().unlock();
                    }
                    p.version().unlock();
                    return;
                }
                Some(p) => {
                    // Split the full parent and keep ascending.
                    Stats::bump(&self.stats.interior_splits);
                    p.version().mark_splitting();
                    // SAFETY: we hold `left`'s lock; Figure 5 releases it
                    // before splitting the parent.
                    unsafe { left.version().unlock() };
                    let ci = p
                        .child_index(left.raw())
                        .expect("locked parent must reference its child");

                    // Conceptual arrays with the new separator inserted.
                    let mut keys = [0u64; WIDTH + 1];
                    let mut children = [core::ptr::null_mut(); WIDTH + 2];
                    for i in 0..ci {
                        keys[i] = p.keyslice[i].load(Ordering::Relaxed);
                    }
                    keys[ci] = split_key;
                    for i in ci..WIDTH {
                        keys[i + 1] = p.keyslice[i].load(Ordering::Relaxed);
                    }
                    for i in 0..=ci {
                        children[i] = p.child[i].load(Ordering::Relaxed);
                    }
                    children[ci + 1] = right.raw();
                    for i in ci + 1..=WIDTH {
                        children[i + 1] = p.child[i].load(Ordering::Relaxed);
                    }

                    // 16 separators total: left keeps 8, index 8 moves up,
                    // right takes 7 (9 and 8 children respectively).
                    const LEFT_KEYS: usize = WIDTH.div_ceil(2);
                    let up_key = keys[LEFT_KEYS];
                    let p2 = InteriorNode::<V>::alloc_for_split(p.version());
                    // SAFETY: fresh private node.
                    let p2r = unsafe { &*p2 };
                    for i in 0..LEFT_KEYS {
                        p.keyslice[i].store(keys[i], Ordering::Relaxed);
                    }
                    for (i, &c) in children.iter().enumerate().take(LEFT_KEYS + 1) {
                        p.child[i].store(c, Ordering::Relaxed);
                        // SAFETY: we hold `p`'s lock (children's parent
                        // pointers are protected by it).
                        unsafe {
                            NodePtr::<V>::from_raw(c)
                                .set_parent(p as *const _ as *mut InteriorNode<V>)
                        };
                    }
                    let right_keys = WIDTH - LEFT_KEYS; // 7
                    for i in 0..right_keys {
                        p2r.keyslice[i].store(keys[LEFT_KEYS + 1 + i], Ordering::Relaxed);
                    }
                    for i in 0..=right_keys {
                        let c = children[LEFT_KEYS + 1 + i];
                        p2r.child[i].store(c, Ordering::Relaxed);
                        // SAFETY: these children move under `p`'s lock; the
                        // paper allows reassigning their parent pointers
                        // without child locks (§4.5).
                        unsafe { NodePtr::<V>::from_raw(c).set_parent(p2) };
                    }
                    p2r.nkeys.store(right_keys as u8, Ordering::Relaxed);
                    p.nkeys.store(LEFT_KEYS as u8, Ordering::Release);
                    // SAFETY: we hold `right`'s lock (Figure 5 unlocks n'
                    // after the parent split's key distribution).
                    unsafe { right.version().unlock() };
                    left = NodePtr::from_interior(p as *const _ as *mut InteriorNode<V>);
                    right = NodePtr::from_interior(p2);
                    split_key = up_key;
                }
            }
        }
    }
}
