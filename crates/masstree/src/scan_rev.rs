//! Backward range queries.
//!
//! §4.3 of the paper: "Insert and remove maintain a per-tree doubly
//! linked list among border nodes. This list speeds up range queries in
//! either direction" — the backlinks exist for concurrent remove, and
//! they also serve descending scans. The protocol mirrors the forward
//! scanner (`scan.rs`): validated per-node snapshots, layers visited
//! depth-first (in reverse), and a re-descent from the current bound on
//! any split or deletion. Because `prev` pointers are maintained under
//! weaker invariants than `next` (a node's prev may lag during splits),
//! the backward walk revalidates by *key range* and falls back to a
//! fresh descent instead of trusting the link.

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::key::{slice_at, KEYLEN_LAYER, KEYLEN_SUFFIX, SLICE_LEN};
use crate::node::{BorderNode, ExtractedLv, NodePtr};
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};

/// One decoded entry (mirrors the forward scanner's).
struct Entry {
    ikey: u64,
    code: u8,
    lv: *mut (),
    suffix: *mut KeySuffix,
}

enum ScanStatus {
    Done,
    Stopped,
    RestartAt(Vec<u8>),
}

/// An inclusive upper bound for a layer's remainder, or "everything".
#[derive(Clone)]
enum Bound {
    /// Only keys ≤ this remainder.
    AtMost(Vec<u8>),
    /// The whole layer.
    Everything,
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Visits keys at or *below* `start` in descending lexicographic
    /// order, calling `f(key, value)` until it returns `false` or the
    /// tree is exhausted. Returns the number of entries visited.
    ///
    /// Like [`Masstree::scan`], not atomic with respect to concurrent
    /// writers; order and uniqueness are guaranteed.
    pub fn scan_rev<'g, F>(&self, start: &[u8], guard: &'g Guard, mut f: F) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        let mut count = 0usize;
        let mut bound = Bound::AtMost(start.to_vec());
        loop {
            let root = self.load_root();
            let mut prefix = Vec::new();
            match self.scan_rev_layer(root, &mut prefix, bound.clone(), guard, &mut |k, v| {
                count += 1;
                f(k, v)
            }) {
                ScanStatus::Done | ScanStatus::Stopped => return count,
                ScanStatus::RestartAt(key) => {
                    Stats::bump(&self.stats.op_restarts);
                    bound = Bound::AtMost(key);
                }
            }
        }
    }

    /// Collects up to `limit` `(key, value)` pairs at or below `start`,
    /// in descending key order (a backward `getrange`).
    pub fn get_range_rev<'g>(
        &self,
        start: &[u8],
        limit: usize,
        guard: &'g Guard,
    ) -> Vec<(Vec<u8>, &'g V)> {
        let mut out = Vec::with_capacity(limit.min(1024));
        if limit == 0 {
            return out;
        }
        self.scan_rev(start, guard, |k, v| {
            out.push((k.to_vec(), v));
            out.len() < limit
        });
        out
    }

    /// Scans one layer in descending order. `bound` is the inclusive
    /// upper bound for key remainders within this layer.
    fn scan_rev_layer<'g>(
        &self,
        root: NodePtr<V>,
        prefix: &mut Vec<u8>,
        mut bound: Bound,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
    ) -> ScanStatus {
        'redescend: loop {
            let bikey = match &bound {
                Bound::AtMost(b) => slice_at(b, 0),
                Bound::Everything => u64::MAX,
            };
            let mut root_var = root;
            let (mut n, _v) = match self.find_border(&mut root_var, bikey, guard) {
                Ok(x) => x,
                Err(Restart) => {
                    let mut key = prefix.clone();
                    if let Bound::AtMost(b) = &bound {
                        key.extend_from_slice(b);
                    } else {
                        // Restarting an unbounded layer: resume from the
                        // maximal remainder (prefix + 8 × 0xff covers any
                        // slice; deeper bytes are bounded by re-descent).
                        key.extend_from_slice(&[0xff; SLICE_LEN]);
                    }
                    return ScanStatus::RestartAt(key);
                }
            };
            loop {
                let (entries, prev, lowkey) = match Self::snapshot_border_rev(n) {
                    Ok(x) => x,
                    Err(()) => continue 'redescend,
                };
                // Process this node's entries from highest to lowest.
                for e in entries.iter().rev() {
                    // Upper-bound filter.
                    let (bikey, brank, bsuffix): (u64, u8, Option<&[u8]>) = match &bound {
                        Bound::Everything => (u64::MAX, KEYLEN_SUFFIX, None),
                        Bound::AtMost(b) => (
                            slice_at(b, 0),
                            if b.len() > SLICE_LEN {
                                KEYLEN_SUFFIX
                            } else {
                                b.len() as u8
                            },
                            if b.len() > SLICE_LEN {
                                Some(&b[SLICE_LEN..])
                            } else {
                                None
                            },
                        ),
                    };
                    if e.ikey > bikey {
                        continue;
                    }
                    let erank = crate::key::keylen_rank(e.code);
                    if e.ikey == bikey && erank > brank {
                        continue;
                    }
                    let at_boundary = e.ikey == bikey && erank == brank;
                    let slice_bytes = e.ikey.to_be_bytes();
                    match e.code {
                        KEYLEN_LAYER => {
                            let sub_bound = if at_boundary && brank == KEYLEN_SUFFIX {
                                match bsuffix {
                                    Some(s) => Bound::AtMost(s.to_vec()),
                                    None => Bound::Everything,
                                }
                            } else {
                                Bound::Everything
                            };
                            prefix.extend_from_slice(&slice_bytes);
                            let st = self.scan_rev_layer(
                                NodePtr::from_raw(e.lv.cast()),
                                prefix,
                                sub_bound,
                                guard,
                                f,
                            );
                            prefix.truncate(prefix.len() - SLICE_LEN);
                            match st {
                                ScanStatus::Done => {}
                                other => return other,
                            }
                            // Resume strictly below the whole sub-layer:
                            // the next candidate is the inline key of the
                            // same slice with rank 8, bounded inclusively.
                            bound = Bound::AtMost(slice_bytes.to_vec());
                            // (rank 8 == full slice, which sorts just
                            // below the layer's rank-9 position.)
                        }
                        KEYLEN_SUFFIX => {
                            debug_assert!(!e.suffix.is_null());
                            // SAFETY: captured under a validated snapshot;
                            // epoch keeps the block live for the guard.
                            let sb = unsafe { KeySuffix::bytes(e.suffix) };
                            if at_boundary && brank == KEYLEN_SUFFIX {
                                match bsuffix {
                                    Some(bs) if sb > bs => continue,
                                    _ => {}
                                }
                            }
                            let plen = prefix.len();
                            prefix.extend_from_slice(&slice_bytes);
                            prefix.extend_from_slice(sb);
                            // SAFETY: validated value pointer, epoch-live.
                            let keep = f(prefix, unsafe { &*e.lv.cast::<V>() });
                            prefix.truncate(plen);
                            if !keep {
                                return ScanStatus::Stopped;
                            }
                            match prev_bound(e.ikey, e.code, Some(sb)) {
                                Some(b) => bound = b,
                                None => return ScanStatus::Done,
                            }
                        }
                        len => {
                            let len = len as usize;
                            let plen = prefix.len();
                            prefix.extend_from_slice(&slice_bytes[..len]);
                            // SAFETY: validated value pointer, epoch-live.
                            let keep = f(prefix, unsafe { &*e.lv.cast::<V>() });
                            prefix.truncate(plen);
                            if !keep {
                                return ScanStatus::Stopped;
                            }
                            match prev_bound(e.ikey, e.code, None) {
                                Some(b) => bound = b,
                                None => return ScanStatus::Done,
                            }
                        }
                    }
                }
                // Move left. The prev pointer may lag behind splits, so
                // re-descend by bound instead when it looks inconsistent.
                if prev.is_null() {
                    return ScanStatus::Done;
                }
                // Resume below this node's range: its lowkey is a valid
                // exclusive bound (constant for the node's lifetime).
                match lowkey.checked_sub(1) {
                    None => return ScanStatus::Done,
                    Some(pk) => {
                        // Bound: every remainder whose slice ≤ lowkey-1
                        // (inclusive at the suffix level).
                        let mut b = pk.to_be_bytes().to_vec();
                        b.extend_from_slice(&[0xff; 8]); // rank-9 ceiling
                        bound = Bound::AtMost(b);
                    }
                }
                // SAFETY: leaf-list pointers stay live under the epoch.
                let pn = unsafe { &*prev };
                // Validate the link: the previous node must actually cover
                // keys below ours; otherwise re-descend.
                if pn.lowkey.load(Ordering::Relaxed) > lowkey {
                    continue 'redescend;
                }
                n = pn;
            }
        }
    }

    /// Snapshot including the node's `prev` pointer and lowkey.
    #[allow(clippy::type_complexity)]
    fn snapshot_border_rev(n: &BorderNode<V>) -> Result<(Vec<Entry>, *mut BorderNode<V>, u64), ()> {
        loop {
            let v = n.version().stable();
            if v.is_deleted() {
                return Err(());
            }
            let perm = n.permutation();
            let mut entries = Vec::with_capacity(perm.nkeys());
            let mut unstable = false;
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let ikey = n.keyslice[slot].load(Ordering::Acquire);
                let (code, ex) = n.extract_lv(slot);
                match ex {
                    ExtractedLv::Unstable => {
                        unstable = true;
                        break;
                    }
                    ExtractedLv::Layer(p) => entries.push(Entry {
                        ikey,
                        code: KEYLEN_LAYER,
                        lv: p.cast::<()>(),
                        suffix: core::ptr::null_mut(),
                    }),
                    ExtractedLv::Value(p) => {
                        let suffix = if code == KEYLEN_SUFFIX {
                            n.suffix[slot].load(Ordering::Acquire)
                        } else {
                            core::ptr::null_mut()
                        };
                        entries.push(Entry {
                            ikey,
                            code,
                            lv: p,
                            suffix,
                        });
                    }
                }
            }
            let prev = n.prev.load(Ordering::Acquire);
            let lowkey = n.lowkey.load(Ordering::Relaxed);
            let v2 = n.version().load(Ordering::Acquire);
            if !unstable && !v.has_changed(v2) {
                return Ok((entries, prev, lowkey));
            }
            if v.has_split(n.version().stable()) {
                return Err(());
            }
            core::hint::spin_loop();
        }
    }
}

/// The largest remainder strictly below entry `(ikey, code)`:
/// * below an inline key of length `l > 0`: the same bytes with the last
///   one decremented, padded to the rank-9 ceiling; or the next-shorter
///   prefix when the last byte is 0x00;
/// * below the empty remainder (`l == 0`): nothing — the layer (from this
///   slice leftward) is exhausted below `ikey`;
/// * below a suffixed key: the same slice with a smaller suffix — we
///   conservatively resume at the slice's inline rank-8 position.
fn prev_bound(ikey: u64, code: u8, suffix: Option<&[u8]>) -> Option<Bound> {
    if code == KEYLEN_SUFFIX {
        let sb = suffix.unwrap_or(&[]);
        if sb.is_empty() {
            // Below "slice + empty suffix" comes the inline rank-8 key.
            return Some(Bound::AtMost(ikey.to_be_bytes().to_vec()));
        }
        // Below "slice + sb" come suffixes strictly smaller than sb:
        // bound = slice + (sb minus one step).
        let mut b = ikey.to_be_bytes().to_vec();
        let mut s = sb.to_vec();
        if s.last() == Some(&0) {
            s.pop();
        } else {
            let last = s.last_mut().unwrap();
            *last -= 1;
            s.extend_from_slice(&[0xff; 16]);
        }
        b.extend_from_slice(&s);
        return Some(Bound::AtMost(b));
    }
    let len = code as usize;
    let bytes = ikey.to_be_bytes();
    if len == 0 {
        // Below the empty remainder: previous slice entirely.
        return match ikey.checked_sub(1) {
            None => None,
            Some(pk) => {
                let mut b = pk.to_be_bytes().to_vec();
                b.extend_from_slice(&[0xff; 8]);
                Some(Bound::AtMost(b))
            }
        };
    }
    let mut k = bytes[..len].to_vec();
    if k.last() == Some(&0) {
        k.pop(); // e.g. below "ab\0" comes "ab"
    } else {
        let last = k.last_mut().unwrap();
        *last -= 1;
        k.extend_from_slice(&[0xff; 16]); // ceiling under the new prefix
    }
    Some(Bound::AtMost(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_bound_inline() {
        // Below "b" (1 byte) comes "a…\xff".
        match prev_bound(slice_at(b"b", 0), 1, None) {
            Some(Bound::AtMost(b)) => {
                assert!(b.starts_with(b"a"));
                assert!(b.len() > 8);
            }
            _ => panic!(),
        }
        // Below "a\0" comes "a".
        match prev_bound(slice_at(b"a\0", 0), 2, None) {
            Some(Bound::AtMost(b)) => assert_eq!(b, b"a"),
            _ => panic!(),
        }
        // Below the empty key: nothing.
        assert!(prev_bound(0, 0, None).is_none());
    }
}
