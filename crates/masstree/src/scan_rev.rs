//! Backward range queries.
//!
//! §4.3 of the paper: "Insert and remove maintain a per-tree doubly
//! linked list among border nodes. This list speeds up range queries in
//! either direction" — the backlinks exist for concurrent remove, and
//! they also serve descending scans. The protocol mirrors the forward
//! scanner (`scan.rs`): validated per-node snapshots, layers visited
//! depth-first (in reverse), and a re-descent from the current bound on
//! any split or deletion. Because `prev` pointers are maintained under
//! weaker invariants than `next` (a node's prev may lag during splits),
//! the backward walk revalidates by *key range* and falls back to a
//! fresh descent instead of trusting the link.
//!
//! Reverse scans are resumable through the same [`crate::scan::ScanCursor`]
//! machinery as forward ones: a stopped scan records its border node as
//! a validated anchor plus the descending full-key bound, and
//! [`Masstree::scan_resume`](crate::tree::Masstree::scan_resume)
//! re-enters there.
//!
//! Like the forward scanner, the hot path is allocation-free in steady
//! state: snapshots land in a stack array, and the prefix/bound/restart
//! buffers live in a reusable [`ScanScratch`]. The upper bound is the
//! scratch `bound` buffer plus an `everything` flag standing in for "no
//! upper limit" (the old `Bound::Everything`).

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::anchor::DescentAnchor;
use crate::key::{slice_at, KEYLEN_LAYER, KEYLEN_SUFFIX, SLICE_LEN};
use crate::node::{BorderNode, ExtractedLv, NodePtr};
use crate::permutation::WIDTH;
use crate::scan::{with_scratch, Entry, Redescend, ScanScratch, ScanStatus, StopPoint};
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};
use crate::version::Version;

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Visits keys at or *below* `start` in descending lexicographic
    /// order, calling `f(key, value)` until it returns `false` or the
    /// tree is exhausted. Returns the number of entries visited.
    ///
    /// Like [`Masstree::scan`], not atomic with respect to concurrent
    /// writers; order and uniqueness are guaranteed. Uses the
    /// thread-local [`ScanScratch`]; see [`Masstree::scan_rev_with`].
    pub fn scan_rev<'g, F>(&self, start: &[u8], guard: &'g Guard, mut f: F) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        with_scratch(|scratch| self.scan_rev_with(start, scratch, guard, |k, v| f(k, v)))
    }

    /// [`Masstree::scan_rev`] with an explicit [`ScanScratch`]. With a
    /// warm scratch the scan performs no heap allocation.
    pub fn scan_rev_with<'g, F>(
        &self,
        start: &[u8],
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        mut f: F,
    ) -> usize
    where
        F: FnMut(&[u8], &'g V) -> bool,
    {
        let mut count = 0usize;
        let mut stop = None;
        scratch.bound.clear();
        scratch.bound.extend_from_slice(start);
        loop {
            let root = self.load_root();
            scratch.prefix.clear();
            match self.scan_rev_layer(
                root,
                false,
                scratch,
                guard,
                &mut |k, v| {
                    count += 1;
                    f(k, v)
                },
                &mut stop,
            ) {
                ScanStatus::Done | ScanStatus::Stopped => return count,
                ScanStatus::Restart => {
                    Stats::bump(&self.stats.op_restarts);
                    core::mem::swap(&mut scratch.bound, &mut scratch.restart);
                }
            }
        }
    }

    /// Collects up to `limit` `(key, value)` pairs at or below `start`,
    /// in descending key order (a backward `getrange`).
    pub fn get_range_rev<'g>(
        &self,
        start: &[u8],
        limit: usize,
        guard: &'g Guard,
    ) -> Vec<(Vec<u8>, &'g V)> {
        let mut out = Vec::with_capacity(limit.min(1024));
        if limit == 0 {
            return out;
        }
        self.scan_rev(start, guard, |k, v| {
            out.push((k.to_vec(), v));
            out.len() < limit
        });
        out
    }

    /// Scans one layer in descending order. `scratch.bound` is the
    /// inclusive upper bound for key remainders within this layer,
    /// unless `everything` says the layer is unbounded above.
    pub(crate) fn scan_rev_layer<'g>(
        &self,
        root: NodePtr<V>,
        mut everything: bool,
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
        stop: &mut Option<StopPoint<V>>,
    ) -> ScanStatus {
        'redescend: loop {
            let bikey = if everything {
                u64::MAX
            } else {
                slice_at(&scratch.bound, 0)
            };
            let mut root_var = root;
            let (n, _v) = match self.find_border(&mut root_var, bikey, guard) {
                Ok(x) => x,
                Err(Restart) => {
                    scratch.restart.clear();
                    scratch.restart.extend_from_slice(&scratch.prefix);
                    if everything {
                        // Restarting an unbounded layer: resume from the
                        // maximal remainder (prefix + 8 × 0xff covers any
                        // slice; deeper bytes are bounded by re-descent).
                        scratch.restart.extend_from_slice(&[0xff; SLICE_LEN]);
                    } else {
                        scratch.restart.extend_from_slice(&scratch.bound);
                    }
                    return ScanStatus::Restart;
                }
            };
            match self.scan_rev_layer_nodes(n, &mut everything, scratch, guard, f, stop) {
                Ok(status) => return status,
                Err(Redescend) => continue 'redescend,
            }
        }
    }

    /// The in-layer descending node walk of [`Masstree::scan_rev_layer`],
    /// starting at border node `n` (reached by a descent **or** through
    /// a validated scan anchor). `Err(Redescend)` reports a split,
    /// deletion or lagging prev-link the caller must re-descend (or
    /// fall back) from.
    pub(crate) fn scan_rev_layer_nodes<'g>(
        &self,
        mut n: &'g BorderNode<V>,
        everything: &mut bool,
        scratch: &mut ScanScratch,
        guard: &'g Guard,
        f: &mut dyn FnMut(&[u8], &'g V) -> bool,
        stop: &mut Option<StopPoint<V>>,
    ) -> Result<ScanStatus, Redescend> {
        let mut entries = [Entry::EMPTY; WIDTH];
        loop {
            let (filled, prev, lowkey, v) = match Self::snapshot_border_rev(n, &mut entries) {
                Ok(x) => x,
                Err(()) => return Err(Redescend),
            };
            // Process this node's entries from highest to lowest.
            for e in entries[..filled].iter().rev() {
                // Upper-bound filter.
                let (bikey, brank) = if *everything {
                    (u64::MAX, KEYLEN_SUFFIX)
                } else {
                    (
                        slice_at(&scratch.bound, 0),
                        if scratch.bound.len() > SLICE_LEN {
                            KEYLEN_SUFFIX
                        } else {
                            scratch.bound.len() as u8
                        },
                    )
                };
                if e.ikey > bikey {
                    continue;
                }
                let erank = crate::key::keylen_rank(e.code);
                if e.ikey == bikey && erank > brank {
                    continue;
                }
                let at_boundary = e.ikey == bikey && erank == brank;
                let bounded_suffix = at_boundary && brank == KEYLEN_SUFFIX && !*everything;
                let slice_bytes = e.ikey.to_be_bytes();
                match e.code {
                    KEYLEN_LAYER => {
                        // Sub-layer bound: the bound's remainder past
                        // this slice, else the whole sub-layer.
                        let sub_everything = if bounded_suffix {
                            scratch.bound.drain(..SLICE_LEN);
                            false
                        } else {
                            true
                        };
                        scratch.prefix.extend_from_slice(&slice_bytes);
                        let st = self.scan_rev_layer(
                            NodePtr::from_raw(e.lv.cast()),
                            sub_everything,
                            scratch,
                            guard,
                            f,
                            stop,
                        );
                        let plen = scratch.prefix.len() - SLICE_LEN;
                        scratch.prefix.truncate(plen);
                        match st {
                            ScanStatus::Done => {}
                            other => return Ok(other),
                        }
                        // Resume strictly below the whole sub-layer:
                        // the next candidate is the inline key of the
                        // same slice with rank 8, bounded inclusively.
                        scratch.bound.clear();
                        scratch.bound.extend_from_slice(&slice_bytes);
                        *everything = false;
                        // (rank 8 == full slice, which sorts just
                        // below the layer's rank-9 position.)
                    }
                    KEYLEN_SUFFIX => {
                        debug_assert!(!e.suffix.is_null());
                        // SAFETY: captured under a validated snapshot;
                        // epoch keeps the block live for the guard.
                        let sb = unsafe { KeySuffix::bytes(e.suffix) };
                        if bounded_suffix && sb > &scratch.bound[SLICE_LEN..] {
                            continue;
                        }
                        let plen = scratch.prefix.len();
                        scratch.prefix.extend_from_slice(&slice_bytes);
                        scratch.prefix.extend_from_slice(sb);
                        // SAFETY: validated value pointer, epoch-live.
                        let keep = f(&scratch.prefix, unsafe { &*e.lv.cast::<V>() });
                        scratch.prefix.truncate(plen);
                        // Advance the bound below the emitted key before
                        // honoring a stop, so the stop point is always
                        // "strictly below the last emitted entry".
                        let more = prev_bound_into(e.ikey, e.code, Some(sb), &mut scratch.bound);
                        *everything = false;
                        if !keep {
                            return Ok(self.stopped_rev_at(n, v, more, scratch, stop));
                        }
                        if !more {
                            return Ok(ScanStatus::Done);
                        }
                    }
                    len => {
                        let len = len as usize;
                        let plen = scratch.prefix.len();
                        scratch.prefix.extend_from_slice(&slice_bytes[..len]);
                        // SAFETY: validated value pointer, epoch-live.
                        let keep = f(&scratch.prefix, unsafe { &*e.lv.cast::<V>() });
                        scratch.prefix.truncate(plen);
                        let more = prev_bound_into(e.ikey, e.code, None, &mut scratch.bound);
                        *everything = false;
                        if !keep {
                            return Ok(self.stopped_rev_at(n, v, more, scratch, stop));
                        }
                        if !more {
                            return Ok(ScanStatus::Done);
                        }
                    }
                }
            }
            // Move left. The prev pointer may lag behind splits, so
            // re-descend by bound instead when it looks inconsistent.
            if prev.is_null() {
                return Ok(ScanStatus::Done);
            }
            // Resume below this node's range: its lowkey is a valid
            // exclusive bound (constant for the node's lifetime).
            match lowkey.checked_sub(1) {
                None => return Ok(ScanStatus::Done),
                Some(pk) => {
                    // Bound: every remainder whose slice ≤ lowkey-1
                    // (inclusive at the suffix level).
                    scratch.bound.clear();
                    scratch.bound.extend_from_slice(&pk.to_be_bytes());
                    scratch.bound.extend_from_slice(&[0xff; 8]); // rank-9 ceiling
                    *everything = false;
                }
            }
            // SAFETY: leaf-list pointers stay live under the epoch.
            let pn = unsafe { &*prev };
            // Validate the link: the previous node must actually cover
            // keys below ours; otherwise re-descend.
            if pn.lowkey.load(Ordering::Relaxed) > lowkey {
                return Err(Redescend);
            }
            n = pn;
        }
    }

    /// Records a reverse scan's stop point. `more` says whether
    /// `scratch.bound` holds a valid continuation within this layer; if
    /// not, the continuation is everything at or below the enclosing
    /// prefix (which is itself a key candidate — it lives in the parent
    /// layer), or nothing at all when the stop exhausted layer 0.
    fn stopped_rev_at(
        &self,
        n: &BorderNode<V>,
        v: Version,
        more: bool,
        scratch: &mut ScanScratch,
        stop: &mut Option<StopPoint<V>>,
    ) -> ScanStatus {
        if more {
            scratch.restart.clear();
            scratch.restart.extend_from_slice(&scratch.prefix);
            scratch.restart.extend_from_slice(&scratch.bound);
            *stop = Some(StopPoint::At {
                anchor: Some(DescentAnchor::capture(n, v, scratch.prefix.len())),
            });
        } else if scratch.prefix.is_empty() {
            scratch.restart.clear();
            *stop = Some(StopPoint::Exhausted);
        } else {
            scratch.restart.clear();
            scratch.restart.extend_from_slice(&scratch.prefix);
            *stop = Some(StopPoint::At { anchor: None });
        }
        ScanStatus::Stopped
    }

    /// Snapshot (into the caller's fixed buffer) including the node's
    /// `prev` pointer, lowkey, and the validating version.
    #[allow(clippy::type_complexity)]
    fn snapshot_border_rev(
        n: &BorderNode<V>,
        entries: &mut [Entry; WIDTH],
    ) -> Result<(usize, *mut BorderNode<V>, u64, Version), ()> {
        loop {
            let v = n.version().stable();
            if v.is_deleted() {
                return Err(());
            }
            let perm = n.permutation();
            let mut filled = 0usize;
            let mut unstable = false;
            for pos in 0..perm.nkeys() {
                let slot = perm.get(pos);
                let ikey = n.keyslice[slot].load(Ordering::Acquire);
                let (code, ex) = n.extract_lv(slot);
                match ex {
                    ExtractedLv::Unstable => {
                        unstable = true;
                        break;
                    }
                    ExtractedLv::Layer(p) => {
                        entries[filled] = Entry {
                            ikey,
                            code: KEYLEN_LAYER,
                            lv: p.cast::<()>(),
                            suffix: core::ptr::null_mut(),
                        };
                        filled += 1;
                    }
                    ExtractedLv::Value(p) => {
                        let suffix = if code == KEYLEN_SUFFIX {
                            n.suffix[slot].load(Ordering::Acquire)
                        } else {
                            core::ptr::null_mut()
                        };
                        entries[filled] = Entry {
                            ikey,
                            code,
                            lv: p,
                            suffix,
                        };
                        filled += 1;
                    }
                }
            }
            let prev = n.prev.load(Ordering::Acquire);
            let lowkey = n.lowkey.load(Ordering::Relaxed);
            let v2 = n.version().load(Ordering::Acquire);
            if !unstable && !v.has_changed(v2) {
                return Ok((filled, prev, lowkey, v));
            }
            if v.has_split(n.version().stable()) {
                return Err(());
            }
            core::hint::spin_loop();
        }
    }
}

/// Writes the largest remainder strictly below entry `(ikey, code)` into
/// `out`, returning `false` when the layer is exhausted below the entry:
/// * below an inline key of length `l > 0`: the same bytes with the last
///   one decremented, padded to the rank-9 ceiling; or the next-shorter
///   prefix when the last byte is 0x00;
/// * below the empty remainder (`l == 0`): nothing — the layer (from this
///   slice leftward) is exhausted below `ikey`;
/// * below a suffixed key: the same slice with a smaller suffix — we
///   conservatively resume at the slice's inline rank-8 position.
fn prev_bound_into(ikey: u64, code: u8, suffix: Option<&[u8]>, out: &mut Vec<u8>) -> bool {
    if code == KEYLEN_SUFFIX {
        let sb = suffix.unwrap_or(&[]);
        out.clear();
        out.extend_from_slice(&ikey.to_be_bytes());
        if sb.is_empty() {
            // Below "slice + empty suffix" comes the inline rank-8 key.
            return true;
        }
        // Below "slice + sb" come suffixes strictly smaller than sb:
        // bound = slice + (sb minus one step).
        if sb.last() == Some(&0) {
            out.extend_from_slice(&sb[..sb.len() - 1]);
        } else {
            out.extend_from_slice(sb);
            *out.last_mut().expect("suffix is non-empty") -= 1;
            out.extend_from_slice(&[0xff; 16]);
        }
        return true;
    }
    let len = code as usize;
    let bytes = ikey.to_be_bytes();
    if len == 0 {
        // Below the empty remainder: previous slice entirely.
        return match ikey.checked_sub(1) {
            None => false,
            Some(pk) => {
                out.clear();
                out.extend_from_slice(&pk.to_be_bytes());
                out.extend_from_slice(&[0xff; 8]);
                true
            }
        };
    }
    out.clear();
    out.extend_from_slice(&bytes[..len]);
    if out.last() == Some(&0) {
        out.pop(); // e.g. below "ab\0" comes "ab"
    } else {
        *out.last_mut().expect("non-empty inline key") -= 1;
        out.extend_from_slice(&[0xff; 16]); // ceiling under the new prefix
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_bound_inline() {
        let mut b = Vec::new();
        // Below "b" (1 byte) comes "a…\xff".
        assert!(prev_bound_into(slice_at(b"b", 0), 1, None, &mut b));
        assert!(b.starts_with(b"a"));
        assert!(b.len() > 8);
        // Below "a\0" comes "a".
        assert!(prev_bound_into(slice_at(b"a\0", 0), 2, None, &mut b));
        assert_eq!(b, b"a");
        // Below the empty key: nothing.
        assert!(!prev_bound_into(0, 0, None, &mut b));
    }
}
