//! The remove path, including concurrent node deletion (§4.6.5).
//!
//! Removing a key only changes the permutation — slot contents stay in
//! place so concurrent readers see consistent (old) state, and the slot is
//! flagged so its reuse bumps vinsert. A border node that becomes empty is
//! deleted: marked DELETED (readers retry from the root), unlinked from
//! the doubly-linked leaf list, then removed from its parent chain,
//! deleting interior nodes that empty out along the way. The leftmost
//! border node of each tree is never deleted (§4.6.4's invariant).

use core::sync::atomic::Ordering;

use crossbeam::epoch::Guard;

use crate::gc;
use crate::hint::LeafHint;
use crate::key::{keylen_rank, KeyCursor, KEYLEN_LAYER, KEYLEN_SUFFIX, KEYLEN_UNSTABLE, SLICE_LEN};
use crate::node::{BorderNode, BorderSearch, NodePtr};
use crate::put::AnchorStale;
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::tree::{Masstree, Restart};

/// Outcome of completing a remove at one locked border node (the lock
/// is consumed either way).
enum BorderRemove<'g, V, R> {
    /// The remove completed (or the key was absent).
    Done(Option<(&'g V, R)>),
    /// The key continues in a deeper trie layer rooted here.
    Layer(NodePtr<V>),
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Removes `key`, returning its value if it was present (valid for the
    /// guard's lifetime; the allocation is reclaimed after all current
    /// readers unpin).
    pub fn remove<'g>(&self, key: &[u8], guard: &'g Guard) -> Option<&'g V> {
        self.remove_with(key, |_| (), guard).map(|(v, ())| v)
    }

    /// Removes `key`, running `f(value)` **under the owning border node's
    /// lock** at the removal's linearization point. Storage layers use
    /// this to draw log version numbers that agree with the tree's
    /// serialization order (§5). Keep `f` short; it executes inside a
    /// spinlock critical section.
    pub fn remove_with<'g, R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&V) -> R,
        guard: &'g Guard,
    ) -> Option<(&'g V, R)> {
        let mut f = Some(f);
        self.remove_inner(key, &mut |v| (f.take().expect("called once"))(v), guard)
    }

    fn remove_inner<'g, R>(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(&V) -> R,
        guard: &'g Guard,
    ) -> Option<(&'g V, R)> {
        loop {
            let mut k = KeyCursor::new(key);
            match self.remove_descend(&mut k, self.load_root(), f, guard) {
                Ok(removed) => return removed,
                Err(Restart) => continue,
            }
        }
    }

    /// Hinted remove: removes `key` starting at the hint's **validated
    /// anchor** instead of a root-to-leaf descent, entering through
    /// [`crate::anchor::DescentAnchor::lock_for_write`] and completing
    /// with the same locked border logic as [`Masstree::remove_with`]
    /// (`f` runs under the lock at the linearization point). Errors with
    /// [`AnchorStale`] — without consuming `f` — when the anchor fails
    /// validation; the caller falls back to a full remove.
    #[allow(clippy::type_complexity)]
    pub fn remove_at_hint<'g, R>(
        &self,
        key: &[u8],
        hint: &LeafHint<V>,
        f: impl FnOnce(&V) -> R,
        guard: &'g Guard,
    ) -> Result<Option<(&'g V, R)>, AnchorStale> {
        let anchor = hint.anchor();
        let offset = anchor.offset();
        debug_assert!(offset.is_multiple_of(SLICE_LEN));
        let mut k = KeyCursor::with_offset(key, offset);
        let Some(bn) = anchor.lock_for_write(guard) else {
            return Err(AnchorStale);
        };
        let bn = match self.walk_right_locked(bn, k.ikey()) {
            Ok(bn) => bn,
            Err(Restart) => return Err(AnchorStale),
        };
        let mut f = Some(f);
        let f: &mut dyn FnMut(&V) -> R = &mut |v| (f.take().expect("called once"))(v);
        match self.remove_at_border(bn, &k, f, guard) {
            BorderRemove::Done(removed) => Ok(removed),
            BorderRemove::Layer(root) => {
                k.advance();
                match self.remove_descend(&mut k, root, f, guard) {
                    Ok(removed) => Ok(removed),
                    Err(Restart) => Err(AnchorStale),
                }
            }
        }
    }

    /// The descending half of a remove: find and lock the responsible
    /// border node of each layer, run the shared locked completion,
    /// follow layer links down. `Err(Restart)` propagates **before**
    /// `f` has run.
    #[allow(clippy::type_complexity)]
    fn remove_descend<'g, R>(
        &self,
        k: &mut KeyCursor<'_>,
        mut root: NodePtr<V>,
        f: &mut dyn FnMut(&V) -> R,
        guard: &'g Guard,
    ) -> Result<Option<(&'g V, R)>, Restart> {
        loop {
            let ikey = k.ikey();
            let start = match self.find_border(&mut root, ikey, guard) {
                Ok((n, _)) => n,
                Err(Restart) => {
                    Stats::bump(&self.stats.op_restarts);
                    return Err(Restart);
                }
            };
            let bn = self.lock_border_for_ikey(start, ikey)?;
            match self.remove_at_border(bn, k, f, guard) {
                BorderRemove::Done(removed) => return Ok(removed),
                BorderRemove::Layer(link) => {
                    root = link;
                    k.advance();
                }
            }
        }
    }

    /// The locked border-level completion of a remove — shared by
    /// descending removes and anchored removes. `bn` must be locked and
    /// cover the cursor's current `ikey`; the lock is consumed.
    fn remove_at_border<'g, R>(
        &self,
        bn: &'g BorderNode<V>,
        k: &KeyCursor<'_>,
        f: &mut dyn FnMut(&V) -> R,
        guard: &'g Guard,
    ) -> BorderRemove<'g, V, R> {
        let ikey = k.ikey();
        let perm = bn.permutation();
        let rank = keylen_rank(k.keylen_code());
        match bn.search(perm, ikey, rank) {
            BorderSearch::Missing { .. } => {
                bn.version().unlock();
                BorderRemove::Done(None)
            }
            BorderSearch::Found { pos, slot } => {
                let code = bn.keylen[slot].load(Ordering::Acquire);
                match code {
                    KEYLEN_LAYER => {
                        let nl = bn.lv[slot].load(Ordering::Acquire);
                        bn.version().unlock();
                        BorderRemove::Layer(NodePtr::from_raw(nl.cast()))
                    }
                    KEYLEN_UNSTABLE => unreachable!("UNSTABLE under the node lock"),
                    KEYLEN_SUFFIX => {
                        debug_assert!(k.has_suffix());
                        let sp = bn.suffix[slot].load(Ordering::Acquire);
                        // SAFETY: live suffix block; we hold the lock.
                        let sb = unsafe { KeySuffix::bytes(sp) };
                        if sb != k.suffix() {
                            bn.version().unlock();
                            return BorderRemove::Done(None);
                        }
                        // SAFETY: exact match established.
                        BorderRemove::Done(Some(unsafe {
                            self.remove_entry(bn, perm.remove_at(pos), f, guard)
                        }))
                    }
                    _ => {
                        debug_assert_eq!(code as usize, k.slice_len());
                        // SAFETY: exact match established.
                        BorderRemove::Done(Some(unsafe {
                            self.remove_entry(bn, perm.remove_at(pos), f, guard)
                        }))
                    }
                }
            }
        }
    }

    /// Unpublishes the entry at `pos`/`slot` of the locked node `bn`,
    /// retires its value and suffix, and deletes the node if it emptied.
    /// Consumes `bn`'s lock. Returns the removed value.
    ///
    /// # Safety
    ///
    /// Caller must hold `bn`'s lock and have verified the entry matches
    /// the key being removed.
    unsafe fn remove_entry<'g, R>(
        &self,
        bn: &'g BorderNode<V>,
        (nperm, slot): (crate::permutation::Permutation, usize),
        f: &mut dyn FnMut(&V) -> R,
        guard: &'g Guard,
    ) -> (&'g V, R) {
        let old_value = bn.lv[slot].load(Ordering::Acquire);
        let old_suffix = if bn.keylen[slot].load(Ordering::Acquire) == KEYLEN_SUFFIX {
            bn.suffix[slot].load(Ordering::Acquire)
        } else {
            core::ptr::null_mut()
        };
        // The removal's linearization point: run the caller's hook under
        // the lock, against the value being unpublished.
        // SAFETY: the slot's live value; we hold the lock.
        let hook_result = f(unsafe { &*old_value.cast::<V>() });
        bn.publish_permutation(nperm);
        bn.mark_freed(slot);
        // SAFETY: the entry is no longer visible to new readers; epoch
        // reclamation protects in-flight ones.
        unsafe {
            gc::retire_value::<V>(guard, old_value);
            gc::retire_suffix(guard, old_suffix);
        }
        if nperm.nkeys() == 0 && !bn.prev.load(Ordering::Acquire).is_null() {
            // SAFETY: `bn` is locked, empty and not the leftmost node.
            unsafe { self.delete_border(bn, guard) };
        } else {
            bn.version().unlock();
        }
        // SAFETY: the old value stays live for `'g` via the epoch.
        (unsafe { &*old_value.cast::<V>() }, hook_result)
    }

    /// Deletes the locked, empty, non-leftmost border node `bn`: marks it
    /// DELETED, unlinks it from the leaf list, then removes it from the
    /// parent chain (deleting interiors that empty out). Consumes the
    /// lock.
    ///
    /// Lock order: we block on `bn.prev` while holding `bn` — a leftward
    /// wait. All other waits in the system point upward or are
    /// unlock-then-lock rightward walks, so no cycle can form (DESIGN.md
    /// §4.3).
    ///
    /// # Safety
    ///
    /// Caller must hold `bn`'s lock; `bn` must be empty with a non-null
    /// prev pointer.
    pub(crate) unsafe fn delete_border<'g>(&self, bn: &'g BorderNode<V>, guard: &'g Guard) {
        Stats::bump(&self.stats.nodes_deleted);
        bn.version().mark_deleted();
        // Unlink from the leaf list.
        loop {
            let prevp = bn.prev.load(Ordering::Acquire);
            debug_assert!(!prevp.is_null(), "leftmost node is never deleted");
            // SAFETY: leaf-list neighbours are live under the pinned epoch.
            let pr = unsafe { &*prevp };
            pr.version().lock();
            let stale = pr.version().load(Ordering::Relaxed).is_deleted()
                || !std::ptr::eq(pr.next.load(Ordering::Acquire), bn);
            if stale {
                // `pr` was itself deleted or split; re-read our prev
                // pointer (its deleter/splitter updates it).
                pr.version().unlock();
                core::hint::spin_loop();
                continue;
            }
            let nx = bn.next.load(Ordering::Acquire);
            pr.next.store(nx, Ordering::Release);
            if !nx.is_null() {
                // SAFETY: live under epoch; `nx.prev` is protected by its
                // new previous sibling's lock (`pr`, held).
                unsafe { (*nx).prev.store(prevp, Ordering::Release) };
            }
            pr.version().unlock();
            break;
        }
        // Remove from the parent chain, ascending while interiors empty.
        let mut child = NodePtr::from_border(bn as *const _ as *mut BorderNode<V>);
        loop {
            let Some(p) = self.locked_parent(child, guard) else {
                // `child` was a layer root. Border roots are never deleted
                // (leftmost invariant) and interior roots never empty (the
                // leftmost path is undeletable), so this is unreachable in
                // a consistent tree; release the lock defensively.
                debug_assert!(false, "deleted a layer root");
                // SAFETY: we hold the lock.
                unsafe { child.version().unlock() };
                return;
            };
            let ci = p
                .child_index(child.raw())
                .expect("deleted child still referenced by its parent");
            let n = p.nkeys();
            if n > 0 {
                p.version().mark_inserting();
                // Drop child `ci` and the separator adjacent to it: the
                // neighbour's range absorbs the (empty) gap.
                if ci == 0 {
                    for j in 1..n {
                        let kv = p.keyslice[j].load(Ordering::Relaxed);
                        p.keyslice[j - 1].store(kv, Ordering::Relaxed);
                    }
                    for j in 1..=n {
                        let cv = p.child[j].load(Ordering::Relaxed);
                        p.child[j - 1].store(cv, Ordering::Relaxed);
                    }
                } else {
                    for j in ci..n {
                        let kv = p.keyslice[j].load(Ordering::Relaxed);
                        p.keyslice[j - 1].store(kv, Ordering::Relaxed);
                    }
                    for j in ci + 1..=n {
                        let cv = p.child[j].load(Ordering::Relaxed);
                        p.child[j - 1].store(cv, Ordering::Relaxed);
                    }
                }
                p.nkeys.store(n as u8 - 1, Ordering::Release);
                // SAFETY: we hold both locks; the child is unreachable
                // once the parent update is published.
                unsafe {
                    child.version().unlock();
                    gc::retire_node(guard, child);
                }
                p.version().unlock();
                return;
            }
            // `p` had a single child (us): it empties — delete it too.
            debug_assert_eq!(ci, 0);
            p.version().mark_deleted();
            // SAFETY: we hold both locks; `child` is unreachable.
            unsafe {
                child.version().unlock();
                gc::retire_node(guard, child);
            }
            child = NodePtr::from_interior(p as *const _ as *mut _);
        }
    }
}
