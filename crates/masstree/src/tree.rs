//! The `Masstree` handle, layer-aware descent (Figure 6) and `get`
//! (Figure 7).

use core::marker::PhantomData;
use core::sync::atomic::{AtomicPtr, Ordering};

use crossbeam::epoch::Guard;

use crate::hint::LeafHint;
use crate::key::{keylen_rank, KeyCursor, KEYLEN_SUFFIX};
use crate::node::{BorderNode, BorderSearch, ExtractedLv, InteriorNode, NodeHeader, NodePtr};
use crate::stats::Stats;
use crate::suffix::KeySuffix;
use crate::version::Version;

/// A concurrent Masstree mapping arbitrary byte keys to values of type `V`.
///
/// All operations are safe to call from any number of threads. Readers
/// (`get`, `scan`) take no locks and never write shared memory; writers
/// (`put`, `remove`) lock only the nodes they change. Reclamation is
/// epoch-based: operations take a [`Guard`] (see [`crate::pin`]), and
/// borrowed values remain valid for the guard's lifetime even if
/// concurrently removed.
pub struct Masstree<V> {
    pub(crate) root: AtomicPtr<NodeHeader>,
    pub(crate) stats: Stats,
    pub(crate) _marker: PhantomData<Box<V>>,
}

// SAFETY: the tree hands out `&V` across threads and moves `V` between
// threads during reclamation, so both bounds are required. All internal
// shared state is atomics guarded by the OCC protocol.
unsafe impl<V: Send + Sync> Send for Masstree<V> {}
// SAFETY: as above.
unsafe impl<V: Send + Sync> Sync for Masstree<V> {}

/// Signal that an operation must restart from the top of the tree (it
/// encountered a deleted node or a removed layer).
pub(crate) struct Restart;

impl<V: Send + Sync + 'static> Default for Masstree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send + Sync + 'static> Masstree<V> {
    /// Creates an empty tree.
    ///
    /// The initial node is a border node that is the root of the layer-0
    /// B+-tree; it remains the leftmost border node for the life of the
    /// tree (§4.6.4).
    pub fn new() -> Self {
        let root = BorderNode::<V>::alloc(true, false, 0);
        Masstree {
            root: AtomicPtr::new(root.cast::<NodeHeader>()),
            stats: Stats::new(),
            _marker: PhantomData,
        }
    }

    /// Event counters for the concurrency protocol (see [`Stats`]).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    #[inline]
    pub(crate) fn load_root(&self) -> NodePtr<V> {
        NodePtr::from_raw(self.root.load(Ordering::Acquire))
    }

    /// `findborder` (Figure 6): descends one trie layer's B+-tree to the
    /// border node responsible for `ikey`, using hand-over-hand version
    /// validation. Returns the node and the stable version under which it
    /// was reached, or [`Restart`] if a deleted node was encountered.
    ///
    /// `root` is updated in place when the descent has to climb past a
    /// stale root pointer (a split installed a new root above it); writers
    /// use the updated value to heal their layer-link slot lazily, as
    /// §4.6.4 prescribes.
    pub(crate) fn find_border<'g>(
        &self,
        root: &mut NodePtr<V>,
        ikey: u64,
        _guard: &'g Guard,
    ) -> Result<(&'g BorderNode<V>, Version), Restart> {
        // Sampled-trace stage mark: when the current request carries a
        // span (1-in-N sampling, `mtobs::span`), the first descent
        // records its start offset. One thread-local flag check when no
        // span is armed — negligible against the descent itself.
        mtobs::span::mark(mtobs::Stage::Descent);
        'retry: loop {
            let mut n = *root;
            n.prefetch();
            // SAFETY: `root` points to a live node: it is either the
            // tree root, a published layer link, or a parent pointer, all
            // of which are kept live by the pinned guard.
            let mut v = unsafe { n.version() }.stable();
            if !v.is_root() {
                // A split installed a new root above us; climb to it.
                // SAFETY: `n` is live (guard pinned).
                let p = unsafe { n.parent() };
                if p.is_null() {
                    // Deleted out of its tree before the parent was set.
                    return Err(Restart);
                }
                *root = NodePtr::from_interior(p);
                continue 'retry;
            }
            loop {
                if v.is_deleted() {
                    return Err(Restart);
                }
                if v.is_border() {
                    // SAFETY: live node, ISBORDER verified via `v`.
                    return Ok((unsafe { n.as_border() }, v));
                }
                // SAFETY: live node, interior per the check above.
                let inter = unsafe { n.as_interior() };
                let (_, childp) = inter.find_child(ikey);
                if childp.is_null() {
                    // Torn read during a concurrent reshape; revalidate.
                    let v2 = inter.version().stable();
                    if v.has_split(v2) {
                        Stats::bump(&self.stats.descend_retries_root);
                        continue 'retry;
                    }
                    Stats::bump(&self.stats.descend_retries_local);
                    v = v2;
                    continue;
                }
                let child = NodePtr::from_raw(childp);
                child.prefetch();
                // SAFETY: a child pointer read from a live interior node
                // is live: nodes are unlinked before being retired and
                // retired only after all pinned guards advance.
                let vc = unsafe { child.version() }.stable();
                // Hand-over-hand validation: re-check the parent before
                // committing to the child.
                let v2 = inter.version().load(Ordering::Acquire);
                if !v.has_changed(v2) {
                    n = child;
                    v = vc;
                    continue;
                }
                let v2 = inter.version().stable();
                if v.has_split(v2) {
                    // The key's range may have moved to another subtree:
                    // retry from the (possibly new) root.
                    Stats::bump(&self.stats.descend_retries_root);
                    continue 'retry;
                }
                // A local insert: retry from this node.
                Stats::bump(&self.stats.descend_retries_local);
                v = v2;
            }
        }
    }

    /// `lockedparent` (Figure 4): locks and returns `n`'s parent,
    /// revalidating the parent pointer after acquiring the lock (a
    /// concurrent split of the parent can move `n` to a new parent).
    /// Returns `None` if `n` is a layer root.
    ///
    /// # Safety-relevant invariants
    ///
    /// Caller must hold `n`'s lock, which pins `n`'s membership in its
    /// parent (children move only under the parent's lock, which the
    /// revalidation observes).
    pub(crate) fn locked_parent<'g>(
        &self,
        n: NodePtr<V>,
        _guard: &'g Guard,
    ) -> Option<&'g InteriorNode<V>> {
        loop {
            // SAFETY: `n` is live and locked by the caller.
            let p = unsafe { n.parent() };
            if p.is_null() {
                return None;
            }
            // SAFETY: parent pointers of live nodes reference live nodes
            // (a parent is unlinked only after all its children are).
            let pref = unsafe { &*p };
            pref.version().lock();
            // SAFETY: as above.
            if unsafe { n.parent() } == p {
                return Some(pref);
            }
            pref.version().unlock();
        }
    }

    /// Locks the border node responsible for `ikey`, starting from a node
    /// found by an optimistic descent. Walks right (unlock-then-lock, so
    /// no two sibling locks are ever held — see DESIGN.md §4.3) if a
    /// concurrent split moved the key. Errors if the chain hits a deleted
    /// node.
    pub(crate) fn lock_border_for_ikey<'g>(
        &self,
        start: &'g BorderNode<V>,
        ikey: u64,
    ) -> Result<&'g BorderNode<V>, Restart> {
        start.version().lock();
        self.walk_right_locked(start, ikey)
    }

    /// The already-locked body of [`Masstree::lock_border_for_ikey`]:
    /// given a locked border node whose `lowkey` once covered `ikey`,
    /// walks the leaf list right (unlock-then-lock) until the node
    /// responsible for `ikey` is held. Shared by descending writers, the
    /// batch engine's write cursors, and anchored writes (which enter
    /// with [`crate::anchor::DescentAnchor::lock_for_write`] instead of
    /// a descent). Errors (releasing the lock) if the chain hits a
    /// deleted node.
    pub(crate) fn walk_right_locked<'g>(
        &self,
        start: &'g BorderNode<V>,
        ikey: u64,
    ) -> Result<&'g BorderNode<V>, Restart> {
        let mut bn = start;
        loop {
            if bn.version().load(Ordering::Relaxed).is_deleted() {
                bn.version().unlock();
                Stats::bump(&self.stats.op_restarts);
                return Err(Restart);
            }
            let next = bn.next.load(Ordering::Acquire);
            if !next.is_null() {
                // SAFETY: leaf-list pointers reference live (possibly
                // deleted-but-unreclaimed) nodes under the pinned epoch.
                let nx = unsafe { &*next };
                if ikey >= nx.lowkey.load(Ordering::Relaxed) {
                    bn.version().unlock();
                    nx.version().lock();
                    bn = nx;
                    continue;
                }
            }
            return Ok(bn);
        }
    }

    /// Looks up `key`, returning a reference valid for the guard's
    /// lifetime (Figure 7).
    pub fn get<'g>(&self, key: &[u8], guard: &'g Guard) -> Option<&'g V> {
        self.get_capturing_hint(key, guard).0
    }

    /// Figure 7's `get`, additionally capturing a [`LeafHint`] at the
    /// validated endpoint: the border node the lookup ended in, the
    /// version that validated the read, and the trie-layer offset. Later
    /// lookups of the same key can start there via
    /// [`Masstree::get_at_hint`] and skip the descent entirely.
    pub fn get_capturing_hint<'g>(
        &self,
        key: &[u8],
        guard: &'g Guard,
    ) -> (Option<&'g V>, LeafHint<V>) {
        'restart: loop {
            let mut k = KeyCursor::new(key);
            let mut root = self.load_root();
            'layer: loop {
                let ikey = k.ikey();
                let (mut n, mut v) = match self.find_border(&mut root, ikey, guard) {
                    Ok(x) => x,
                    Err(Restart) => {
                        Stats::bump(&self.stats.op_restarts);
                        continue 'restart;
                    }
                };
                'forward: loop {
                    if v.is_deleted() {
                        Stats::bump(&self.stats.op_restarts);
                        continue 'restart;
                    }
                    let perm = n.permutation();
                    let rank = keylen_rank(k.keylen_code());
                    let mut outcome = GetOutcome::NotFound;
                    // Slot/keylen of a Value outcome, for hint capture.
                    let mut found = (0usize, 0u8);
                    // Absence concluded from a suffix mismatch is not
                    // stable under an unchanged permutation (layer
                    // conversion); the capture must record that.
                    let mut absent_conclusive = true;
                    if let BorderSearch::Found { slot, .. } = n.search(perm, ikey, rank) {
                        let (code, ex) = n.extract_lv(slot);
                        found = (slot, code);
                        outcome = match ex {
                            ExtractedLv::Unstable => GetOutcome::Unstable,
                            ExtractedLv::Layer(p) => GetOutcome::Layer(p),
                            ExtractedLv::Value(p) => {
                                if code == KEYLEN_SUFFIX {
                                    let sp = n.suffix[slot].load(Ordering::Acquire);
                                    if sp.is_null() {
                                        // Torn with a concurrent reuse; the
                                        // version check below will catch it.
                                        GetOutcome::Unstable
                                    } else {
                                        // SAFETY: suffix blocks are immutable
                                        // and epoch-reclaimed; live under the
                                        // pinned guard.
                                        let sb = unsafe { KeySuffix::bytes(sp) };
                                        if sb == k.suffix() {
                                            GetOutcome::Value(p)
                                        } else {
                                            absent_conclusive = false;
                                            GetOutcome::NotFound
                                        }
                                    }
                                } else if code as usize == k.slice_len() && !k.has_suffix() {
                                    GetOutcome::Value(p)
                                } else {
                                    // keylen changed under us (slot reuse);
                                    // version check will catch it.
                                    GetOutcome::Unstable
                                }
                            }
                        };
                    }
                    // Version re-check (Figure 7's `n.version ⊕ v > locked`).
                    let v2 = n.version().load(Ordering::Acquire);
                    if v.has_changed(v2) {
                        Stats::bump(&self.stats.read_retries);
                        let mut vs = n.version().stable();
                        // Walk right while the key's range moved (B-link).
                        loop {
                            if vs.is_deleted() {
                                break;
                            }
                            let next = n.next.load(Ordering::Acquire);
                            if next.is_null() {
                                break;
                            }
                            // SAFETY: live under pinned epoch.
                            let nx = unsafe { &*next };
                            if ikey < nx.lowkey.load(Ordering::Relaxed) {
                                break;
                            }
                            Stats::bump(&self.stats.read_advances);
                            n = nx;
                            vs = n.version().stable();
                        }
                        v = vs;
                        continue 'forward;
                    }
                    match outcome {
                        GetOutcome::NotFound => {
                            return (
                                None,
                                LeafHint::capture_absent(n, v, perm, k.offset(), absent_conclusive),
                            );
                        }
                        // SAFETY: a validated value pointer for this key;
                        // epoch reclamation keeps it live for `'g`.
                        GetOutcome::Value(p) => {
                            return (
                                Some(unsafe { &*p.cast::<V>() }),
                                LeafHint::capture(n, v, perm, found.0, found.1, k.offset()),
                            );
                        }
                        GetOutcome::Layer(p) => {
                            root = NodePtr::from_raw(p);
                            k.advance();
                            continue 'layer;
                        }
                        GetOutcome::Unstable => {
                            core::hint::spin_loop();
                            continue 'forward;
                        }
                    }
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &[u8], guard: &Guard) -> bool {
        self.get(key, guard).is_some()
    }
}

enum GetOutcome {
    NotFound,
    Value(*mut ()),
    Layer(*mut NodeHeader),
    Unstable,
}
