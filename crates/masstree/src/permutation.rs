//! Border-node permutations (§4.6.2 of the paper).
//!
//! A 64-bit permutation makes border-node inserts visible in one atomic
//! step. The low 4 bits hold `nkeys`; the remaining fifteen 4-bit fields
//! are a permutation of `0..15`. Fields `0..nkeys` list the slots of live
//! keys in increasing key order; the rest list free slots. A writer
//! composes a new permutation in a register and publishes it with a single
//! aligned store — readers see either the old order (without the new key)
//! or the new order (with it), never a rearrangement in progress.

/// B+-tree width: maximum keys per node (fanout 15).
pub const WIDTH: usize = 15;

/// A border-node permutation value (see module docs).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Permutation(u64);

impl Permutation {
    /// An empty node: zero keys, free slots listed in identity order.
    #[inline]
    pub fn empty() -> Self {
        let mut bits: u64 = 0;
        for i in 0..WIDTH {
            bits |= (i as u64) << Self::shift(i);
        }
        Permutation(bits)
    }

    /// A permutation for a node whose first `n` slots hold keys already in
    /// increasing key order (used when a split rebuilds a fresh node).
    #[inline]
    pub fn identity(n: usize) -> Self {
        assert!(n <= WIDTH);
        let Permutation(bits) = Self::empty();
        Permutation(bits | n as u64)
    }

    #[inline]
    pub fn from_raw(bits: u64) -> Self {
        Permutation(bits)
    }

    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    #[inline]
    const fn shift(index: usize) -> u32 {
        4 * (index as u32 + 1)
    }

    /// Number of live keys in the node.
    #[inline]
    pub fn nkeys(self) -> usize {
        (self.0 & 0xf) as usize
    }

    #[inline]
    pub fn is_full(self) -> bool {
        self.nkeys() == WIDTH
    }

    /// Slot index of the `i`-th smallest key (`i < nkeys`), or of the
    /// `(i - nkeys)`-th free slot otherwise.
    #[inline]
    pub fn get(self, i: usize) -> usize {
        debug_assert!(i < WIDTH);
        ((self.0 >> Self::shift(i)) & 0xf) as usize
    }

    /// The slot the next insertion will use (first free slot).
    #[inline]
    pub fn back(self) -> usize {
        debug_assert!(!self.is_full());
        self.get(self.nkeys())
    }

    /// Inserts the first free slot at sorted position `pos`, returning the
    /// new permutation and the slot index the caller must fill **before**
    /// publishing the permutation.
    #[must_use]
    pub fn insert_from_back(self, pos: usize) -> (Permutation, usize) {
        let n = self.nkeys();
        assert!(pos <= n && n < WIDTH);
        let slot = self.back();
        let mut bits = self.0;
        // Shift fields [pos, n) up one position to make room at `pos`.
        let mut i = n;
        while i > pos {
            let below = (bits >> Self::shift(i - 1)) & 0xf;
            bits = (bits & !(0xf << Self::shift(i))) | (below << Self::shift(i));
            i -= 1;
        }
        bits = (bits & !(0xf << Self::shift(pos))) | ((slot as u64) << Self::shift(pos));
        bits = (bits & !0xf) | (n as u64 + 1);
        (Permutation(bits), slot)
    }

    /// Removes the key at sorted position `pos`; its slot becomes the first
    /// free slot (so it is the next reused — §4.6.5's reuse hazard).
    /// Returns the new permutation and the freed slot index.
    #[must_use]
    pub fn remove_at(self, pos: usize) -> (Permutation, usize) {
        let n = self.nkeys();
        assert!(pos < n);
        let slot = self.get(pos);
        let mut bits = self.0;
        // Shift fields (pos, n) down one position.
        for i in pos..n - 1 {
            let above = (bits >> Self::shift(i + 1)) & 0xf;
            bits = (bits & !(0xf << Self::shift(i))) | (above << Self::shift(i));
        }
        // Freed slot becomes the head of the free region (position n-1).
        bits = (bits & !(0xf << Self::shift(n - 1))) | ((slot as u64) << Self::shift(n - 1));
        bits = (bits & !0xf) | (n as u64 - 1);
        (Permutation(bits), slot)
    }

    /// Iterator over the live slots in key order.
    #[inline]
    pub fn live_slots(self) -> impl Iterator<Item = usize> {
        (0..self.nkeys()).map(move |i| self.get(i))
    }

    /// Builds a permutation whose live keys occupy `slots` in the given
    /// order; the remaining slot indices form the free region. Used when a
    /// split rebuilds the left node's key order (§4.6.4).
    pub fn from_slots(slots: &[usize]) -> Self {
        assert!(slots.len() <= WIDTH);
        let mut bits = slots.len() as u64;
        let mut used = [false; WIDTH];
        for (i, &s) in slots.iter().enumerate() {
            assert!(s < WIDTH && !used[s], "duplicate or out-of-range slot");
            used[s] = true;
            bits |= (s as u64) << Self::shift(i);
        }
        let mut pos = slots.len();
        for (s, &u) in used.iter().enumerate() {
            if !u {
                bits |= (s as u64) << Self::shift(pos);
                pos += 1;
            }
        }
        Permutation(bits)
    }

    /// Verifies the representation invariant: the fifteen fields are a
    /// permutation of `0..15` and `nkeys <= 15`. Used by tests and the
    /// whole-tree validator.
    pub fn is_valid(self) -> bool {
        if self.nkeys() > WIDTH {
            return false;
        }
        let mut seen = [false; WIDTH];
        for i in 0..WIDTH {
            let s = self.get(i);
            if s >= WIDTH || seen[s] {
                return false;
            }
            seen[s] = true;
        }
        true
    }
}

impl core::fmt::Debug for Permutation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Permutation(n={}, [", self.nkeys())?;
        for i in 0..WIDTH {
            if i == self.nkeys() {
                write!(f, " |")?;
            }
            write!(f, " {}", self.get(i))?;
        }
        write!(f, " ])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_valid_identity() {
        let p = Permutation::empty();
        assert!(p.is_valid());
        assert_eq!(p.nkeys(), 0);
        assert_eq!(p.back(), 0);
        for i in 0..WIDTH {
            assert_eq!(p.get(i), i);
        }
    }

    #[test]
    fn insert_fills_in_order() {
        let mut p = Permutation::empty();
        for want in 0..WIDTH {
            let (np, slot) = p.insert_from_back(want);
            assert_eq!(slot, want, "identity free list hands out slots in order");
            p = np;
            assert!(p.is_valid());
            assert_eq!(p.nkeys(), want + 1);
        }
        assert!(p.is_full());
    }

    #[test]
    fn insert_at_front_shifts() {
        let mut p = Permutation::empty();
        // Insert three keys, each at sorted position 0.
        for _ in 0..3 {
            let (np, _) = p.insert_from_back(0);
            p = np;
        }
        assert!(p.is_valid());
        // Live order is the reverse of allocation order.
        let live: Vec<usize> = p.live_slots().collect();
        assert_eq!(live, vec![2, 1, 0]);
    }

    #[test]
    fn remove_frees_slot_for_next_insert() {
        let mut p = Permutation::empty();
        for i in 0..5 {
            let (np, _) = p.insert_from_back(i);
            p = np;
        }
        let (p2, freed) = p.remove_at(2);
        assert!(p2.is_valid());
        assert_eq!(p2.nkeys(), 4);
        assert_eq!(freed, 2);
        assert_eq!(p2.back(), 2, "freed slot is reused first");
        let live: Vec<usize> = p2.live_slots().collect();
        assert_eq!(live, vec![0, 1, 3, 4]);
    }

    #[test]
    fn remove_last() {
        let mut p = Permutation::empty();
        for i in 0..3 {
            let (np, _) = p.insert_from_back(i);
            p = np;
        }
        let (p2, freed) = p.remove_at(2);
        assert_eq!(freed, 2);
        assert!(p2.is_valid());
        assert_eq!(p2.live_slots().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn identity_prefix() {
        let p = Permutation::identity(7);
        assert!(p.is_valid());
        assert_eq!(p.nkeys(), 7);
        assert_eq!(
            p.live_slots().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
        assert_eq!(p.back(), 7);
    }

    #[test]
    fn from_slots_roundtrip() {
        let p = Permutation::from_slots(&[3, 0, 7]);
        assert!(p.is_valid());
        assert_eq!(p.nkeys(), 3);
        assert_eq!(p.live_slots().collect::<Vec<_>>(), vec![3, 0, 7]);
        // Free region contains exactly the other slots.
        let free: Vec<usize> = (3..WIDTH).map(|i| p.get(i)).collect();
        let mut all: Vec<usize> = free.clone();
        all.extend([3, 0, 7]);
        all.sort_unstable();
        assert_eq!(all, (0..WIDTH).collect::<Vec<_>>());
        assert!(!free.contains(&3));
    }

    #[test]
    fn from_slots_empty_and_full() {
        assert_eq!(Permutation::from_slots(&[]).nkeys(), 0);
        let full: Vec<usize> = (0..WIDTH).rev().collect();
        let p = Permutation::from_slots(&full);
        assert!(p.is_valid());
        assert!(p.is_full());
        assert_eq!(p.live_slots().collect::<Vec<_>>(), full);
    }

    #[test]
    fn full_cycle_random() {
        // Deterministic pseudo-random insert/remove churn preserving
        // validity; mirrors proptest but runs in the unit suite.
        let mut p = Permutation::empty();
        let mut n = 0usize;
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (seed >> 33) as usize;
            if n < WIDTH && (n == 0 || r.is_multiple_of(2)) {
                let (np, slot) = p.insert_from_back(r % (n + 1));
                assert!(slot < WIDTH);
                p = np;
                n += 1;
            } else {
                let (np, _) = p.remove_at(r % n);
                p = np;
                n -= 1;
            }
            assert!(p.is_valid(), "{p:?}");
            assert_eq!(p.nkeys(), n);
        }
    }
}
