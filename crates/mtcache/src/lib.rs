//! # mtcache — the hot-path cache tier
//!
//! A **per-worker** cache mapping hot keys to [`LeafHint`]s — remembered
//! `(border node, version, trie-layer offset)` lookup endpoints — so a
//! hit jumps straight to the right border node and serves the value with
//! zero descent (`masstree::hint`). The tier is deliberately *not*
//! shared:
//!
//! * **Per-core replacement** — each worker session owns its own table,
//!   so lookups and replacement touch no shared cache lines and need no
//!   synchronization with other workers ("Beyond Worst-case Analysis of
//!   Multicore Caching Strategies": shared replacement state is where
//!   multicore caches lose their scalability).
//! * **Validation instead of invalidation** — hints are conjectures
//!   revalidated on every use against the node's OCC version word, so no
//!   writer ever has to notify any cache. A stale hint simply fails
//!   validation and falls back to a normal descent, which refreshes it.
//!   Staleness is impossible by construction; the price is a bounded
//!   validation-failure rate under churn, which [`CacheStats`] exposes.
//!
//! # Structure — built for the memory hierarchy
//!
//! The table is a fixed-size, set-associative array ([`ASSOC`]-way) with
//! **CLOCK** replacement per set, laid out so the common paths touch as
//! few cache lines as possible:
//!
//! * per-slot **hash tags** live in their own compact array — a probe
//!   that misses costs one cache line per set;
//! * keys are stored **inline** in 64-byte slots (≤ [`MAX_KEY`] bytes;
//!   longer keys are simply not cached) — a hit costs the tag line plus
//!   one slot line, no pointer chases;
//! * the **admission sketch** (aging byte counters) is touched only on
//!   *misses* — that is where admission decisions happen — so hits skip
//!   it entirely. A key earns a slot only after
//!   [`CacheConfig::admit_threshold`] miss observations within the aging
//!   window, which keeps one-shot cold keys from ever churning the
//!   table (no allocation, no eviction, not even a slot write).
//!
//! # Adaptive bypass
//!
//! A hint table cannot help a workload with no reuse — but it can hurt
//! it (every lookup pays hash + probe). The cache therefore watches its
//! own windowed hit rate and, when it stays below a floor, recommends
//! **bypass**: the owner (the `mtkv` session) then routes traffic
//! straight to the tree, sampling roughly 1 in 64 operations through
//! the cache so a workload that turns skewed is noticed and the table
//! re-engages. Uniform traffic thus pays a few nanoseconds, not a probe.

use core::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use masstree::prefetch::prefetch;
use masstree::LeafHint;

/// Ways per set. Eight entries' tags share one cache line, so a probe
/// that misses touches a single line.
const ASSOC: usize = 8;

/// Longest key stored (inline) in the table; longer keys are never
/// cached. 30 bytes keeps a slot — hint, bookkeeping and key — in
/// exactly one cache line, and covers the store's benchmark and YCSB
/// key shapes with room to spare.
pub const MAX_KEY: usize = 30;

/// How many stat events accumulate locally before they are flushed to
/// the shared [`CacheStatsShared`] sink (keeps the hot path free of
/// shared-line traffic).
const STATS_FLUSH_EVERY: u64 = 256;

/// Lookups per hit-rate window while engaged.
const WINDOW: u32 = 4096;
/// Lookups per window while bypassed (these are 1-in-64 samples, so a
/// short window re-evaluates the workload after ~32k operations).
const BYPASS_WINDOW: u32 = 512;
/// Windowed hit rate below which bypass is recommended. A hit saves a
/// few serial cache misses (~200 ns) while every engaged lookup pays
/// the probe (~25-40 ns), so the cost-benefit crossover sits near a
/// 15-20% hit rate; below an eighth the table reliably costs more than
/// it saves.
const BYPASS_BELOW: f64 = 1.0 / 8.0;

/// Tuning for a session's hint cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Hint slots in the table (rounded up to a power of two, min one
    /// set). Each slot is one cache line.
    pub capacity: usize,
    /// Miss observations of a key (within the admission sketch's aging
    /// window) before it earns a table slot. 1 admits on first sight;
    /// the default 2 keeps one-shot cold keys out.
    pub admit_threshold: u8,
    /// Admission sketch counters (rounded up to a power of two). Small
    /// is good: the sketch is touched on every miss, so it should stay
    /// cache-resident.
    pub counters: usize,
    /// Miss observations between sketch agings (every counter is
    /// halved), bounding how long dead keys keep their admission credit.
    pub age_every: u32,
    /// Whether the adaptive bypass governor may disengage the table on
    /// reuse-free workloads (see the module docs).
    pub adaptive_bypass: bool,
    /// Whether the **write path** (`put`/`remove`/`multi_put`) consults
    /// the table too: read and write anchors share slots (a hint
    /// captured by either side serves both), so a hot key's updates
    /// start `lock_border_for_ikey` at the anchored node and skip the
    /// descent. Validation makes a stale anchor harmless — it is
    /// rejected and the write falls back to a descent — so this is a
    /// pure routing decision, not a safety one.
    pub cache_writes: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl CacheConfig {
    /// A config sized for `capacity` hint slots, sketch scaled to match
    /// (but kept small enough to stay cache-resident).
    ///
    /// The aging window is a small fraction (1/16) of the counter count:
    /// a reuse-free stream then lands ~0.06 stray bumps per counter per
    /// window, so with the default threshold of 2 a key must genuinely
    /// recur in the miss stream — within a short window — to earn a
    /// slot. That concentrates the table on the head of the popularity
    /// distribution, whose slots and nodes stay cache-resident (cheap
    /// hits, no churn); it deliberately does NOT chase the lukewarm
    /// tail, whose hits would be DRAM-cold and whose admission would
    /// evict head entries. (Misses, not hits, feed the sketch: a cached
    /// hot key stops contributing the moment it stops missing.)
    pub fn with_capacity(capacity: usize) -> CacheConfig {
        let counters = (capacity * 2).clamp(1024, 16384);
        CacheConfig {
            capacity,
            admit_threshold: 2,
            counters,
            age_every: (counters / 16).max(64) as u32,
            adaptive_bypass: true,
            cache_writes: true,
        }
    }
}

/// Event counters for one cache (plain integers: the table is
/// per-worker). `lookups = hits + stale + misses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup attempts (sampled ones only, while bypassed).
    pub lookups: u64,
    /// Lookups served by a validated hint (zero descent).
    pub hits: u64,
    /// Lookups whose hint failed validation (split, delete, reuse, or a
    /// racing writer) and fell back to a full descent.
    pub stale: u64,
    /// Lookups with no table entry.
    pub misses: u64,
    /// Hints admitted into the table.
    pub admitted: u64,
    /// Hints refreshed in place (entry already present).
    pub refreshed: u64,
    /// Record attempts rejected (key longer than [`MAX_KEY`]).
    pub rejected: u64,
    /// Entries evicted by CLOCK to make room.
    pub evicted: u64,
    /// Entries dropped by explicit invalidation (`remove`).
    pub invalidated: u64,
    /// Write-path lookup attempts (`put`/`remove` consulting the
    /// table). Disjoint from `lookups`, which counts reads:
    /// `write_lookups = write_hits + write_stale + write misses`.
    pub write_lookups: u64,
    /// Writes served through a validated anchor (zero descent).
    pub write_hits: u64,
    /// Writes whose anchor failed validation and fell back to a full
    /// descent.
    pub write_stale: u64,
    /// Scans resumed at a validated anchor (zero descent).
    pub scan_resumes: u64,
    /// Scan resumptions that fell back to a full descent (no anchor, or
    /// a stale one).
    pub scan_stale: u64,
    /// Server-side scan-token cursors evicted (LRU) at the
    /// per-connection cap. Counted by the network layer — the cache
    /// carries the field so evictions aggregate through the same
    /// per-worker-flush path as every other counter.
    pub scan_evictions: u64,
}

impl CacheStats {
    fn diff(&self, since: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups - since.lookups,
            hits: self.hits - since.hits,
            stale: self.stale - since.stale,
            misses: self.misses - since.misses,
            admitted: self.admitted - since.admitted,
            refreshed: self.refreshed - since.refreshed,
            rejected: self.rejected - since.rejected,
            evicted: self.evicted - since.evicted,
            invalidated: self.invalidated - since.invalidated,
            write_lookups: self.write_lookups - since.write_lookups,
            write_hits: self.write_hits - since.write_hits,
            write_stale: self.write_stale - since.write_stale,
            scan_resumes: self.scan_resumes - since.scan_resumes,
            scan_stale: self.scan_stale - since.scan_stale,
            scan_evictions: self.scan_evictions - since.scan_evictions,
        }
    }
}

/// A store-wide aggregation sink: per-worker caches flush their local
/// counters here in batches (every [`STATS_FLUSH_EVERY`] events and on
/// drop), so system-level stats — the network `Stats` request — see
/// every session's traffic without putting shared atomics on the
/// per-lookup hot path.
#[derive(Debug, Default)]
pub struct CacheStatsShared {
    lookups: AtomicU64,
    hits: AtomicU64,
    stale: AtomicU64,
    misses: AtomicU64,
    admitted: AtomicU64,
    refreshed: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    invalidated: AtomicU64,
    write_lookups: AtomicU64,
    write_hits: AtomicU64,
    write_stale: AtomicU64,
    scan_resumes: AtomicU64,
    scan_stale: AtomicU64,
    scan_evictions: AtomicU64,
}

impl CacheStatsShared {
    fn add(&self, d: &CacheStats) {
        self.lookups.fetch_add(d.lookups, Ordering::Relaxed);
        self.hits.fetch_add(d.hits, Ordering::Relaxed);
        self.stale.fetch_add(d.stale, Ordering::Relaxed);
        self.misses.fetch_add(d.misses, Ordering::Relaxed);
        self.admitted.fetch_add(d.admitted, Ordering::Relaxed);
        self.refreshed.fetch_add(d.refreshed, Ordering::Relaxed);
        self.rejected.fetch_add(d.rejected, Ordering::Relaxed);
        self.evicted.fetch_add(d.evicted, Ordering::Relaxed);
        self.invalidated.fetch_add(d.invalidated, Ordering::Relaxed);
        self.write_lookups
            .fetch_add(d.write_lookups, Ordering::Relaxed);
        self.write_hits.fetch_add(d.write_hits, Ordering::Relaxed);
        self.write_stale.fetch_add(d.write_stale, Ordering::Relaxed);
        self.scan_resumes
            .fetch_add(d.scan_resumes, Ordering::Relaxed);
        self.scan_stale.fetch_add(d.scan_stale, Ordering::Relaxed);
        self.scan_evictions
            .fetch_add(d.scan_evictions, Ordering::Relaxed);
    }

    /// Direct bump for counters owned by layers above the cache (the
    /// network server's scan-token LRU) that have no per-session local
    /// batch to flush through.
    pub fn add_scan_evictions(&self, n: u64) {
        self.scan_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time aggregate across all flushed sessions.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            refreshed: self.refreshed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            write_lookups: self.write_lookups.load(Ordering::Relaxed),
            write_hits: self.write_hits.load(Ordering::Relaxed),
            write_stale: self.write_stale.load(Ordering::Relaxed),
            scan_resumes: self.scan_resumes.load(Ordering::Relaxed),
            scan_stale: self.scan_stale.load(Ordering::Relaxed),
            scan_evictions: self.scan_evictions.load(Ordering::Relaxed),
        }
    }
}

/// One table slot: hint + inline key, exactly one cache line together
/// with its bookkeeping (the alignment makes "one line" literal — an
/// unaligned slot would straddle two). Vacancy is tracked by the tag
/// array (`tag == 0`); the hint is `MaybeUninit` purely to fit the line
/// (an `Option` discriminant would push the slot to 72 bytes) and is
/// written before the tag ever becomes nonzero.
#[repr(align(64))]
struct Slot<V> {
    hint: MaybeUninit<LeafHint<V>>,
    key_len: u8,
    referenced: bool,
    key: [u8; MAX_KEY],
}

impl<V> Slot<V> {
    fn vacant() -> Slot<V> {
        Slot {
            hint: MaybeUninit::uninit(),
            key_len: 0,
            referenced: false,
            key: [0; MAX_KEY],
        }
    }

    #[inline]
    fn key_bytes(&self) -> &[u8] {
        &self.key[..self.key_len as usize]
    }
}

/// One set's hash tags, cache-line-aligned so a probe reads exactly one
/// line (`0` = vacant way).
#[derive(Clone)]
#[repr(align(64))]
struct TagSet([u64; ASSOC]);

/// Result of a table lookup.
pub enum Lookup<V> {
    /// An entry matched; validate this hint against the tree.
    Hit(LeafHint<V>),
    /// No usable entry. `admit` reports whether the key has earned a
    /// slot in the admission sketch — only then is it worth capturing a
    /// hint and calling [`HintCache::record`].
    Miss {
        /// The key crossed the admission threshold.
        admit: bool,
    },
}

/// A per-worker hint table. All methods take `&mut self` — ownership is
/// the synchronization (sessions wrap it in a cheap uncontended mutex
/// only to stay `Sync`).
pub struct HintCache<V> {
    /// Per-set hash tags; scanned before slots are touched so a miss
    /// costs one cache line per set.
    tags: Vec<TagSet>,
    slots: Vec<Slot<V>>,
    /// CLOCK hand per set.
    hands: Vec<u8>,
    set_mask: usize,
    /// Admission sketch: aging byte counters indexed by key hash,
    /// touched only on misses.
    counters: Vec<u8>,
    counter_mask: usize,
    admit_threshold: u8,
    age_every: u32,
    since_age: u32,
    // Adaptive-bypass governor.
    adaptive: bool,
    window_lookups: u32,
    window_hits: u32,
    bypass: bool,
    stats: CacheStats,
    flushed: CacheStats,
    events: u64,
    shared: Option<Arc<CacheStatsShared>>,
}

/// Key hash: 8-byte-chunk multiply-mix (FxHash-style, ~3× cheaper than
/// byte-at-a-time FNV on the 10-30-byte keys this table sees), with a
/// finalizer so the set index (taken from middle bits) is well mixed.
#[inline]
fn hash_key(key: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h: u64 = key.len() as u64;
    let mut chunks = key.chunks_exact(8);
    for c in &mut chunks {
        let x = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(23) ^ x).wrapping_mul(K);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rest.len()].copy_from_slice(rest);
        h = (h.rotate_left(23) ^ u64::from_le_bytes(buf)).wrapping_mul(K);
    }
    h ^= h >> 29;
    h = h.wrapping_mul(K);
    h ^= h >> 32;
    // Never 0: 0 tags a vacant slot.
    h | 1
}

impl<V> HintCache<V> {
    pub fn new(cfg: &CacheConfig) -> HintCache<V> {
        Self::build(cfg, None)
    }

    /// A cache that flushes its counters into `shared` (batched).
    pub fn with_shared(cfg: &CacheConfig, shared: Arc<CacheStatsShared>) -> HintCache<V> {
        Self::build(cfg, Some(shared))
    }

    fn build(cfg: &CacheConfig, shared: Option<Arc<CacheStatsShared>>) -> HintCache<V> {
        let sets = (cfg.capacity.max(ASSOC) / ASSOC).next_power_of_two();
        let slots = sets * ASSOC;
        let counters = cfg.counters.max(64).next_power_of_two();
        HintCache {
            tags: vec![TagSet([0; ASSOC]); sets],
            slots: (0..slots).map(|_| Slot::vacant()).collect(),
            hands: vec![0; sets],
            set_mask: sets - 1,
            counters: vec![0; counters],
            counter_mask: counters - 1,
            admit_threshold: cfg.admit_threshold.max(1),
            age_every: cfg.age_every.max(1),
            since_age: 0,
            adaptive: cfg.adaptive_bypass,
            window_lookups: 0,
            window_hits: 0,
            bypass: false,
            stats: CacheStats::default(),
            flushed: CacheStats::default(),
            events: 0,
            shared,
        }
    }

    /// Hint slots in the table.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn set_base(&self, hash: u64) -> usize {
        ((hash as usize >> 3) & self.set_mask) * ASSOC
    }

    #[inline]
    fn tag(&self, slot: usize) -> u64 {
        self.tags[slot / ASSOC].0[slot % ASSOC]
    }

    #[inline]
    fn set_tag(&mut self, slot: usize, tag: u64) {
        self.tags[slot / ASSOC].0[slot % ASSOC] = tag;
    }

    #[inline]
    fn find(&self, hash: u64, key: &[u8]) -> Option<usize> {
        let base = self.set_base(hash);
        let set = &self.tags[base / ASSOC].0;
        for (way, &t) in set.iter().enumerate() {
            if t == hash && self.slots[base + way].key_bytes() == key {
                return Some(base + way);
            }
        }
        None
    }

    #[inline]
    fn tick(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(STATS_FLUSH_EVERY) {
            self.flush_stats();
        }
    }

    /// Advances the governor's window with one lookup (`hit` = the tag
    /// probe matched).
    #[inline]
    fn govern(&mut self, hit: bool) {
        self.window_lookups += 1;
        self.window_hits += hit as u32;
        let window = if self.bypass { BYPASS_WINDOW } else { WINDOW };
        if self.window_lookups >= window {
            let rate = self.window_hits as f64 / self.window_lookups as f64;
            self.bypass = self.adaptive && rate < BYPASS_BELOW;
            self.window_lookups = 0;
            self.window_hits = 0;
        }
    }

    /// True when the governor recommends routing traffic straight to
    /// the tree (sampling ~1/64 of it back through [`HintCache::lookup`]
    /// so a workload shift is noticed).
    #[inline]
    pub fn bypass_recommended(&self) -> bool {
        self.bypass
    }

    /// Looks up a hint for `key` on behalf of a **read**. A hit touches
    /// the tag line and one slot line — the admission sketch is only
    /// consulted (and bumped) on misses, where admission decisions
    /// happen. The caller validates a returned hint and reports the
    /// outcome via [`HintCache::note_hit`] / [`HintCache::note_stale`].
    pub fn lookup(&mut self, key: &[u8]) -> Lookup<V> {
        self.lookup_kind(key, false)
    }

    /// Looks up an anchor for `key` on behalf of a **write** (`put` /
    /// `remove`). Identical probe — read and write anchors share slots,
    /// so a hint captured by either side serves both — but accounted
    /// under the `write_*` counters; report the validation outcome via
    /// [`HintCache::note_write_hit`] / [`HintCache::note_write_stale`].
    /// Write misses feed the shared admission sketch: a write-hot key
    /// earns its slot just like a read-hot one.
    pub fn lookup_write(&mut self, key: &[u8]) -> Lookup<V> {
        self.lookup_kind(key, true)
    }

    fn lookup_kind(&mut self, key: &[u8], write: bool) -> Lookup<V> {
        if write {
            self.stats.write_lookups += 1;
        } else {
            self.stats.lookups += 1;
        }
        self.tick();
        if key.len() > MAX_KEY {
            // Uncacheable: don't feed the sketch (it would earn useless
            // admission credit and send every later get through a
            // doomed `record`) and don't probe.
            if !write {
                self.stats.misses += 1;
            }
            self.govern(false);
            return Lookup::Miss { admit: false };
        }
        let hash = hash_key(key);
        // Fetch the set's slot lines in parallel with the tag line: on
        // a hit the matching slot has already arrived by the time the
        // tag scan picks its way (8 lines of bandwidth for one serial
        // DRAM latency saved — the hint path lives and dies by its
        // serial memory chain).
        let base = self.set_base(hash);
        for way in 0..ASSOC {
            prefetch(&self.slots[base + way]);
        }
        if let Some(i) = self.find(hash, key) {
            self.govern(true);
            let s = &mut self.slots[i];
            s.referenced = true;
            // SAFETY: a nonzero tag is only ever published after the
            // slot's hint and key are written (`record`), and cleared
            // before vacating (`invalidate`).
            return Lookup::Hit(unsafe { s.hint.assume_init() });
        }
        self.govern(false);
        if !write {
            self.stats.misses += 1;
        }
        // Sampled hot-key accounting: saturating bump, periodic halving.
        let c = &mut self.counters[hash as usize & self.counter_mask];
        *c = c.saturating_add(1);
        let admit = *c >= self.admit_threshold;
        self.since_age += 1;
        if self.since_age >= self.age_every {
            self.since_age = 0;
            for c in &mut self.counters {
                *c >>= 1;
            }
        }
        Lookup::Miss { admit }
    }

    /// Counts a validated hit (zero-descent lookup).
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Counts a validation failure (the caller fell back to a descent).
    /// The entry stays — the caller's follow-up [`HintCache::record`]
    /// refreshes it in place.
    pub fn note_stale(&mut self) {
        self.stats.stale += 1;
        // A stale probe was still a table hit structurally; feeding it
        // to the governor as a hit is correct — bypass is about table
        // coldness, not tree churn.
    }

    /// Counts a write served through a validated anchor (zero descent).
    pub fn note_write_hit(&mut self) {
        self.stats.write_hits += 1;
    }

    /// Counts a write whose anchor failed validation (fell back to a
    /// full descent).
    pub fn note_write_stale(&mut self) {
        self.stats.write_stale += 1;
    }

    /// Counts a scan resumed at a validated anchor (zero descent).
    pub fn note_scan_resumed(&mut self) {
        self.stats.scan_resumes += 1;
    }

    /// Counts a scan resumption that fell back to a full descent.
    pub fn note_scan_fallback(&mut self) {
        self.stats.scan_stale += 1;
    }

    /// Offers a freshly captured hint. Present entries are refreshed in
    /// place; new keys take a vacant way or evict their set's CLOCK
    /// victim. Callers gate fresh inserts on `Lookup::Miss { admit }`;
    /// keys longer than [`MAX_KEY`] are rejected (never cached).
    pub fn record(&mut self, key: &[u8], hint: LeafHint<V>) {
        if key.len() > MAX_KEY {
            self.stats.rejected += 1;
            return;
        }
        let hash = hash_key(key);
        if let Some(i) = self.find(hash, key) {
            let s = &mut self.slots[i];
            s.hint = MaybeUninit::new(hint);
            s.referenced = true;
            self.stats.refreshed += 1;
            return;
        }
        let base = self.set_base(hash);
        let slot = match (base..base + ASSOC).find(|&i| self.tag(i) == 0) {
            Some(i) => i,
            None => {
                // CLOCK within the set: clear ref bits until a cold
                // entry turns up (bounded by two sweeps).
                let set = base / ASSOC;
                loop {
                    let way = self.hands[set] as usize;
                    self.hands[set] = ((way + 1) % ASSOC) as u8;
                    let s = &mut self.slots[base + way];
                    if s.referenced {
                        s.referenced = false;
                    } else {
                        self.stats.evicted += 1;
                        break base + way;
                    }
                }
            }
        };
        let s = &mut self.slots[slot];
        s.hint = MaybeUninit::new(hint);
        s.key_len = key.len() as u8;
        s.key[..key.len()].copy_from_slice(key);
        s.referenced = true;
        self.set_tag(slot, hash);
        self.stats.admitted += 1;
    }

    /// Drops `key`'s entry (a removed key's hint is dead weight — though
    /// never unsafe: validation would simply report the key absent).
    pub fn invalidate(&mut self, key: &[u8]) {
        if key.len() > MAX_KEY {
            return;
        }
        let hash = hash_key(key);
        if let Some(i) = self.find(hash, key) {
            self.set_tag(i, 0);
            self.slots[i] = Slot::vacant();
            self.stats.invalidated += 1;
        }
    }

    /// This cache's local counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Pushes unflushed counter deltas to the shared sink (no-op without
    /// one). Called automatically every [`STATS_FLUSH_EVERY`] events and
    /// on drop.
    pub fn flush_stats(&mut self) {
        if let Some(shared) = &self.shared {
            shared.add(&self.stats.diff(&self.flushed));
            self.flushed = self.stats;
        }
    }
}

impl<V> Drop for HintCache<V> {
    fn drop(&mut self) {
        self.flush_stats();
    }
}

/// Per-session cache of resumable scan positions: a handful of
/// [`ScanCursor`]s keyed by the full-key bound the next chunk is
/// expected to start from. Sequential chunked range reads (`getrange(k,
/// n)` repeated with `k` = previous end) then transparently resume at
/// the remembered border node instead of re-descending from the root.
///
/// Like the hint table, the cache is per-worker and validation-based: a
/// cursor's anchor is revalidated by the tree on every resume, so a
/// stale entry costs one fallback descent, never a wrong answer.
///
/// Entries recycle their buffers on takeover (the expected-bound string
/// and the cursor's own bound vector keep their capacity), so a warm
/// cursor cache allocates nothing in steady state.
pub struct CursorCache<V> {
    entries: Vec<CursorEntry<V>>,
    clock: u64,
}

struct CursorEntry<V> {
    /// Full-key start the cached cursor continues from (empty = vacant;
    /// an empty *live* bound is representable via `live`).
    expected: Vec<u8>,
    cursor: masstree::ScanCursor<V>,
    reverse: bool,
    live: bool,
    stamp: u64,
}

/// Cursors cached per session; chunked scans rarely interleave more
/// than a couple of independent range streams per connection.
const CURSOR_WAYS: usize = 4;

impl<V> CursorCache<V> {
    pub fn new() -> CursorCache<V> {
        CursorCache {
            entries: Vec::new(),
            clock: 0,
        }
    }

    /// Takes the cursor expected to continue at `start` in the given
    /// direction, if one is cached (the entry becomes vacant — put the
    /// cursor back with [`CursorCache::put`] when the chunk completes).
    pub fn take(&mut self, start: &[u8], reverse: bool) -> Option<masstree::ScanCursor<V>> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.live && e.reverse == reverse && e.expected == start)?;
        e.live = false;
        // Swap in a placeholder (empty bounds allocate nothing).
        Some(core::mem::replace(
            &mut e.cursor,
            masstree::ScanCursor::forward(&[]),
        ))
    }

    /// Caches `cursor` under its current bound (the key the next chunk
    /// of the same stream will start from). Exhausted cursors are not
    /// worth a slot. Reuses a vacant entry's buffers, or evicts the
    /// least-recently-stored entry once `CURSOR_WAYS` are live.
    pub fn put(&mut self, cursor: masstree::ScanCursor<V>) {
        if cursor.is_done() {
            return;
        }
        self.clock += 1;
        let stamp = self.clock;
        let slot = match self.entries.iter_mut().position(|e| !e.live) {
            Some(i) => i,
            None if self.entries.len() < CURSOR_WAYS => {
                self.entries.push(CursorEntry {
                    expected: Vec::new(),
                    cursor: masstree::ScanCursor::forward(&[]),
                    reverse: false,
                    live: false,
                    stamp: 0,
                });
                self.entries.len() - 1
            }
            None => {
                let (i, _) = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .expect("ways is nonzero");
                i
            }
        };
        let e = &mut self.entries[slot];
        e.expected.clear();
        e.expected.extend_from_slice(cursor.bound());
        e.reverse = cursor.is_reverse();
        e.live = true;
        e.stamp = stamp;
        e.cursor = cursor;
    }

    /// [`CursorCache::take`], falling back to a cursor **re-aimed** at
    /// `start` when no cached continuation matches. The fallback claims
    /// a vacant entry's buffers first, then (below capacity) a fresh
    /// cursor, and only at full capacity recycles the least-recently
    /// stored live entry — so starting a new stream never destroys
    /// another live stream's continuation while slots remain, and a
    /// warm cache still allocates nothing (every entry's buffers keep
    /// their capacity). The second return value reports whether a
    /// cached continuation was found.
    pub fn take_or_start(
        &mut self,
        start: &[u8],
        reverse: bool,
    ) -> (masstree::ScanCursor<V>, bool) {
        if let Some(c) = self.take(start, reverse) {
            return (c, true);
        }
        // Vacant entry (a previously taken/expired slot): reuse its
        // cursor's buffers.
        if let Some(e) = self.entries.iter_mut().find(|e| !e.live) {
            let mut c = core::mem::replace(&mut e.cursor, masstree::ScanCursor::forward(&[]));
            c.reset(start, reverse);
            return (c, false);
        }
        if self.entries.len() >= CURSOR_WAYS {
            // Full: recycle the least-recently stored live stream.
            if let Some(e) = self.entries.iter_mut().min_by_key(|e| e.stamp) {
                e.live = false;
                let mut c = core::mem::replace(&mut e.cursor, masstree::ScanCursor::forward(&[]));
                c.reset(start, reverse);
                return (c, false);
            }
        }
        let mut c = masstree::ScanCursor::forward(&[]);
        c.reset(start, reverse);
        (c, false)
    }

    /// Drops every cached cursor (e.g. after a bulk delete, where the
    /// anchors are all dead weight).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.live = false;
        }
    }
}

impl<V> Default for CursorCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masstree::Masstree;

    fn hint_for(tree: &Masstree<u64>, key: &[u8]) -> LeafHint<u64> {
        let g = masstree::pin();
        tree.get_capturing_hint(key, &g).1
    }

    fn admit_of<V>(l: Lookup<V>) -> bool {
        match l {
            Lookup::Miss { admit } => admit,
            Lookup::Hit(_) => panic!("expected a miss"),
        }
    }

    #[test]
    fn slot_is_one_cache_line() {
        assert!(std::mem::size_of::<Slot<u64>>() <= 64, "one line per slot");
    }

    #[test]
    fn admission_keeps_one_shot_keys_out() {
        let tree: Masstree<u64> = Masstree::new();
        {
            let g = masstree::pin();
            tree.put(b"k", 1, &g);
        }
        let mut c: HintCache<u64> = HintCache::new(&CacheConfig::default());
        let h = hint_for(&tree, b"k");
        // First sight: one sketch observation (< threshold 2) → the
        // caller is told not to bother recording.
        assert!(!admit_of(c.lookup(b"k")));
        // Second sight: earned admission.
        assert!(admit_of(c.lookup(b"k")));
        c.record(b"k", h);
        assert_eq!(c.stats().admitted, 1);
        assert!(matches!(c.lookup(b"k"), Lookup::Hit(_)));
    }

    #[test]
    fn long_keys_are_never_cached() {
        let tree: Masstree<u64> = Masstree::new();
        let long = vec![b'x'; MAX_KEY + 1];
        {
            let g = masstree::pin();
            tree.put(&long, 1, &g);
        }
        let mut c: HintCache<u64> = HintCache::new(&CacheConfig::default());
        // Lookups never grant a long key admission credit...
        assert!(matches!(c.lookup(&long), Lookup::Miss { admit: false }));
        assert!(matches!(c.lookup(&long), Lookup::Miss { admit: false }));
        // ...and a (hypothetical) record attempt is rejected outright.
        c.record(&long, hint_for(&tree, &long));
        assert_eq!(c.stats().rejected, 1);
        assert!(matches!(c.lookup(&long), Lookup::Miss { .. }));
    }

    #[test]
    fn record_refreshes_in_place_and_invalidate_drops() {
        let tree: Masstree<u64> = Masstree::new();
        {
            let g = masstree::pin();
            tree.put(b"k", 1, &g);
        }
        let mut c: HintCache<u64> = HintCache::new(&CacheConfig::with_capacity(64));
        let h = hint_for(&tree, b"k");
        c.lookup(b"k");
        c.lookup(b"k");
        c.record(b"k", h);
        c.record(b"k", h);
        assert_eq!(c.stats().admitted, 1);
        assert_eq!(c.stats().refreshed, 1);
        c.invalidate(b"k");
        assert!(matches!(c.lookup(b"k"), Lookup::Miss { .. }));
        assert_eq!(c.stats().invalidated, 1);
    }

    #[test]
    fn clock_evicts_cold_entries_under_pressure() {
        let tree: Masstree<u64> = Masstree::new();
        {
            let g = masstree::pin();
            for i in 0..64u64 {
                tree.put(format!("p{i:03}").as_bytes(), i, &g);
            }
        }
        // A tiny single-set table with admit-on-first-sight.
        let cfg = CacheConfig {
            capacity: ASSOC,
            admit_threshold: 1,
            counters: 64,
            age_every: 1_000_000,
            adaptive_bypass: false,
            cache_writes: true,
        };
        let mut c: HintCache<u64> = HintCache::new(&cfg);
        // Overfill: every key hashes somewhere in the one set.
        for i in 0..32u64 {
            let k = format!("p{i:03}");
            c.lookup(k.as_bytes());
            c.record(k.as_bytes(), hint_for(&tree, k.as_bytes()));
        }
        assert!(c.stats().evicted >= 32 - ASSOC as u64);
        // Table still serves the most recent keys.
        let present = (0..32u64)
            .filter(|i| matches!(c.lookup(format!("p{i:03}").as_bytes()), Lookup::Hit(_)))
            .count();
        assert!(present > 0 && present <= ASSOC);
    }

    #[test]
    fn aging_halves_counters() {
        let cfg = CacheConfig {
            capacity: 64,
            admit_threshold: 2,
            counters: 64,
            age_every: 8,
            ..CacheConfig::default()
        };
        let mut c: HintCache<u64> = HintCache::new(&cfg);
        for _ in 0..7 {
            c.lookup(b"hot");
        }
        let idx = hash_key(b"hot") as usize & c.counter_mask;
        assert_eq!(c.counters[idx], 7);
        c.lookup(b"hot"); // 8th miss triggers aging after the bump
        assert_eq!(c.counters[idx], 4);
    }

    #[test]
    fn governor_bypasses_reuse_free_traffic_and_recovers() {
        let cfg = CacheConfig {
            capacity: 256,
            admit_threshold: 2,
            counters: 256,
            age_every: 1024,
            adaptive_bypass: true,
            cache_writes: true,
        };
        let mut c: HintCache<u64> = HintCache::new(&cfg);
        assert!(!c.bypass_recommended());
        // A full window of pure misses → bypass.
        for i in 0..WINDOW {
            c.lookup(format!("cold{i:08}").as_bytes());
        }
        assert!(c.bypass_recommended(), "cold window must engage bypass");
        // Hot sampled traffic exits bypass within a (short) window.
        let tree: Masstree<u64> = Masstree::new();
        {
            let g = masstree::pin();
            tree.put(b"hot", 1, &g);
        }
        c.lookup(b"hot");
        c.lookup(b"hot");
        c.record(b"hot", hint_for(&tree, b"hot"));
        for _ in 0..BYPASS_WINDOW {
            c.lookup(b"hot");
        }
        assert!(!c.bypass_recommended(), "hot samples must re-engage");
    }

    #[test]
    fn shared_sink_aggregates_across_caches() {
        let shared = Arc::new(CacheStatsShared::default());
        let cfg = CacheConfig::default();
        {
            let mut a: HintCache<u64> = HintCache::with_shared(&cfg, Arc::clone(&shared));
            let mut b: HintCache<u64> = HintCache::with_shared(&cfg, Arc::clone(&shared));
            for _ in 0..10 {
                a.lookup(b"x");
                b.lookup(b"y");
            }
            // Drop flushes the unflushed tail.
        }
        let s = shared.snapshot();
        assert_eq!(s.lookups, 20);
        assert_eq!(s.misses, 20);
    }
}
