//! Split/remove stress: drive enough structural churn that hint
//! validation fails often, and assert the failure counters are nonzero
//! (the fallback path is actually exercised) while every answer stays
//! correct against single-threaded ground truth.

use masstree::hint::HintedGet;
use masstree::Masstree;
use mtcache::{CacheConfig, HintCache};
use mtworkload::Rng64;

#[test]
fn split_and_remove_churn_forces_validation_failures() {
    let tree: Masstree<u64> = Masstree::new();
    let cfg = CacheConfig {
        capacity: 512,
        admit_threshold: 1,
        counters: 1024,
        age_every: 1 << 20,
        adaptive_bypass: false,
        cache_writes: true,
    };
    let mut cache: HintCache<u64> = HintCache::new(&cfg);
    let mut rng = Rng64::new(7);
    let mut model = std::collections::HashMap::<u64, u64>::new();
    let key = |k: u64| format!("churn{k:06}").into_bytes();

    let mut seq = 1u64;
    for round in 0..40u64 {
        let g = masstree::pin();
        // Grow a dense range (splits), then carve most of it back out
        // (freed slots, border-node deletions).
        let base = round * 400;
        for k in base..base + 400 {
            tree.put(&key(k), seq, &g);
            model.insert(k, seq);
            seq += 1;
        }
        for k in (base..base + 400).step_by(2) {
            tree.remove(&key(k), &g);
            model.remove(&k);
        }
        // Hinted probes across everything seen so far.
        for _ in 0..800 {
            let k = rng.below(base + 400);
            let kb = key(k);
            let expect = model.get(&k).copied();
            let got = match cache.lookup(&kb) {
                mtcache::Lookup::Hit(h) => match tree.get_at_hint(&kb, &h, &g) {
                    HintedGet::Hit(v) => {
                        cache.note_hit();
                        v.copied()
                    }
                    HintedGet::Stale => {
                        cache.note_stale();
                        let (v, fresh) = tree.get_capturing_hint(&kb, &g);
                        cache.record(&kb, fresh);
                        v.copied()
                    }
                },
                mtcache::Lookup::Miss { .. } => {
                    let (v, fresh) = tree.get_capturing_hint(&kb, &g);
                    cache.record(&kb, fresh);
                    v.copied()
                }
            };
            assert_eq!(got, expect, "hinted read diverged on key {k}");
        }
    }

    let s = cache.stats();
    assert!(s.lookups > 0 && s.hits > 0, "{s:?}");
    assert!(
        s.stale > 0,
        "structural churn must produce hint-validation failures: {s:?}"
    );
    // The split/remove churn also recycles nodes; stale counts prove the
    // generation/version protocol detected it rather than serving from
    // dead nodes (any wrong answer would have tripped the model check).
}
