//! Concurrent-writer equivalence: hinted gets are linearizably equal to
//! plain gets while writer threads insert/update/remove (forcing splits
//! and hint invalidations).
//!
//! Deterministic property-style tests (seeded rounds, no external
//! proptest dependency — the container is offline):
//!
//! * **Freshness** — no hinted read ever observes a value older than a
//!   completed `put`: writers publish a per-key floor *after* each put
//!   returns, and every hinted value must be ≥ the floor read *before*
//!   the lookup. This is exactly the acceptance property.
//! * **Reader monotonicity** — values are per-key monotone, so a hinted
//!   read may never go backwards relative to anything this reader saw.
//! * **Quiesced equivalence** — once writers stop, every hinted read
//!   equals a plain `get` exactly.
//! * **Fallback exercise** — validation-failure (stale) counts are
//!   nonzero, proving the splits/removes actually drove the fallback
//!   path (see also `stress.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use masstree::hint::HintedGet;
use masstree::Masstree;
use mtcache::{CacheConfig, HintCache};
use mtworkload::Rng64;

const KEYS: u64 = 512;
/// Values are `seq * KEYS + key`, so they are monotone per key and the
/// key is recoverable for checking.
fn encode(key: u64, seq: u64) -> u64 {
    seq * KEYS + key
}

fn key_bytes(k: u64) -> Vec<u8> {
    // Mixed lengths: some keys get suffixes/layers.
    if k.is_multiple_of(3) {
        format!("equivalence-long-prefix-{k:06}").into_bytes()
    } else {
        format!("eq{k:04}").into_bytes()
    }
}

#[test]
fn hinted_gets_are_linearizable_under_concurrent_writers() {
    for seed in 0..3u64 {
        run_round(seed);
    }
}

fn run_round(seed: u64) {
    let tree: Arc<Masstree<u64>> = Arc::new(Masstree::new());
    // floor[k] = highest seq whose put has COMPLETED (store is after the
    // put returns, so the floor is always a completed-put lower bound).
    // A remove parks the floor at REMOVED; the writer that removes is
    // the only writer of that key (keys are partitioned), so floors are
    // exact per-key timelines.
    let floors: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    const NONE_YET: u64 = 0;
    let stop = Arc::new(AtomicBool::new(false));

    // Seed half the key space so readers start with hits.
    {
        let g = masstree::pin();
        for k in 0..KEYS / 2 {
            tree.put(&key_bytes(k), encode(k, 1), &g);
            floors[k as usize].store(1, Ordering::Release);
        }
    }

    // 3 writers over disjoint key thirds: insert/update (rising seq) and
    // periodic remove+reinsert (forcing freed slots, node deletions and
    // splits as the population swings).
    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let tree = Arc::clone(&tree);
            let floors = Arc::clone(&floors);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = Rng64::new(seed * 31 + w);
                let mut seq = 2u64;
                while !stop.load(Ordering::Acquire) {
                    let k = (rng.below(KEYS / 3)) * 3 + w; // disjoint thirds
                    let k = k % KEYS;
                    let g = masstree::pin();
                    if rng.below(8) == 0 {
                        // Floor drops BEFORE the remove applies: an
                        // absent read can then always be justified by a
                        // floor that already dropped (or is about to —
                        // the re-check below synchronizes through the
                        // tree's release/acquire on the permutation).
                        floors[k as usize].store(NONE_YET, Ordering::Release);
                        tree.remove(&key_bytes(k), &g);
                    } else {
                        tree.put(&key_bytes(k), encode(k, seq), &g);
                        floors[k as usize].store(seq, Ordering::Release);
                    }
                    seq += 1;
                }
            })
        })
        .collect();

    // Hinted reader with a real cache (admit on first sight so hints
    // are exercised immediately).
    let cfg = CacheConfig {
        capacity: 1024,
        admit_threshold: 1,
        counters: 2048,
        age_every: 1 << 20,
        adaptive_bypass: false,
        cache_writes: true,
    };
    let mut cache: HintCache<u64> = HintCache::new(&cfg);
    let mut rng = Rng64::new(seed ^ 0xdead);
    let mut last_seen: Vec<u64> = vec![0; KEYS as usize];
    for _ in 0..60_000 {
        let k = rng.below(KEYS);
        let kb = key_bytes(k);
        let floor_before = floors[k as usize].load(Ordering::Acquire);
        let g = masstree::pin();
        let got = match cache.lookup(&kb) {
            mtcache::Lookup::Hit(h) => match tree.get_at_hint(&kb, &h, &g) {
                HintedGet::Hit(v) => {
                    cache.note_hit();
                    v.copied()
                }
                HintedGet::Stale => {
                    cache.note_stale();
                    let (v, fresh) = tree.get_capturing_hint(&kb, &g);
                    cache.record(&kb, fresh);
                    v.copied()
                }
            },
            mtcache::Lookup::Miss { .. } => {
                let (v, fresh) = tree.get_capturing_hint(&kb, &g);
                cache.record(&kb, fresh);
                v.copied()
            }
        };
        if let Some(v) = got {
            let (vk, vseq) = (v % KEYS, v / KEYS);
            assert_eq!(vk, k, "hinted read returned another key's value");
            // Freshness: never older than a put completed before the read.
            if floor_before != NONE_YET {
                assert!(
                    vseq >= floor_before,
                    "hinted read observed seq {vseq} older than completed put {floor_before} (key {k})"
                );
            }
            // Monotone per reader.
            assert!(
                vseq >= last_seen[k as usize],
                "hinted reads went backwards on key {k}: {vseq} < {}",
                last_seen[k as usize]
            );
            last_seen[k as usize] = vseq;
        } else {
            // Absent with floor_before = s means put(s) completed before
            // our read, so a remove must have raced in. The remove drops
            // the floor BEFORE touching the tree, and observing its tree
            // effect synchronizes (release/acquire via the permutation)
            // with that store — so re-reading the floor must show the
            // drop (or a later value from the same single writer).
            if floor_before != NONE_YET {
                let floor_now = floors[k as usize].load(Ordering::Acquire);
                assert!(
                    floor_now == NONE_YET || floor_now != floor_before,
                    "hinted read lost key {k} with no concurrent remove (floor {floor_before})"
                );
            }
        }
    }

    stop.store(true, Ordering::Release);
    for w in writers {
        w.join().unwrap();
    }

    // Quiesced equivalence: hinted == plain for the whole key space.
    let g = masstree::pin();
    for k in 0..KEYS {
        let kb = key_bytes(k);
        let plain = tree.get(&kb, &g).copied();
        let hinted = match cache.lookup(&kb) {
            mtcache::Lookup::Hit(h) => match tree.get_at_hint(&kb, &h, &g) {
                HintedGet::Hit(v) => v.copied(),
                HintedGet::Stale => tree.get(&kb, &g).copied(),
            },
            mtcache::Lookup::Miss { .. } => plain,
        };
        assert_eq!(hinted, plain, "post-quiesce divergence on key {k}");
    }

    let s = cache.stats();
    assert!(s.hits > 0, "hints never validated: {s:?}");
    assert!(
        s.stale > 0,
        "validation-failure path never exercised (no splits/removes?): {s:?}"
    );
}
