//! Concurrent hinted-WRITE equivalence: puts and removes routed through
//! validated anchors are linearizably equal to plain ones while other
//! writers force splits, node deletions, freed-slot reuse and layer
//! conversions underneath the cached anchors.
//!
//! Deterministic property-style rounds (seeded, no external proptest
//! dependency — the container is offline), in the style of
//! `equivalence.rs` but with the *writers* using the cache:
//!
//! * **Completed-put floors** — each writer publishes a per-key floor
//!   *after* its put returns; a reader asserts every observed value is
//!   at least the floor read *before* the lookup. A hinted write landing
//!   on a stale border node (one a descent would no longer reach) would
//!   strand its value outside the readers' view and violate the floor —
//!   so the floors passing proves no hinted write ever lands on a stale
//!   node.
//! * **Disjoint-key model** — writers own disjoint key thirds, so each
//!   can maintain its exact expected final state; after quiescing, the
//!   tree must equal the union of the three models (a lost or misplaced
//!   hinted write/remove would diverge).
//! * **Fallback exercise** — the write validation-failure counters
//!   (`write_stale`) are asserted nonzero: the churn really drove
//!   anchors stale and the fallback path really ran.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use masstree::Masstree;
use mtcache::{CacheConfig, CacheStats, HintCache, Lookup};
use mtworkload::Rng64;

const KEYS: u64 = 384;
const NONE_YET: u64 = 0;

/// Values encode `(key, seq)` so both are recoverable for checking.
fn encode(key: u64, seq: u64) -> u64 {
    seq * KEYS + key
}

fn key_bytes(k: u64) -> Vec<u8> {
    // Mixed lengths: slices collide within thirds, so inserts force
    // suffix → layer conversions; long shared prefixes force deep
    // layers whose anchors have nonzero offsets.
    match k % 3 {
        0 => format!("wrstress-shared-prefix-layers-{k:06}").into_bytes(),
        1 => format!("wr{k:04}").into_bytes(),
        _ => format!("wrstress-{k:05}").into_bytes(),
    }
}

#[test]
fn hinted_writes_are_linearizable_under_concurrent_writers() {
    for seed in 0..3u64 {
        run_round(seed);
    }
}

fn run_round(seed: u64) {
    let tree: Arc<Masstree<u64>> = Arc::new(Masstree::new());
    let floors: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    // Seed part of the key space so anchors exist from the start.
    {
        let g = masstree::pin();
        for k in 0..KEYS / 2 {
            tree.put(&key_bytes(k), encode(k, 1), &g);
            floors[k as usize].store(1, Ordering::Release);
        }
    }

    // 3 hinted writers over disjoint key thirds. Each owns a private
    // HintCache (per-worker, like a store session) and routes every put
    // and remove through `put_at_hint` / `remove_at_hint` whenever a
    // cached anchor exists, falling back to the capturing descent on
    // AnchorStale — exactly the Session write path.
    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let tree = Arc::clone(&tree);
            let floors = Arc::clone(&floors);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let cfg = CacheConfig {
                    capacity: 512,
                    admit_threshold: 1,
                    counters: 1024,
                    age_every: 1 << 20,
                    adaptive_bypass: false,
                    cache_writes: true,
                };
                let mut cache: HintCache<u64> = HintCache::new(&cfg);
                // Model starts from the (pre-spawn) seeded state of this
                // writer's third; only this writer mutates these keys.
                let mut model: HashMap<u64, u64> = (w..KEYS)
                    .step_by(3)
                    .filter(|&k| k < KEYS / 2)
                    .map(|k| (k, encode(k, 1)))
                    .collect();
                let mut rng = Rng64::new(seed * 131 + w);
                let mut seq = 2u64;
                let mut ops = 0u64;
                while !stop.load(Ordering::Acquire) {
                    ops += 1;
                    if ops.is_multiple_of(512) {
                        // Foreign-session sweep: remove a contiguous
                        // window of this third WITHOUT invalidating the
                        // cache — exactly what another session's removes
                        // look like to this worker's table. Emptied
                        // nodes get deleted, so surviving anchors into
                        // them MUST fail validation on next use (the
                        // write_stale counter asserted below).
                        let base = rng.below(KEYS / 3);
                        let g = masstree::pin();
                        for j in 0..40u64 {
                            let k = (((base + j) % (KEYS / 3)) * 3 + w) % KEYS;
                            floors[k as usize].store(NONE_YET, Ordering::Release);
                            tree.remove(&key_bytes(k), &g);
                            model.remove(&k);
                        }
                        continue;
                    }
                    let k = ((rng.below(KEYS / 3)) * 3 + w) % KEYS;
                    let kb = key_bytes(k);
                    let g = masstree::pin();
                    if rng.below(8) == 0 {
                        // Hinted remove. The floor drops before the tree
                        // changes, as in the read-equivalence test.
                        floors[k as usize].store(NONE_YET, Ordering::Release);
                        let hinted = match cache.lookup_write(&kb) {
                            Lookup::Hit(h) => match tree.remove_at_hint(&kb, &h, |v| *v, &g) {
                                Ok(r) => {
                                    cache.note_write_hit();
                                    Some(r.map(|(_, v)| v))
                                }
                                Err(_) => {
                                    cache.note_write_stale();
                                    None
                                }
                            },
                            Lookup::Miss { .. } => None,
                        };
                        let removed = match hinted {
                            Some(r) => r,
                            None => tree.remove_with(&kb, |v| *v, &g).map(|(_, v)| v),
                        };
                        cache.invalidate(&kb);
                        // Only this writer touches k: the remove outcome
                        // must agree with the private model.
                        assert_eq!(
                            removed.is_some(),
                            model.remove(&k).is_some(),
                            "hinted remove diverged from model (key {k}, writer {w})"
                        );
                        if let Some(v) = removed {
                            let expect = model_check(v, k);
                            assert!(expect, "removed a foreign value {v} for key {k}");
                        }
                    } else {
                        let value = encode(k, seq);
                        model.insert(k, value);
                        let hinted_done = match cache.lookup_write(&kb) {
                            Lookup::Hit(h) => match tree.put_at_hint(&kb, &h, |_| value, &g) {
                                Ok((_prev, fresh)) => {
                                    cache.note_write_hit();
                                    if let Some(h) = fresh {
                                        cache.record(&kb, h);
                                    }
                                    true
                                }
                                Err(_) => {
                                    cache.note_write_stale();
                                    false
                                }
                            },
                            Lookup::Miss { admit } => {
                                let (_prev, fresh) = tree.put_with_capture(&kb, |_| value, &g);
                                if admit {
                                    if let Some(h) = fresh {
                                        cache.record(&kb, h);
                                    }
                                }
                                true
                            }
                        };
                        if !hinted_done {
                            let (_prev, fresh) = tree.put_with_capture(&kb, |_| value, &g);
                            if let Some(h) = fresh {
                                cache.record(&kb, h);
                            }
                        }
                        // Floor publishes only after the put completed.
                        floors[k as usize].store(seq, Ordering::Release);
                    }
                    seq += 1;
                }
                // Post-quiesce: the tree must equal this writer's model
                // exactly over its third — a lost or misplaced hinted
                // write/remove diverges here.
                let g = masstree::pin();
                for k in (w..KEYS).step_by(3) {
                    let live = tree.get(&key_bytes(k), &g).copied();
                    assert_eq!(
                        live,
                        model.get(&k).copied(),
                        "post-quiesce divergence on key {k} (writer {w})"
                    );
                }
                (cache.stats(), ops)
            })
        })
        .collect();

    // Reader: plain gets against the completed-put floors. A hinted
    // write that landed on a stale node would be invisible here and
    // trip the floor assertion.
    let mut rng = Rng64::new(seed ^ 0xbeef);
    for _ in 0..40_000 {
        let k = rng.below(KEYS);
        let kb = key_bytes(k);
        let floor_before = floors[k as usize].load(Ordering::Acquire);
        let g = masstree::pin();
        let got = tree.get(&kb, &g).copied();
        if let Some(v) = got {
            let (vk, vseq) = (v % KEYS, v / KEYS);
            assert_eq!(vk, k, "read another key's value");
            if floor_before != NONE_YET {
                assert!(
                    vseq >= floor_before,
                    "observed seq {vseq} older than completed hinted put {floor_before} (key {k})"
                );
            }
        } else if floor_before != NONE_YET {
            // Absence must be justified by a concurrent remove: the
            // remove drops the floor before touching the tree.
            let floor_now = floors[k as usize].load(Ordering::Acquire);
            assert!(
                floor_now == NONE_YET || floor_now != floor_before,
                "lost key {k}: completed hinted put {floor_before} invisible with no remove"
            );
        }
    }

    stop.store(true, Ordering::Release);
    let mut total = CacheStats::default();
    let mut total_ops = 0u64;
    for wr in writers {
        let (s, ops) = wr.join().unwrap();
        total.write_lookups += s.write_lookups;
        total.write_hits += s.write_hits;
        total.write_stale += s.write_stale;
        total_ops += ops;
    }
    assert!(total_ops > 1_000, "writers made progress: {total_ops}");
    assert!(
        total.write_hits > 0,
        "anchored writes never validated: {total:?}"
    );
    assert!(
        total.write_stale > 0,
        "write validation-failure path never exercised (no churn?): {total:?}"
    );
}

/// Value sanity: encodes this key.
fn model_check(v: u64, k: u64) -> bool {
    v % KEYS == k
}
