//! Offline stand-in for the `crossbeam` crate, providing the one module
//! this workspace uses: `crossbeam::epoch`.
//!
//! The container that builds this repository has no access to crates.io,
//! so the epoch-based-reclamation dependency is implemented here, from
//! scratch, against the same API surface (`pin()`, `Guard`,
//! `Guard::defer_unchecked`, `Guard::flush`). The algorithm is the classic
//! three-epoch scheme the paper's read-copy-update reclamation (§4.6.1)
//! assumes:
//!
//! * A global epoch counter advances only when every *pinned* thread has
//!   observed the current value.
//! * Retired objects are tagged with the epoch at retirement and destroyed
//!   once the global epoch is two ahead — at that point no thread can still
//!   hold a reference obtained before the object was unlinked.
//!
//! Orderings are deliberately conservative (`SeqCst` on the pin/unpin
//! fast path): this trades a few nanoseconds per operation for an easy
//! safety argument, which is the right trade for a reimplementation that
//! every other crate's memory safety rides on.

pub mod epoch {
    use std::cell::{Cell, RefCell};
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Words of inline storage in a [`Deferred`]. Every retire closure in
    /// this workspace captures a single raw pointer, so three words is
    /// already generous; anything larger falls back to a box.
    const DEFERRED_DATA_WORDS: usize = 3;

    /// A deferred destruction: an unboxed `(fn, data)` pair. The closure
    /// is stored **inline** when it fits (every update's retire closure
    /// captures one pointer, so the old `Box<dyn FnOnce()>` added a heap
    /// allocation to every put — on the hot path the tree otherwise keeps
    /// allocation-free); oversized closures fall back to a box, keeping
    /// the trampoline shape uniform.
    struct Deferred {
        /// Monomorphized trampoline: reads the closure out of `data` (or
        /// out of the boxed fallback whose pointer is in `data`) and runs
        /// it exactly once.
        call: unsafe fn(*mut u8),
        data: MaybeUninit<[usize; DEFERRED_DATA_WORDS]>,
    }

    impl Deferred {
        fn new<F: FnOnce() + 'static>(f: F) -> Deferred {
            unsafe fn call_inline<F: FnOnce()>(raw: *mut u8) {
                // SAFETY: `raw` points at a valid `F` written by `new`,
                // read (and thereby consumed) exactly once.
                let f: F = unsafe { std::ptr::read(raw.cast::<F>()) };
                f();
            }
            unsafe fn call_boxed<F: FnOnce()>(raw: *mut u8) {
                // SAFETY: `raw` holds a `*mut F` from `Box::into_raw`,
                // written by `new` and consumed exactly once.
                let b: Box<F> = unsafe { Box::from_raw(std::ptr::read(raw.cast::<*mut F>())) };
                (*b)();
            }
            let mut data = MaybeUninit::<[usize; DEFERRED_DATA_WORDS]>::uninit();
            if size_of::<F>() <= size_of::<[usize; DEFERRED_DATA_WORDS]>()
                && align_of::<F>() <= align_of::<[usize; DEFERRED_DATA_WORDS]>()
            {
                // SAFETY: size and alignment were just checked; the value
                // is moved into the inline storage and owned by `self`
                // until the trampoline reads it back out.
                unsafe { std::ptr::write(data.as_mut_ptr().cast::<F>(), f) };
                Deferred {
                    call: call_inline::<F>,
                    data,
                }
            } else {
                let raw = Box::into_raw(Box::new(f));
                // SAFETY: a thin pointer always fits the inline words.
                unsafe { std::ptr::write(data.as_mut_ptr().cast::<*mut F>(), raw) };
                Deferred {
                    call: call_boxed::<F>,
                    data,
                }
            }
        }

        /// Runs the deferred destruction (consuming `self`).
        fn call(mut self) {
            // SAFETY: `data` holds whatever the matching trampoline
            // expects; `self` is consumed so it runs exactly once.
            unsafe { (self.call)(self.data.as_mut_ptr().cast::<u8>()) }
        }
    }

    // SAFETY: deferred closures capture only raw pointers (as integers) to
    // heap objects that are unreachable from shared structures; running
    // them from any single thread exactly once is the contract of
    // `defer_unchecked`, which is `unsafe` for precisely this reason.
    unsafe impl Send for Deferred {}

    /// Retired objects grouped by retirement epoch. Keeping one bucket per
    /// epoch makes the "nothing is reclaimable yet" case O(1) instead of a
    /// scan — important when a long-pinned thread holds the epoch back
    /// while writers keep retiring.
    #[derive(Default)]
    struct Bag {
        buckets: Vec<(u64, Vec<Deferred>)>,
    }

    impl Bag {
        fn push(&mut self, epoch: u64, d: Deferred) -> usize {
            match self.buckets.iter_mut().find(|(e, _)| *e == epoch) {
                Some((_, v)) => {
                    v.push(d);
                    v.len()
                }
                None => {
                    self.buckets.push((epoch, vec![d]));
                    1
                }
            }
        }

        /// Moves every bucket at least two epochs old into `ready`.
        fn drain_eligible(&mut self, global: u64, ready: &mut Vec<Deferred>) {
            let mut i = 0;
            while i < self.buckets.len() {
                if self.buckets[i].0 + 2 <= global {
                    let (_, v) = self.buckets.swap_remove(i);
                    ready.extend(v);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Per-thread participant record. Leaked into a global list on first
    /// pin; marked `dead` (and recycled by later threads) on thread exit.
    struct Participant {
        /// `(epoch << 1) | pinned`.
        state: AtomicU64,
        /// Retired objects awaiting destruction. Owner-thread writes are
        /// the common case; any thread may drain eligible entries during a
        /// collection pass, hence the mutex (uncontended in steady state).
        garbage: Mutex<Bag>,
        /// Record is unowned and may be claimed by a new thread.
        dead: AtomicBool,
        next: AtomicPtr<Participant>,
    }

    /// Head of the global participant list.
    static PARTICIPANTS: AtomicPtr<Participant> = AtomicPtr::new(std::ptr::null_mut());
    /// The global epoch.
    static EPOCH: AtomicU64 = AtomicU64::new(2);

    const PINNED: u64 = 1;

    /// How many local retirements before an off-cadence collection.
    const COLLECT_THRESHOLD: usize = 128;
    /// Collection cadence in pins.
    const PINS_PER_COLLECT: u64 = 16;

    thread_local! {
        static LOCAL: RefCell<Local> = RefCell::new(Local::register());
        static GUARD_DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    struct Local {
        record: *const Participant,
        pins: u64,
    }

    impl Local {
        /// Claims a dead participant record or links a fresh one.
        fn register() -> Local {
            let mut p = PARTICIPANTS.load(Ordering::Acquire);
            while !p.is_null() {
                // SAFETY: records are leaked, never freed, so `p` is live.
                let r = unsafe { &*p };
                if r.dead.load(Ordering::Acquire)
                    && r.dead
                        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    return Local { record: p, pins: 0 };
                }
                p = r.next.load(Ordering::Acquire);
            }
            let rec = Box::into_raw(Box::new(Participant {
                state: AtomicU64::new(0),
                garbage: Mutex::new(Bag::default()),
                dead: AtomicBool::new(false),
                next: AtomicPtr::new(std::ptr::null_mut()),
            }));
            loop {
                let head = PARTICIPANTS.load(Ordering::Acquire);
                // SAFETY: `rec` is private until the CAS below publishes it.
                unsafe { (*rec).next.store(head, Ordering::Release) };
                if PARTICIPANTS
                    .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Local {
                        record: rec,
                        pins: 0,
                    };
                }
            }
        }
    }

    impl Drop for Local {
        fn drop(&mut self) {
            // The thread is exiting: release the record for reuse. Its
            // remaining garbage stays queued and is drained by whichever
            // thread runs the next collection pass.
            // SAFETY: records are never freed.
            let r = unsafe { &*self.record };
            debug_assert_eq!(r.state.load(Ordering::Relaxed) & PINNED, 0);
            r.dead.store(true, Ordering::Release);
        }
    }

    /// Attempts to advance the global epoch: succeeds only if every pinned
    /// participant has observed the current epoch.
    fn try_advance() -> u64 {
        let global = EPOCH.load(Ordering::SeqCst);
        let mut p = PARTICIPANTS.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: records are never freed.
            let r = unsafe { &*p };
            let s = r.state.load(Ordering::SeqCst);
            if s & PINNED != 0 && (s >> 1) != global {
                return global;
            }
            p = r.next.load(Ordering::Acquire);
        }
        // A failed CAS means someone else advanced; either way the epoch
        // is now at least `global`.
        let _ = EPOCH.compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst);
        EPOCH.load(Ordering::SeqCst)
    }

    /// Destroys every retired object (from any participant, live or dead)
    /// whose epoch is at least two behind the global epoch.
    fn collect() {
        let global = EPOCH.load(Ordering::SeqCst);
        let mut ready: Vec<Deferred> = Vec::new();
        let mut p = PARTICIPANTS.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: records are never freed.
            let r = unsafe { &*p };
            if let Ok(mut bag) = r.garbage.try_lock() {
                bag.drain_eligible(global, &mut ready);
            }
            p = r.next.load(Ordering::Acquire);
        }
        for d in ready {
            d.call();
        }
    }

    /// A pinned-epoch guard. While any guard exists on a thread, objects
    /// reachable when the pin began stay allocated.
    pub struct Guard {
        record: *const Participant,
        // Guards are thread-bound: unpinning must happen on the pinning
        // thread.
        _not_send: PhantomData<*mut ()>,
    }

    /// Pins the current thread's epoch. Reentrant: nested pins share the
    /// outermost pin's epoch.
    pub fn pin() -> Guard {
        let (record, run_collect) = LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let r = l.record;
            let depth = GUARD_DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            });
            let mut run_collect = false;
            if depth == 0 {
                // SAFETY: records are never freed.
                let rec = unsafe { &*r };
                // Publish "pinned at the current epoch". The SeqCst store
                // orders the pin before any subsequent shared reads, and
                // re-reading EPOCH afterwards closes the race where the
                // epoch advanced between the load and the store.
                loop {
                    let e = EPOCH.load(Ordering::SeqCst);
                    rec.state.store((e << 1) | PINNED, Ordering::SeqCst);
                    if EPOCH.load(Ordering::SeqCst) == e {
                        break;
                    }
                }
                l.pins = l.pins.wrapping_add(1);
                run_collect = l.pins % PINS_PER_COLLECT == 0;
            }
            (r, run_collect)
        });
        // Collect outside the thread-local borrow: a deferred destructor
        // is then free to pin (reentrantly) without poisoning the cell.
        if run_collect {
            try_advance();
            collect();
        }
        Guard {
            record,
            _not_send: PhantomData,
        }
    }

    impl Guard {
        /// Schedules `f` to run after every thread pinned at the current
        /// epoch has unpinned.
        ///
        /// # Safety
        ///
        /// The closure must be safe to call exactly once, from any thread,
        /// at any later time — in practice: it frees heap objects that are
        /// already unreachable from shared structures.
        pub unsafe fn defer_unchecked<F, R>(&self, f: F)
        where
            F: FnOnce() -> R + 'static,
        {
            let epoch = EPOCH.load(Ordering::SeqCst);
            // SAFETY: records are never freed.
            let r = unsafe { &*self.record };
            let mut bag = r.garbage.lock().unwrap();
            let bucket_len = bag.push(
                epoch,
                Deferred::new(move || {
                    f();
                }),
            );
            // Amortize: attempt reclamation once per threshold of new
            // garbage, not on every retirement.
            if bucket_len % COLLECT_THRESHOLD == 0 {
                drop(bag);
                try_advance();
                collect();
            }
        }

        /// Forces an epoch-advance attempt and a collection pass. Used by
        /// tests and shutdown paths to drain deferred destructions.
        pub fn flush(&self) {
            try_advance();
            collect();
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            let depth = GUARD_DEPTH.with(|d| {
                let v = d.get() - 1;
                d.set(v);
                v
            });
            if depth == 0 {
                // SAFETY: records are never freed.
                let r = unsafe { &*self.record };
                let s = r.state.load(Ordering::Relaxed);
                r.state.store(s & !PINNED, Ordering::SeqCst);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        static DROPS: AtomicUsize = AtomicUsize::new(0);

        #[test]
        fn deferred_runs_after_unpin() {
            let before = DROPS.load(Ordering::SeqCst);
            {
                let g = pin();
                // SAFETY: the closure only bumps a counter.
                unsafe { g.defer_unchecked(|| DROPS.fetch_add(1, Ordering::SeqCst)) };
            }
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while DROPS.load(Ordering::SeqCst) < before + 1 && std::time::Instant::now() < deadline
            {
                pin().flush();
            }
            assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
        }

        #[test]
        fn pinned_reader_blocks_reclamation() {
            let freed = Arc::new(AtomicUsize::new(0));
            let reader = pin();
            {
                let writer = pin();
                let freed2 = Arc::clone(&freed);
                // SAFETY: the closure only bumps a counter.
                unsafe { writer.defer_unchecked(move || freed2.fetch_add(1, Ordering::SeqCst)) };
            }
            // Drive collection hard from another thread; the pinned reader
            // must hold the epoch back.
            let h = std::thread::spawn(|| {
                for _ in 0..64 {
                    pin().flush();
                }
            });
            h.join().unwrap();
            assert_eq!(freed.load(Ordering::SeqCst), 0, "reader still pinned");
            drop(reader);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while freed.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
                pin().flush();
            }
            assert_eq!(freed.load(Ordering::SeqCst), 1);
        }

        #[test]
        fn reentrant_pin_shares_epoch() {
            let a = pin();
            let b = pin();
            drop(a);
            drop(b);
            // No panic / no double-unpin: depth bookkeeping is correct.
        }

        #[test]
        fn dead_thread_garbage_is_collected() {
            let freed = Arc::new(AtomicUsize::new(0));
            let freed2 = Arc::clone(&freed);
            std::thread::spawn(move || {
                let g = pin();
                // SAFETY: the closure only bumps a counter.
                unsafe { g.defer_unchecked(move || freed2.fetch_add(1, Ordering::SeqCst)) };
            })
            .join()
            .unwrap();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while freed.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
                pin().flush();
            }
            assert_eq!(freed.load(Ordering::SeqCst), 1);
        }
    }
}
