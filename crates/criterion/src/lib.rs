//! Offline stand-in for the `criterion` crate: a small statistical
//! micro-benchmark harness exposing the API subset this workspace's
//! benches use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Measurement model: each benchmark closure receives a [`Bencher`];
//! `Bencher::iter` auto-calibrates the iteration count until one sample
//! takes ≥ `SAMPLE_TARGET`, then takes `SAMPLES` samples and reports the
//! median ns/iteration (median is robust to scheduler noise, which
//! matters inside shared CI containers). Results are printed and recorded
//! on the `Criterion` value so wrapper binaries can export JSON.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Target wall time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Samples per benchmark.
const SAMPLES: usize = 11;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub id: String,
    pub ns_per_iter: f64,
    pub iters_per_sample: u64,
}

impl Measurement {
    pub fn ops_per_sec(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            0.0
        } else {
            1e9 / self.ns_per_iter
        }
    }
}

/// Per-benchmark driver handed to the closure.
pub struct Bencher {
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, auto-calibrating the per-sample iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: double until a sample crosses the target.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= SAMPLE_TARGET || iters >= 1 << 30 {
                break;
            }
            // Jump close to the target in one step once we have a signal.
            let grow = if dt < SAMPLE_TARGET / 16 { 8 } else { 2 };
            iters = iters.saturating_mul(grow);
        }
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = t.elapsed().as_secs_f64() * 1e9 / iters as f64;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = samples[SAMPLES / 2];
        self.iters = iters;
    }
}

/// Parameterized benchmark name (mirrors criterion's `BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: std::fmt::Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new<D: std::fmt::Display>(name: &str, p: D) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// The top-level harness.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) -> &Measurement {
        let mut b = Bencher {
            result_ns: f64::NAN,
            iters: 0,
        };
        f(&mut b);
        let m = Measurement {
            id,
            ns_per_iter: b.result_ns,
            iters_per_sample: b.iters,
        };
        println!(
            "bench {:<48} {:>12.1} ns/iter {:>14.0} ops/s",
            m.id,
            m.ns_per_iter,
            m.ops_per_sec()
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), &mut f);
        self
    }

    /// Like [`Criterion::bench_function`] but hands back the measurement —
    /// used by benches that export machine-readable results.
    pub fn bench_measured<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> Measurement {
        self.run_one(id.to_string(), &mut f).clone()
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    /// Every measurement taken so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(full, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.c.run_one(full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group: a function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let m = c.bench_measured("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.ops_per_sec() > 0.0);
        assert_eq!(c.measurements().len(), 1);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
                b.iter(|| n + 1)
            });
            g.finish();
        }
        assert_eq!(c.measurements()[0].id, "grp/7");
    }
}
