//! An interactive client for `kv_server`: issues gets, puts, removes and
//! scans over the batched binary protocol.
//!
//! ```sh
//! cargo run --release --example kv_client -- 127.0.0.1:7700 put greeting hello
//! cargo run --release --example kv_client -- 127.0.0.1:7700 get greeting
//! cargo run --release --example kv_client -- 127.0.0.1:7700 scan "" 10
//! cargo run --release --example kv_client -- 127.0.0.1:7700 bench 100000
//! cargo run --release --example kv_client -- 127.0.0.1:7700 stats --histograms
//! cargo run --release --example kv_client -- 127.0.0.1:7700 stats --watch
//! ```
//!
//! `stats --histograms` renders the server's per-op-kind latency
//! distributions (count, mean, p50/p90/p99/p999) from one `StatsEx`
//! snapshot; `stats --watch` re-snapshots every second and renders the
//! **delta** — live rates and latencies, not lifetime aggregates.

use mtkv::mtobs::{self, Kind};
use mtnet::{Client, Request, Response};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7700".into());
    let cmd = args.get(2).map(String::as_str).unwrap_or("help");
    let mut client = Client::connect(&addr).expect("connect");

    match cmd {
        "get" => {
            let key = args[3].as_bytes();
            match client.get(key, None).unwrap() {
                None => println!("(not found)"),
                Some(cols) => {
                    for (i, c) in cols.iter().enumerate() {
                        println!("col{}: {}", i, String::from_utf8_lossy(c));
                    }
                }
            }
        }
        "put" => {
            let key = args[3].as_bytes();
            let val = args[4].as_bytes();
            let version = client.put(key, vec![(0, val.to_vec())]).unwrap();
            println!("ok (version {version})");
        }
        "remove" => {
            let existed = client.remove(args[3].as_bytes()).unwrap();
            println!("{}", if existed { "removed" } else { "(not found)" });
        }
        "scan" => {
            let start = args[3].as_bytes();
            let n: u32 = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(10);
            for (k, cols) in client.scan(start, n, Some(vec![0])).unwrap() {
                println!(
                    "{} => {}",
                    String::from_utf8_lossy(&k),
                    String::from_utf8_lossy(&cols[0])
                );
            }
        }
        "stats" if args.get(3).map(String::as_str) == Some("--histograms") => {
            let snap = client.stats_ex().unwrap().snap;
            print_histograms(&snap);
        }
        "stats" if args.get(3).map(String::as_str) == Some("--watch") => {
            // 1 Hz delta view: each line set shows only the interval's
            // traffic, so latencies track what the server is doing now.
            let mut prev = client.stats_ex().unwrap().snap;
            loop {
                std::thread::sleep(std::time::Duration::from_secs(1));
                let snap = client.stats_ex().unwrap().snap;
                let d = snap.delta(&prev);
                println!(
                    "-- {} ops/s, {} slow, {} traced --",
                    d.foreground_ops()
                        + d.kind(Kind::MultiGet).count()
                        + d.kind(Kind::MultiPut).count(),
                    d.slow_ops,
                    d.traces_sampled
                );
                print_histograms(&d);
                prev = snap;
            }
        }
        "stats" => {
            // One line per field so scripts can grep a single value
            // (CI polls `repl_lag_bytes` to wait for follower catch-up).
            let s = client.stats().unwrap();
            println!("checkpoints: {}", s.checkpoints);
            println!("log_bytes: {}", s.log_bytes);
            println!("log_segments: {}", s.log_segments);
            println!("repl_role: {}", s.repl_role);
            println!("repl_followers: {}", s.repl_followers);
            println!("repl_lag_bytes: {}", s.repl_lag_bytes);
            println!("repl_lag_ts_us: {}", s.repl_lag_ts_us);
            println!("indirect_reads: {}", s.indirect_reads);
            println!("value_cache_hits: {}", s.value_cache_hits);
            println!("readahead_batches: {}", s.readahead_batches);
            println!("coalesced_bytes: {}", s.coalesced_bytes);
            println!("shared_misses: {}", s.shared_misses);
            println!("live_segment_bytes: {}", s.live_segment_bytes);
            println!(
                "worker_conns: {}",
                s.worker_conns
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        "bench" => {
            // Pipelined batched puts + gets: the paper's §7 client style.
            let n: u64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(100_000);
            let t0 = std::time::Instant::now();
            for i in 0..n {
                client.queue(&Request::Put {
                    key: format!("bench{i:010}").into_bytes(),
                    cols: vec![(0, i.to_le_bytes().to_vec())],
                });
                if i % 256 == 255 {
                    client.execute_batch().unwrap();
                }
            }
            client.execute_batch().unwrap();
            let put_t = t0.elapsed().as_secs_f64();
            let t0 = std::time::Instant::now();
            let mut hits = 0u64;
            for i in 0..n {
                client.queue(&Request::Get {
                    key: format!("bench{i:010}").into_bytes(),
                    cols: Some(vec![0]),
                });
                if i % 256 == 255 {
                    for r in client.execute_batch().unwrap() {
                        if matches!(r, Response::Value(Some(_))) {
                            hits += 1;
                        }
                    }
                }
            }
            for r in client.execute_batch().unwrap() {
                if matches!(r, Response::Value(Some(_))) {
                    hits += 1;
                }
            }
            let get_t = t0.elapsed().as_secs_f64();
            println!(
                "puts: {:.2} Mreq/s   gets: {:.2} Mreq/s   ({hits}/{n} hits)",
                n as f64 / put_t / 1e6,
                n as f64 / get_t / 1e6
            );
        }
        _ => {
            eprintln!(
                "usage: kv_client <addr> get|put|remove|scan|stats [--histograms|--watch]|bench ..."
            );
        }
    }
}

/// Renders every populated kind's latency distribution as one table
/// row; kinds with no recorded ops are skipped.
fn print_histograms(snap: &mtobs::Snapshot) {
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "op", "count", "mean", "p50", "p90", "p99", "p999"
    );
    for k in Kind::ALL {
        let h = snap.kind(k);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:<14} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
            k.name(),
            h.count(),
            mtobs::fmt_ns(h.mean()),
            mtobs::fmt_ns(h.percentile(0.5)),
            mtobs::fmt_ns(h.percentile(0.9)),
            mtobs::fmt_ns(h.percentile(0.99)),
            mtobs::fmt_ns(h.percentile(0.999)),
        );
    }
}
