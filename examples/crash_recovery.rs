//! Demonstrates §5 end to end: write through logged sessions, checkpoint,
//! keep writing, "crash" (drop everything without clean shutdown beyond
//! what the OS guarantees for the forced prefix), then recover and verify
//! the state: checkpoint + log replay in value-version order, with the
//! prefix-consistency cutoff.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::sync::Arc;

use mtkv::{recover, write_checkpoint, Store};

fn main() {
    let dir = std::env::temp_dir().join(format!("crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Phase 1: a running server with several workers.
    {
        let store = Store::persistent(&dir).unwrap();
        let sessions: Vec<_> = (0..4).map(|_| store.session().unwrap()).collect();
        std::thread::scope(|s| {
            for (t, session) in sessions.iter().enumerate() {
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        let key = format!("w{t}/key{i:06}");
                        session.put(
                            key.as_bytes(),
                            &[(0, &i.to_le_bytes()[..]), (1, t.to_string().as_bytes())],
                        );
                    }
                });
            }
        });
        println!("wrote 40000 keys across 4 logged sessions");

        // Mid-life checkpoint (runs concurrently with traffic in real
        // deployments; here traffic just finished).
        let meta = write_checkpoint(&store, &dir, 4).unwrap();
        println!("checkpoint: {} keys at ts {}", meta.keys, meta.start_ts);

        // More writes after the checkpoint — these live only in the logs.
        let s0 = &sessions[0];
        for i in 0..5_000u64 {
            s0.put(
                format!("post/key{i:06}").as_bytes(),
                &[(0, &i.to_le_bytes()[..])],
            );
        }
        // Overwrite some checkpointed values: replay must prefer the
        // higher-version log records.
        for i in 0..100u64 {
            s0.put(format!("w0/key{i:06}").as_bytes(), &[(0, b"overwritten")]);
        }
        s0.remove(b"w1/key000000");
        for s in &sessions {
            assert!(s.force_log());
        }
        println!("5100 post-checkpoint updates + 1 remove logged");
        // "Crash": drop the store without writing another checkpoint.
        drop(sessions);
        drop(store);
    }

    // Phase 2: recovery.
    let (store, report) = recover(&dir, &dir).unwrap();
    println!(
        "recovered: checkpoint={} ({} keys), replayed {} records, cutoff {}",
        report.used_checkpoint, report.checkpoint_keys, report.replayed, report.cutoff
    );
    let session = Arc::clone(&store).session().unwrap();
    // Checkpointed data:
    assert_eq!(
        session.get(b"w3/key009999", Some(&[0])).unwrap()[0],
        9999u64.to_le_bytes()
    );
    // Post-checkpoint data (log replay):
    assert_eq!(
        session.get(b"post/key004999", Some(&[0])).unwrap()[0],
        4999u64.to_le_bytes()
    );
    // Overwrites win over checkpointed versions:
    assert_eq!(
        session.get(b"w0/key000050", Some(&[0])).unwrap()[0],
        b"overwritten"
    );
    // Second column survived the column-0 overwrite (copy-on-write §4.7):
    assert_eq!(session.get(b"w0/key000050", Some(&[1])).unwrap()[0], b"0");
    // The remove replayed (tombstone, then swept):
    assert_eq!(session.get(b"w1/key000000", None), None);
    let guard = masstree::pin();
    println!(
        "total keys after recovery: {}",
        store.tree().count_keys(&guard)
    );
    drop(guard);

    let _ = std::fs::remove_dir_all(&dir);
    println!("crash_recovery OK");
}
