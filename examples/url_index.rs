//! The paper's motivating workload (§1): a Bigtable-style web index
//! keyed by *permuted* URLs like `edu.harvard.seas.www/news-events`.
//! Permutation groups a domain's pages together, enabling range queries
//! over sites — but gives keys long shared prefixes, the case Masstree's
//! trie-of-B+-trees design exists for.
//!
//! ```sh
//! cargo run --release --example url_index
//! ```

use std::time::Instant;

use masstree::Masstree;

/// Permutes `www.seas.harvard.edu/news-events` into
/// `edu.harvard.seas.www/news-events`.
fn permute_url(url: &str) -> String {
    let (host, path) = url.split_once('/').unwrap_or((url, ""));
    let mut parts: Vec<&str> = host.split('.').collect();
    parts.reverse();
    if path.is_empty() {
        parts.join(".")
    } else {
        format!("{}/{}", parts.join("."), path)
    }
}

#[derive(Debug)]
struct PageInfo {
    #[allow(dead_code)]
    fetch_time: u64,
    size: usize,
}

fn main() {
    let tree: Masstree<PageInfo> = Masstree::new();
    let guard = masstree::pin();

    // Index a synthetic crawl: a handful of sites, many pages each.
    let sites = [
        "www.seas.harvard.edu",
        "www.eecs.mit.edu",
        "news.mit.edu",
        "www.csail.mit.edu",
        "docs.rs",
    ];
    let mut total = 0usize;
    for (s, site) in sites.iter().enumerate() {
        for p in 0..2_000 {
            let url = format!("{site}/page-{p:05}");
            let key = permute_url(&url);
            tree.put(
                key.as_bytes(),
                PageInfo {
                    fetch_time: (s * 10_000 + p) as u64,
                    size: 1000 + p,
                },
                &guard,
            );
            total += 1;
        }
    }
    println!("indexed {total} pages across {} sites", sites.len());

    // Point lookup.
    let key = permute_url("www.csail.mit.edu/page-00042");
    let info = tree.get(key.as_bytes(), &guard).expect("indexed");
    println!("{key} -> {info:?}");

    // Range query: every MIT page, across subdomains, in one ordered
    // scan — permuted keys make "edu.mit." a shared prefix.
    let t0 = Instant::now();
    let mut mit_pages = 0;
    tree.scan(b"edu.mit.", &guard, |k, _| {
        if !k.starts_with(b"edu.mit.") {
            return false;
        }
        mit_pages += 1;
        true
    });
    println!("MIT pages: {mit_pages} (scanned in {:?})", t0.elapsed());
    assert_eq!(mit_pages, 3 * 2_000);

    // A single site's pages:
    let rows = tree.get_range(b"edu.harvard.seas.www/", 3, &guard);
    for (k, v) in &rows {
        println!("  {} (size {})", String::from_utf8_lossy(k), v.size);
    }

    // The long shared prefixes created trie layers (§4.1):
    drop(guard);
    println!("tree stats: {:?}", tree.stats().snapshot());
    println!("url_index OK");
}
