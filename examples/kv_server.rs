//! A standalone Masstree network server (§3, §5): persistent store,
//! framed binary protocol, one log per connection.
//!
//! ```sh
//! cargo run --release --example kv_server -- 127.0.0.1:7700 /tmp/mtdata
//! ```
//!
//! Then drive it with `kv_client`, or embed `mtnet::Client` in your own
//! program. If the data directory already holds logs/checkpoints, the
//! server recovers from them before serving.
//!
//! Replication:
//!
//! * `MT_REPL_LISTEN=<addr>` makes the server a **primary**: it streams
//!   its log (sealed segments + live tail) to any follower that
//!   connects to `<addr>`.
//! * `--follow <primary-repl-addr>` makes the server a **follower**: a
//!   read replica that replays the primary's log stream into its own
//!   tree and serves gets/scans, answering every write with a typed
//!   redirect naming the primary (`MT_REDIRECT=<addr>` overrides the
//!   advertised address). The data directory holds the follower's
//!   mirrored segments and replay watermark, so a restarted follower
//!   resumes where it left off.
//!
//! ```sh
//! MT_REPL_LISTEN=127.0.0.1:7800 cargo run --release --example kv_server \
//!     -- 127.0.0.1:7700 /tmp/mtprimary
//! cargo run --release --example kv_server \
//!     -- 127.0.0.1:7701 /tmp/mtreplica --follow 127.0.0.1:7800
//! ```
//!
//! Value separation: `MT_VALUE_SEP=<threshold>[:<cache-bytes>]` spills
//! values of at least `<threshold>` data bytes to append-only value
//! segments, keeping a fixed 24-byte pointer in the leaf (README:
//! "Larger-than-RAM"). `kv_client <addr> stats` reports the tier's
//! `indirect_reads` / `value_cache_hits` / `live_segment_bytes`.

use std::path::PathBuf;

use mtkv::{recover_with, DurabilityConfig};
use mtnet::{Follower, ReplSource, Server, ServerConfig};

fn main() {
    let mut follow: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--follow" {
            follow = Some(args.next().expect("--follow <primary-repl-addr>"));
        } else {
            positional.push(arg);
        }
    }
    let addr = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7700".into());
    let dir = PathBuf::from(
        positional
            .get(1)
            .cloned()
            .unwrap_or_else(|| "/tmp/mtdata".into()),
    );
    std::fs::create_dir_all(&dir).expect("create data dir");

    // Event-loop worker pool: MT_SERVER_WORKERS=<n> fixes the worker
    // count (0/unset = available_parallelism); MT_SERVER_AGGREGATE=0|1
    // (default 1) gates cross-connection batch aggregation, so the
    // per-frame path stays reachable for comparison and debugging.
    let workers: usize = std::env::var("MT_SERVER_WORKERS")
        .ok()
        .map(|v| v.parse().expect("MT_SERVER_WORKERS=<count>"))
        .unwrap_or(0);
    let aggregate = match std::env::var("MT_SERVER_AGGREGATE").as_deref() {
        Ok("0") => false,
        Ok("1") | Err(_) => true,
        Ok(other) => panic!("MT_SERVER_AGGREGATE must be 0 or 1, got {other:?}"),
    };

    if let Some(primary) = follow {
        run_follower(&addr, &dir, &primary, workers, aggregate);
        return;
    }

    // Larger-than-RAM value separation: MT_VALUE_SEP=<threshold>[:<cache>]
    // spills values of at least <threshold> data bytes into append-only
    // value segments; indirect reads go through a cache capped at
    // <cache> bytes (default left at the library's). A directory that
    // already holds vseg files mounts its tier on recovery regardless,
    // so the env matters when *creating* separated data.
    let mut dcfg = DurabilityConfig::default();
    if let Ok(spec) = std::env::var("MT_VALUE_SEP") {
        let usage = "MT_VALUE_SEP=<threshold-bytes>[:<cache-bytes>]";
        let (threshold, cache) = match spec.split_once(':') {
            Some((t, c)) => (t.parse().expect(usage), c.parse().expect(usage)),
            None => (spec.parse().expect(usage), dcfg.value_cache_bytes),
        };
        dcfg = dcfg.with_value_separation(threshold, cache);
        println!("value separation: threshold {threshold} B, cache budget {cache} B");
    }

    // Recover anything a previous run left behind (§5).
    let (store, report) = recover_with(&dir, &dir, dcfg).expect("recovery");
    let guard = masstree::pin();
    let keys = store.tree().count_keys(&guard);
    drop(guard);
    println!(
        "recovered {keys} keys (checkpoint: {}, log records replayed: {}, cutoff {})",
        report.used_checkpoint, report.replayed, report.cutoff
    );

    // Hot-path cache tier: MT_CACHE=<slots> gives every connection's
    // session a per-worker validated-anchor cache (`mtcache`); the
    // `stats` admin request reports its read/write/scan counters.
    // MT_CACHE_WRITES=0|1 (default 1) additionally gates whether
    // puts/removes route through cached anchors, so the write-hint path
    // is testable end to end with the flag off as well as on.
    if let Ok(slots) = std::env::var("MT_CACHE") {
        let slots: usize = slots.parse().expect("MT_CACHE=<hint slots>");
        let cache_writes = match std::env::var("MT_CACHE_WRITES").as_deref() {
            Ok("0") => false,
            Ok("1") | Err(_) => true,
            Ok(other) => panic!("MT_CACHE_WRITES must be 0 or 1, got {other:?}"),
        };
        store.set_session_cache(Some(mtkv::CacheConfig {
            cache_writes,
            ..mtkv::CacheConfig::with_capacity(slots)
        }));
        println!(
            "validated-anchor cache enabled: {slots} slots per connection \
             (writes {})",
            if cache_writes { "hinted" } else { "unhinted" }
        );
    }

    // Primary replication endpoint: followers connect here and stream
    // the log. Held for the server's lifetime.
    let _repl_source = std::env::var("MT_REPL_LISTEN").ok().map(|repl_addr| {
        let src = ReplSource::start(&store, &repl_addr).expect("replication listener");
        println!("replication: primary streaming on {}", src.addr());
        src
    });

    let config = ServerConfig {
        workers,
        aggregate,
        redirect: None,
    };
    let server = Server::start_with(store.clone(), &addr, config).expect("bind");
    println!("masstree server listening on {}", server.addr());
    println!(
        "event-loop workers: {} (cross-connection aggregation {})",
        if workers == 0 {
            format!(
                "{} (available_parallelism)",
                std::thread::available_parallelism().map_or(1, |n| n.get())
            )
        } else {
            workers.to_string()
        },
        if aggregate { "on" } else { "off" }
    );
    println!("press ctrl-c to stop; data persists in {}", dir.display());

    // Periodic maintenance: empty-layer GC (§4.6.5) plus a checkpoint
    // every 30 seconds so restarts recover quickly.
    let mut last_ckpt = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        store.maintain();
        if last_ckpt.elapsed().as_secs() >= 30 {
            match mtkv::write_checkpoint(&store, &dir, 4) {
                Ok(meta) => println!("checkpoint: {} keys", meta.keys),
                Err(e) => eprintln!("checkpoint failed: {e}"),
            }
            last_ckpt = std::time::Instant::now();
        }
    }
}

/// Read-replica mode: replay the primary's log stream, serve reads,
/// redirect writes.
fn run_follower(addr: &str, dir: &std::path::Path, primary: &str, workers: usize, aggregate: bool) {
    let follower = Follower::start(dir, primary).expect("start follower");
    let redirect = std::env::var("MT_REDIRECT").unwrap_or_else(|_| primary.to_string());
    let config = ServerConfig {
        workers,
        aggregate,
        redirect: Some(redirect.clone()),
    };
    let server = Server::start_with(follower.store(), addr, config).expect("bind");
    println!(
        "masstree read replica listening on {} (following {}, writes redirect to {})",
        server.addr(),
        primary,
        redirect
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        follower.store().maintain();
        let (lag_bytes, lag_ts_us) = follower.lag();
        if lag_bytes > 0 {
            println!("replica lag: {lag_bytes} bytes, {lag_ts_us} us");
        }
    }
}
