//! A standalone Masstree network server (§3, §5): persistent store,
//! framed binary protocol, one log per connection.
//!
//! ```sh
//! cargo run --release --example kv_server -- 127.0.0.1:7700 /tmp/mtdata
//! ```
//!
//! Then drive it with `kv_client`, or embed `mtnet::Client` in your own
//! program. If the data directory already holds logs/checkpoints, the
//! server recovers from them before serving.
//!
//! Replication:
//!
//! * `MT_REPL_LISTEN=<addr>` makes the server a **primary**: it streams
//!   its log (sealed segments + live tail) to any follower that
//!   connects to `<addr>`.
//! * `--follow <primary-repl-addr>` makes the server a **follower**: a
//!   read replica that replays the primary's log stream into its own
//!   tree and serves gets/scans, answering every write with a typed
//!   redirect naming the primary (`MT_REDIRECT=<addr>` overrides the
//!   advertised address). The data directory holds the follower's
//!   mirrored segments and replay watermark, so a restarted follower
//!   resumes where it left off.
//!
//! ```sh
//! MT_REPL_LISTEN=127.0.0.1:7800 cargo run --release --example kv_server \
//!     -- 127.0.0.1:7700 /tmp/mtprimary
//! cargo run --release --example kv_server \
//!     -- 127.0.0.1:7701 /tmp/mtreplica --follow 127.0.0.1:7800
//! ```
//!
//! Value separation: `MT_VALUE_SEP=<threshold>[:<cache-bytes>]` spills
//! values of at least `<threshold>` data bytes to append-only value
//! segments, keeping a fixed 24-byte pointer in the leaf (README:
//! "Larger-than-RAM"). `kv_client <addr> stats` reports the tier's
//! `indirect_reads` / `value_cache_hits` / `live_segment_bytes` plus the
//! clustered-resolution counters `readahead_batches` / `coalesced_bytes`
//! / `shared_misses`.
//!
//! Observability:
//!
//! * `MT_METRICS_LISTEN=<addr>` serves Prometheus text exposition on
//!   `GET /metrics`: per-op-kind latency histograms (`mt_op_latency_
//!   seconds`) plus durability/replication/value-tier gauges.
//! * `MT_STATS_INTERVAL=<secs>` prints one structured `STATS` line per
//!   interval: op rates, p99 latencies, slow-op and trace counts,
//!   replication lag, checkpoint and GC activity.
//! * `MT_SLOW_OP_US=<micros>` force-samples any op at or over the
//!   threshold as a structured `SLOWOP` line on stderr.
//! * `MT_TRACE_SAMPLE=<n>` samples 1-in-n requests (rounded to a power
//!   of two; 0 disables) through a staged trace span
//!   (decode → cache lookup → descent → value resolve → WAL → respond).

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use mtkv::mtobs::{self, Kind};
use mtkv::{recover_with, DurabilityConfig, Store};
use mtnet::{Follower, ReplSource, Server, ServerConfig};

fn main() {
    let mut follow: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--follow" {
            follow = Some(args.next().expect("--follow <primary-repl-addr>"));
        } else {
            positional.push(arg);
        }
    }
    let addr = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7700".into());
    let dir = PathBuf::from(
        positional
            .get(1)
            .cloned()
            .unwrap_or_else(|| "/tmp/mtdata".into()),
    );
    std::fs::create_dir_all(&dir).expect("create data dir");

    // Event-loop worker pool: MT_SERVER_WORKERS=<n> fixes the worker
    // count (0/unset = available_parallelism); MT_SERVER_AGGREGATE=0|1
    // (default 1) gates cross-connection batch aggregation, so the
    // per-frame path stays reachable for comparison and debugging.
    let workers: usize = std::env::var("MT_SERVER_WORKERS")
        .ok()
        .map(|v| v.parse().expect("MT_SERVER_WORKERS=<count>"))
        .unwrap_or(0);
    let aggregate = match std::env::var("MT_SERVER_AGGREGATE").as_deref() {
        Ok("0") => false,
        Ok("1") | Err(_) => true,
        Ok(other) => panic!("MT_SERVER_AGGREGATE must be 0 or 1, got {other:?}"),
    };

    if let Some(primary) = follow {
        run_follower(&addr, &dir, &primary, workers, aggregate);
        return;
    }

    // Larger-than-RAM value separation: MT_VALUE_SEP=<threshold>[:<cache>]
    // spills values of at least <threshold> data bytes into append-only
    // value segments; indirect reads go through a cache capped at
    // <cache> bytes (default left at the library's). A directory that
    // already holds vseg files mounts its tier on recovery regardless,
    // so the env matters when *creating* separated data.
    let mut dcfg = DurabilityConfig::default();
    if let Ok(spec) = std::env::var("MT_VALUE_SEP") {
        let usage = "MT_VALUE_SEP=<threshold-bytes>[:<cache-bytes>]";
        let (threshold, cache) = match spec.split_once(':') {
            Some((t, c)) => (t.parse().expect(usage), c.parse().expect(usage)),
            None => (spec.parse().expect(usage), dcfg.value_cache_bytes),
        };
        dcfg = dcfg.with_value_separation(threshold, cache);
        println!("value separation: threshold {threshold} B, cache budget {cache} B");
    }

    // Recover anything a previous run left behind (§5).
    let (store, report) = recover_with(&dir, &dir, dcfg).expect("recovery");
    let guard = masstree::pin();
    let keys = store.tree().count_keys(&guard);
    drop(guard);
    println!(
        "recovered {keys} keys (checkpoint: {}, log records replayed: {}, cutoff {})",
        report.used_checkpoint, report.replayed, report.cutoff
    );

    // Hot-path cache tier: MT_CACHE=<slots> gives every connection's
    // session a per-worker validated-anchor cache (`mtcache`); the
    // `stats` admin request reports its read/write/scan counters.
    // MT_CACHE_WRITES=0|1 (default 1) additionally gates whether
    // puts/removes route through cached anchors, so the write-hint path
    // is testable end to end with the flag off as well as on.
    if let Ok(slots) = std::env::var("MT_CACHE") {
        let slots: usize = slots.parse().expect("MT_CACHE=<hint slots>");
        let cache_writes = match std::env::var("MT_CACHE_WRITES").as_deref() {
            Ok("0") => false,
            Ok("1") | Err(_) => true,
            Ok(other) => panic!("MT_CACHE_WRITES must be 0 or 1, got {other:?}"),
        };
        store.set_session_cache(Some(mtkv::CacheConfig {
            cache_writes,
            ..mtkv::CacheConfig::with_capacity(slots)
        }));
        println!(
            "validated-anchor cache enabled: {slots} slots per connection \
             (writes {})",
            if cache_writes { "hinted" } else { "unhinted" }
        );
    }

    // Primary replication endpoint: followers connect here and stream
    // the log. Held for the server's lifetime.
    let _repl_source = std::env::var("MT_REPL_LISTEN").ok().map(|repl_addr| {
        let src = ReplSource::start(&store, &repl_addr).expect("replication listener");
        println!("replication: primary streaming on {}", src.addr());
        src
    });

    let stats_interval = setup_observability(&store);

    let config = ServerConfig {
        workers,
        aggregate,
        redirect: None,
    };
    let server = Server::start_with(store.clone(), &addr, config).expect("bind");
    println!("masstree server listening on {}", server.addr());
    println!(
        "event-loop workers: {} (cross-connection aggregation {})",
        if workers == 0 {
            format!(
                "{} (available_parallelism)",
                std::thread::available_parallelism().map_or(1, |n| n.get())
            )
        } else {
            workers.to_string()
        },
        if aggregate { "on" } else { "off" }
    );
    println!("press ctrl-c to stop; data persists in {}", dir.display());

    // Periodic maintenance: empty-layer GC (§4.6.5) plus a checkpoint
    // every 30 seconds so restarts recover quickly.
    let mut last_ckpt = std::time::Instant::now();
    let mut ticker = stats_interval.map(StatsTicker::new);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        store.maintain();
        if let Some(t) = ticker.as_mut() {
            t.tick(&store);
        }
        if last_ckpt.elapsed().as_secs() >= 30 {
            match mtkv::write_checkpoint(&store, &dir, 4) {
                Ok(meta) => println!("checkpoint: {} keys", meta.keys),
                Err(e) => eprintln!("checkpoint failed: {e}"),
            }
            last_ckpt = std::time::Instant::now();
        }
    }
}

/// Applies the observability env knobs (`MT_SLOW_OP_US`,
/// `MT_TRACE_SAMPLE`), starts the `MT_METRICS_LISTEN` endpoint when
/// configured, and returns the `MT_STATS_INTERVAL` period, if any.
fn setup_observability(store: &Arc<Store>) -> Option<std::time::Duration> {
    if let Ok(us) = std::env::var("MT_SLOW_OP_US") {
        let us: u64 = us.parse().expect("MT_SLOW_OP_US=<micros>");
        store.obs().set_slow_threshold_us(Some(us));
        println!("slow-op dump threshold: {us} us");
    }
    if let Ok(n) = std::env::var("MT_TRACE_SAMPLE") {
        let n: u64 = n.parse().expect("MT_TRACE_SAMPLE=<1-in-n>");
        store.obs().set_sample_every(n);
        println!("trace sampling: 1 in {n} requests");
    }
    if let Ok(addr) = std::env::var("MT_METRICS_LISTEN") {
        let listener = std::net::TcpListener::bind(&addr).expect("bind metrics endpoint");
        println!(
            "metrics: http://{}/metrics",
            listener.local_addr().expect("metrics addr")
        );
        let store = Arc::clone(store);
        std::thread::Builder::new()
            .name("metrics".into())
            .spawn(move || serve_metrics(listener, store))
            .expect("spawn metrics thread");
    }
    std::env::var("MT_STATS_INTERVAL").ok().map(|s| {
        let secs: u64 = s.parse().expect("MT_STATS_INTERVAL=<seconds>");
        std::time::Duration::from_secs(secs.max(1))
    })
}

/// A deliberately tiny HTTP/1.1 responder: one request per connection,
/// `GET /metrics` (or `GET /`) answered with Prometheus text
/// exposition, anything else with 404. Scrape cadence is seconds, so
/// thread-per-request with `Connection: close` is plenty.
fn serve_metrics(listener: std::net::TcpListener, store: Arc<Store>) {
    for conn in listener.incoming() {
        let Ok(mut conn) = conn else { continue };
        let _ = conn.set_read_timeout(Some(std::time::Duration::from_secs(2)));
        let mut head = [0u8; 1024];
        let mut n = 0;
        while n < head.len() {
            match conn.read(&mut head[n..]) {
                Ok(0) | Err(_) => break,
                Ok(m) => {
                    n += m;
                    if head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        let line = std::str::from_utf8(&head[..n]).unwrap_or("");
        let ok = line.starts_with("GET /metrics") || line.starts_with("GET / ");
        let (status, reason, body) = if ok {
            (200, "OK", render_metrics(&store))
        } else {
            (404, "Not Found", "not found\n".to_string())
        };
        let _ = write!(
            conn,
            "HTTP/1.1 {status} {reason}\r\n\
             Content-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        );
    }
}

/// One scrape: the merged histogram snapshot plus the store's
/// durability / cache / replication / value-tier gauges.
fn render_metrics(store: &Arc<Store>) -> String {
    let snap = store.obs().snapshot();
    let d = store.durability_stats();
    let c = store.cache_stats();
    let (repl_role, repl_followers, repl_lag_bytes, repl_lag_ts_us) = store.repl_stats().snapshot();
    let v = store.value_tier_stats();
    mtobs::render_prometheus(
        &snap,
        &[
            ("mt_checkpoints_total", d.checkpoints),
            ("mt_log_bytes", d.log_bytes),
            ("mt_log_segments", d.log_segments),
            ("mt_segments_truncated_total", d.segments_truncated),
            ("mt_cache_lookups_total", c.lookups),
            ("mt_cache_hits_total", c.hits),
            ("mt_repl_role", repl_role),
            ("mt_repl_followers", repl_followers),
            ("mt_repl_lag_bytes", repl_lag_bytes),
            ("mt_repl_lag_ts_us", repl_lag_ts_us),
            ("mt_indirect_reads_total", v.indirect_reads),
            ("mt_value_cache_hits_total", v.value_cache_hits),
            ("mt_readahead_batches_total", v.readahead_batches),
            ("mt_coalesced_bytes_total", v.coalesced_bytes),
            ("mt_shared_misses_total", v.shared_misses),
            ("mt_gc_rewritten_bytes_total", v.gc_rewritten_bytes),
            ("mt_live_segment_bytes", v.live_segment_bytes),
        ],
    )
}

/// Emits one structured `STATS` line per `MT_STATS_INTERVAL`: interval
/// deltas for rates and percentiles, plus instantaneous lag gauges.
struct StatsTicker {
    interval: std::time::Duration,
    last: std::time::Instant,
    prev: mtobs::Snapshot,
}

impl StatsTicker {
    fn new(interval: std::time::Duration) -> StatsTicker {
        StatsTicker {
            interval,
            last: std::time::Instant::now(),
            prev: mtobs::Snapshot::empty(),
        }
    }

    fn tick(&mut self, store: &Arc<Store>) {
        if self.last.elapsed() < self.interval {
            return;
        }
        let secs = self.last.elapsed().as_secs_f64();
        let snap = store.obs().snapshot();
        let d = snap.delta(&self.prev);
        let mut gets = *d.kind(Kind::GetHit);
        gets.merge(d.kind(Kind::GetDescent));
        gets.merge(d.kind(Kind::GetCold));
        let ops =
            d.foreground_ops() + d.kind(Kind::MultiGet).count() + d.kind(Kind::MultiPut).count();
        let (_, _, repl_lag_bytes, repl_lag_ts_us) = store.repl_stats().snapshot();
        let dur = store.durability_stats();
        let v = store.value_tier_stats();
        println!(
            "STATS ops={ops} ops_per_s={:.0} get_p99={} put_p99={} \
             multiget_p99={} wal_force_p99={} checkpoint_p99={} gc_p99={} \
             slow_ops={} traces={} repl_lag_bytes={repl_lag_bytes} \
             repl_lag_us={repl_lag_ts_us} checkpoints={} gc_bytes={}",
            ops as f64 / secs,
            mtobs::fmt_ns(gets.percentile(0.99)),
            mtobs::fmt_ns(d.kind(Kind::Put).percentile(0.99)),
            mtobs::fmt_ns(d.kind(Kind::MultiGet).percentile(0.99)),
            mtobs::fmt_ns(d.kind(Kind::WalForce).percentile(0.99)),
            mtobs::fmt_ns(d.kind(Kind::Checkpoint).percentile(0.99)),
            mtobs::fmt_ns(d.kind(Kind::GcPass).percentile(0.99)),
            d.slow_ops,
            d.traces_sampled,
            dur.checkpoints,
            v.gc_rewritten_bytes,
        );
        self.prev = snap;
        self.last = std::time::Instant::now();
    }
}

/// Read-replica mode: replay the primary's log stream, serve reads,
/// redirect writes.
fn run_follower(addr: &str, dir: &std::path::Path, primary: &str, workers: usize, aggregate: bool) {
    let follower = Follower::start(dir, primary).expect("start follower");
    let redirect = std::env::var("MT_REDIRECT").unwrap_or_else(|_| primary.to_string());
    let stats_interval = setup_observability(&follower.store());
    let config = ServerConfig {
        workers,
        aggregate,
        redirect: Some(redirect.clone()),
    };
    let server = Server::start_with(follower.store(), addr, config).expect("bind");
    println!(
        "masstree read replica listening on {} (following {}, writes redirect to {})",
        server.addr(),
        primary,
        redirect
    );
    let mut ticker = stats_interval.map(StatsTicker::new);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        follower.store().maintain();
        if let Some(t) = ticker.as_mut() {
            t.tick(&follower.store());
        }
        let (lag_bytes, lag_ts_us) = follower.lag();
        if lag_bytes > 0 {
            println!("replica lag: {lag_bytes} bytes, {lag_ts_us} us");
        }
    }
}
