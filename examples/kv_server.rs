//! A standalone Masstree network server (§3, §5): persistent store,
//! framed binary protocol, one log per connection.
//!
//! ```sh
//! cargo run --release --example kv_server -- 127.0.0.1:7700 /tmp/mtdata
//! ```
//!
//! Then drive it with `kv_client`, or embed `mtnet::Client` in your own
//! program. If the data directory already holds logs/checkpoints, the
//! server recovers from them before serving.

use std::path::PathBuf;

use mtkv::recover;
use mtnet::{Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7700".into());
    let dir = PathBuf::from(args.get(2).cloned().unwrap_or_else(|| "/tmp/mtdata".into()));
    std::fs::create_dir_all(&dir).expect("create data dir");

    // Recover anything a previous run left behind (§5).
    let (store, report) = recover(&dir, &dir).expect("recovery");
    let guard = masstree::pin();
    let keys = store.tree().count_keys(&guard);
    drop(guard);
    println!(
        "recovered {keys} keys (checkpoint: {}, log records replayed: {}, cutoff {})",
        report.used_checkpoint, report.replayed, report.cutoff
    );

    // Hot-path cache tier: MT_CACHE=<slots> gives every connection's
    // session a per-worker validated-anchor cache (`mtcache`); the
    // `stats` admin request reports its read/write/scan counters.
    // MT_CACHE_WRITES=0|1 (default 1) additionally gates whether
    // puts/removes route through cached anchors, so the write-hint path
    // is testable end to end with the flag off as well as on.
    if let Ok(slots) = std::env::var("MT_CACHE") {
        let slots: usize = slots.parse().expect("MT_CACHE=<hint slots>");
        let cache_writes = match std::env::var("MT_CACHE_WRITES").as_deref() {
            Ok("0") => false,
            Ok("1") | Err(_) => true,
            Ok(other) => panic!("MT_CACHE_WRITES must be 0 or 1, got {other:?}"),
        };
        store.set_session_cache(Some(mtkv::CacheConfig {
            cache_writes,
            ..mtkv::CacheConfig::with_capacity(slots)
        }));
        println!(
            "validated-anchor cache enabled: {slots} slots per connection \
             (writes {})",
            if cache_writes { "hinted" } else { "unhinted" }
        );
    }

    // Event-loop worker pool: MT_SERVER_WORKERS=<n> fixes the worker
    // count (0/unset = available_parallelism); MT_SERVER_AGGREGATE=0|1
    // (default 1) gates cross-connection batch aggregation, so the
    // per-frame path stays reachable for comparison and debugging.
    let workers: usize = std::env::var("MT_SERVER_WORKERS")
        .ok()
        .map(|v| v.parse().expect("MT_SERVER_WORKERS=<count>"))
        .unwrap_or(0);
    let aggregate = match std::env::var("MT_SERVER_AGGREGATE").as_deref() {
        Ok("0") => false,
        Ok("1") | Err(_) => true,
        Ok(other) => panic!("MT_SERVER_AGGREGATE must be 0 or 1, got {other:?}"),
    };
    let config = ServerConfig { workers, aggregate };
    let server = Server::start_with(store.clone(), &addr, config).expect("bind");
    println!("masstree server listening on {}", server.addr());
    println!(
        "event-loop workers: {} (cross-connection aggregation {})",
        if workers == 0 {
            format!(
                "{} (available_parallelism)",
                std::thread::available_parallelism().map_or(1, |n| n.get())
            )
        } else {
            workers.to_string()
        },
        if aggregate { "on" } else { "off" }
    );
    println!("press ctrl-c to stop; data persists in {}", dir.display());

    // Periodic maintenance: empty-layer GC (§4.6.5) plus a checkpoint
    // every 30 seconds so restarts recover quickly.
    let mut last_ckpt = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(1));
        store.maintain();
        if last_ckpt.elapsed().as_secs() >= 30 {
            match mtkv::write_checkpoint(&store, &dir, 4) {
                Ok(meta) => println!("checkpoint: {} keys", meta.keys),
                Err(e) => eprintln!("checkpoint failed: {e}"),
            }
            last_ckpt = std::time::Instant::now();
        }
    }
}
