//! A self-contained MYCSB driver (the paper's modified YCSB, §7) against
//! the full storage system — multi-column values and per-worker logging —
//! without the network, so you can see raw store throughput per mix.
//!
//! ```sh
//! cargo run --release --example ycsb [records] [seconds]
//! cargo run --release --example ycsb -- --batch [records] [seconds]
//! ```
//!
//! With `--batch`, each mix is additionally driven in batched mode: every
//! worker draws operations in groups and executes runs of gets/puts
//! through the interleaved multi-get/multi-put path (`masstree::batch`),
//! sweeping batch sizes {1, 4, 8, 16, 32} so the sequential-vs-pipelined
//! comparison is printed per mix.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mtkv::{Session, Store};
use mtworkload::{Mix, MycsbOp, MycsbWorkload};

/// Batch sizes swept by `--batch` (1 = the sequential baseline).
const BATCH_SIZES: [usize; 5] = [1, 4, 8, 16, 32];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let batch_mode = args.iter().any(|a| a == "--batch");
    args.retain(|a| a != "--batch");
    let records: u64 = args.first().and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let secs: f64 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(2.0);
    let threads = std::thread::available_parallelism()
        .map_or(8, |n| n.get())
        .min(16);

    let dir = std::env::temp_dir().join(format!("ycsb-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = Store::persistent(&dir).unwrap();

    // Load phase: `records` rows of 10 × 4-byte columns.
    println!("loading {records} records with {threads} workers ...");
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let session = store.session().unwrap();
                let per = records / threads as u64;
                for i in t * per..((t + 1) * per).max(records.min((t + 1) * per)) {
                    let cols = MycsbWorkload::initial_columns(i);
                    let updates: Vec<(usize, &[u8])> =
                        cols.iter().enumerate().map(|(c, d)| (c, &d[..])).collect();
                    session.put(&MycsbWorkload::record_key(i), &updates);
                }
            });
        }
    });

    for mix in [Mix::A, Mix::B, Mix::C, Mix::E] {
        if batch_mode {
            for batch in BATCH_SIZES {
                let mops = run_mix(&store, mix, records, secs, threads, batch);
                println!("{:<8} batch={batch:<3} {mops:>8.2} Mops/s", mix.name());
            }
        } else {
            let mops = run_mix(&store, mix, records, secs, threads, 1);
            println!("{:<8} {mops:>8.2} Mops/s", mix.name());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs one mix for `secs`; `batch == 1` executes operations one at a
/// time, larger batches group them and route get/put runs through the
/// interleaved engine. Returns Mops/s.
fn run_mix(
    store: &Arc<Store>,
    mix: Mix,
    records: u64,
    secs: f64,
    threads: usize,
    batch: usize,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let store = &store;
            let stop = &stop;
            let total = &total;
            s.spawn(move || {
                let session = store.session().unwrap();
                let mut wl = MycsbWorkload::new(mix, records, 7 + t);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if batch <= 1 {
                        execute_one(&session, wl.next_op());
                        n += 1;
                    } else {
                        let ops = wl.next_ops(batch);
                        n += ops.len() as u64;
                        execute_batched(&session, ops);
                    }
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / secs / 1e6
}

fn execute_one(session: &Session, op: MycsbOp) {
    execute_one_ref(session, &op)
}

/// Executes one drawn batch, feeding runs of gets and puts through the
/// interleaved engine. Run grouping (and put-run splitting at duplicate
/// keys, which preserves per-key order) is shared with the network
/// server via [`mtkv::split_batch_runs`].
fn execute_batched(session: &Session, ops: Vec<MycsbOp>) {
    let runs = mtkv::split_batch_runs(
        &ops,
        |o| match o {
            MycsbOp::Get { .. } => mtkv::RunKind::Get,
            MycsbOp::Put { .. } => mtkv::RunKind::Put,
            MycsbOp::GetRange { .. } => mtkv::RunKind::Other,
        },
        |o| match o {
            MycsbOp::Get { key } | MycsbOp::Put { key, .. } => key.as_slice(),
            MycsbOp::GetRange { .. } => &[],
        },
    );
    for (kind, range) in runs {
        let run = &ops[range];
        match kind {
            mtkv::RunKind::Get if run.len() >= 2 => {
                let keys: Vec<&[u8]> = run
                    .iter()
                    .map(|o| match o {
                        MycsbOp::Get { key } => key.as_slice(),
                        _ => unreachable!(),
                    })
                    .collect();
                std::hint::black_box(session.multi_get(&keys, None));
            }
            mtkv::RunKind::Put if run.len() >= 2 => {
                let updates: Vec<[(usize, &[u8]); 1]> = run
                    .iter()
                    .map(|o| match o {
                        MycsbOp::Put { column, data, .. } => [(*column, data.as_slice())],
                        _ => unreachable!(),
                    })
                    .collect();
                let puts: Vec<mtkv::PutOp<'_>> = run
                    .iter()
                    .zip(&updates)
                    .map(|(o, u)| match o {
                        MycsbOp::Put { key, .. } => (key.as_slice(), u.as_slice()),
                        _ => unreachable!(),
                    })
                    .collect();
                session.multi_put(&puts);
            }
            _ => {
                for op in run {
                    execute_one_ref(session, op);
                }
            }
        }
    }
}

fn execute_one_ref(session: &Session, op: &MycsbOp) {
    match op {
        MycsbOp::Get { key } => {
            std::hint::black_box(session.get(key, None));
        }
        MycsbOp::Put { key, column, data } => {
            session.put(key, &[(*column, data)]);
        }
        MycsbOp::GetRange { key, count, column } => {
            std::hint::black_box(session.get_range(key, *count, Some(&[*column])));
        }
    }
}
