//! A self-contained MYCSB driver (the paper's modified YCSB, §7) against
//! the full storage system — multi-column values and per-worker logging —
//! without the network, so you can see raw store throughput per mix.
//!
//! ```sh
//! cargo run --release --example ycsb [records] [seconds]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mtkv::Store;
use mtworkload::{Mix, MycsbOp, MycsbWorkload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let records: u64 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let secs: f64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(2.0);
    let threads = std::thread::available_parallelism().map_or(8, |n| n.get()).min(16);

    let dir = std::env::temp_dir().join(format!("ycsb-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = Store::persistent(&dir).unwrap();

    // Load phase: `records` rows of 10 × 4-byte columns.
    println!("loading {records} records with {threads} workers ...");
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let session = store.session().unwrap();
                let per = records / threads as u64;
                for i in t * per..((t + 1) * per).max(records.min((t + 1) * per)) {
                    let cols = MycsbWorkload::initial_columns(i);
                    let updates: Vec<(usize, &[u8])> =
                        cols.iter().enumerate().map(|(c, d)| (c, &d[..])).collect();
                    session.put(&MycsbWorkload::record_key(i), &updates);
                }
            });
        }
    });

    for mix in [Mix::A, Mix::B, Mix::C, Mix::E] {
        let stop = AtomicBool::new(false);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let store = &store;
                let stop = &stop;
                let total = &total;
                s.spawn(move || {
                    let session = store.session().unwrap();
                    let mut wl = MycsbWorkload::new(mix, records, 7 + t);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match wl.next_op() {
                            MycsbOp::Get { key } => {
                                std::hint::black_box(session.get(&key, None));
                            }
                            MycsbOp::Put { key, column, data } => {
                                session.put(&key, &[(column, &data)]);
                            }
                            MycsbOp::GetRange { key, count, column } => {
                                std::hint::black_box(
                                    session.get_range(&key, count, Some(&[column])),
                                );
                            }
                        }
                        n += 1;
                    }
                    total.fetch_add(n, Ordering::Relaxed);
                });
            }
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            stop.store(true, Ordering::Relaxed);
        });
        println!(
            "{:<8} {:>8.2} Mops/s",
            mix.name(),
            total.load(Ordering::Relaxed) as f64 / secs / 1e6
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
