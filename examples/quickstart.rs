//! Quickstart: the Masstree index as an embedded concurrent map.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use masstree::Masstree;

fn main() {
    // A Masstree maps arbitrary byte keys to any Send + Sync value type.
    let tree: Arc<Masstree<String>> = Arc::new(Masstree::new());

    // Operations take an epoch guard: values you read stay valid (even
    // if concurrently removed) until the guard drops.
    let guard = masstree::pin();
    tree.put(b"greeting", "hello world".to_string(), &guard);
    tree.put(b"answer", "42".to_string(), &guard);
    assert_eq!(
        tree.get(b"greeting", &guard).map(String::as_str),
        Some("hello world")
    );

    // Writers lock only the nodes they touch; readers never lock at all.
    // Hammer the tree from 8 threads:
    std::thread::scope(|s| {
        for t in 0..8 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                let guard = masstree::pin();
                for i in 0..10_000 {
                    let key = format!("thread{t}/item{i:05}");
                    tree.put(key.as_bytes(), format!("value-{t}-{i}"), &guard);
                }
            });
        }
    });

    let guard = masstree::pin();
    println!("keys stored: {}", tree.count_keys(&guard));

    // Range scans in lexicographic order — this is what a hash table
    // can't do. All of thread 3's items, in order:
    let hits = tree.get_range(b"thread3/", 5, &guard);
    for (key, value) in &hits {
        println!("{} => {}", String::from_utf8_lossy(key), value);
    }
    assert_eq!(hits.len(), 5);
    assert!(hits.windows(2).all(|w| w[0].0 < w[1].0), "sorted");

    // Removal returns the old value (still readable under the guard).
    let old = tree.remove(b"greeting", &guard);
    assert_eq!(old.map(String::as_str), Some("hello world"));
    assert!(tree.get(b"greeting", &guard).is_none());

    println!("quickstart OK");
}
