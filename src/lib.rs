//! Umbrella crate for the Masstree reproduction workspace.
//!
//! Re-exports the member crates so that examples and integration tests can
//! use a single dependency. See `README.md` for an overview and `DESIGN.md`
//! for the system inventory.

pub use baselines;
pub use masstree;
pub use mtkv;
pub use mtnet;
pub use mtworkload;
